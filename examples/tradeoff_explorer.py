"""Interactive exploration of the round/approximation trade-off.

Sweeps the trade-off parameter ``k`` over several instance families, shows
how the derived schedule (scales x settle iterations, threshold base)
changes, and uses the analytic envelope to answer the practical question
"how many rounds do I need for a target quality?".

Run:  python examples/tradeoff_explorer.py
"""

from __future__ import annotations

from repro import solve_distributed, solve_lp
from repro.analysis.aggregate import aggregate
from repro.analysis.tables import render_table
from repro.core.bounds import approximation_envelope, best_k_for_target_ratio
from repro.core.parameters import TradeoffParameters
from repro.fl.generators import make_instance

FAMILIES = ("uniform", "euclidean", "set_cover")
K_VALUES = (1, 4, 9, 16, 25, 49)
SEEDS = (0, 1, 2)


def explore_family(family: str) -> None:
    instance = make_instance(family, 20, 60, seed=3)
    lp = solve_lp(instance)
    rows = []
    for k in K_VALUES:
        params = TradeoffParameters.from_instance(instance, k)
        ratios = aggregate(
            [
                solve_distributed(instance, k=k, seed=s).cost / lp.value
                for s in SEEDS
            ]
        )
        rounds = solve_distributed(instance, k=k, seed=0).metrics.rounds
        rows.append(
            (
                k,
                f"{params.num_scales}x{params.num_settle}",
                params.base,
                rounds,
                ratios.format(),
            )
        )
    print(
        render_table(
            ("k", "schedule", "threshold_base", "rounds", "ratio_vs_LP"),
            rows,
            title=f"family={family} (rho={instance.rho:.1f})",
        )
    )
    print()


def main() -> None:
    for family in FAMILIES:
        explore_family(family)

    # The inverse question: how many rounds buy a target envelope?
    instance = make_instance("uniform", 20, 60, seed=3)
    print("rounds needed for a target analytic envelope (uniform family):")
    for target in (200.0, 120.0, 80.0):
        k = best_k_for_target_ratio(
            target, instance.num_facilities, instance.num_clients, instance.rho
        )
        reached = approximation_envelope(
            k, instance.num_facilities, instance.num_clients, instance.rho
        )
        print(f"  envelope <= {target:6.1f}  ->  k = {k:3d} (envelope {reached:.1f})")


if __name__ == "__main__":
    main()
