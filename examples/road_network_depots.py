"""Depot placement on a road network (networkx bridge demo).

A parcel company must pick depot locations among candidate sites on a road
network so that every intersection is served cheaply. Costs are driving
distances (shortest paths), so the instance is metric by construction.
This example builds the instance straight from a ``networkx`` graph via
:mod:`repro.fl.from_graph`, solves it distributedly, and reads the result
back in road-network vocabulary.

Run:  python examples/road_network_depots.py
"""

from __future__ import annotations

import math

import networkx as nx

from repro import greedy_solve, solve_distributed, solve_lp
from repro.analysis.tables import render_table
from repro.fl.from_graph import instance_from_graph


def build_road_network(seed: int = 8) -> nx.Graph:
    """A synthetic road network: random geometric graph, Euclidean weights."""
    graph = nx.random_geometric_graph(60, radius=0.28, seed=seed)
    for u, v in graph.edges():
        pu, pv = graph.nodes[u]["pos"], graph.nodes[v]["pos"]
        graph.edges[u, v]["weight"] = math.dist(pu, pv)
    # Keep the largest connected component (roads are connected).
    giant = max(nx.connected_components(graph), key=len)
    return graph.subgraph(giant).copy()


def main() -> None:
    graph = build_road_network()
    print(
        f"road network: {graph.number_of_nodes()} intersections, "
        f"{graph.number_of_edges()} road segments"
    )

    # Every 4th intersection is a candidate depot site; site rent varies.
    sites = sorted(graph.nodes())[::4]
    rents = {site: 0.3 + 0.05 * (site % 5) for site in sites}
    bundle = instance_from_graph(
        graph, facility_nodes=sites, opening_costs=rents
    )
    instance = bundle.instance
    print(f"candidate depots: {len(sites)}  (instance: {instance})\n")

    lp = solve_lp(instance)
    greedy = greedy_solve(instance)

    rows = []
    for k in (4, 16, 36):
        result = solve_distributed(instance, k=k, seed=2)
        rows.append(
            (
                f"distributed k={k}",
                result.metrics.rounds,
                result.cost,
                result.cost / lp.value,
                len(result.open_facilities),
            )
        )
    rows.append(
        ("centralized greedy", "-", greedy.cost, greedy.cost / lp.value,
         greedy.num_open)
    )
    print(
        render_table(
            ("plan", "rounds", "cost", "ratio_vs_LP", "depots"),
            rows,
            title="depot plans (costs are driving distances)",
        )
    )

    result = solve_distributed(instance, k=36, seed=2)
    depots = sorted(bundle.open_nodes(result.solution))
    assignment = bundle.assignment_nodes(result.solution)
    loads = {d: sum(1 for t in assignment.values() if t == d) for d in depots}
    print(f"\nchosen depots (intersection -> served intersections):")
    for depot in depots:
        print(f"  intersection {depot:>3} -> {loads[depot]} clients")


if __name__ == "__main__":
    main()
