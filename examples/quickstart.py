"""Quickstart: solve one instance with the distributed algorithm.

Builds a random facility-location instance, runs the PODC 2005 trade-off
algorithm at a few round budgets ``k``, and compares against the
sequential greedy baseline and the LP lower bound.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import greedy_solve, solve_distributed, solve_lp
from repro.analysis.tables import render_table
from repro.fl.generators import uniform_instance


def main() -> None:
    # 20 facilities, 60 clients, complete bipartite, uniform random costs.
    instance = uniform_instance(num_facilities=20, num_clients=60, seed=7)
    print(f"instance: {instance}")
    print(f"cost spread rho = {instance.rho:.1f}\n")

    # The LP relaxation lower-bounds the optimum: every ratio below is an
    # upper bound on the true approximation factor.
    lp = solve_lp(instance)
    print(f"LP lower bound: {lp.value:.3f}")

    greedy = greedy_solve(instance)
    print(f"greedy baseline: cost={greedy.cost:.3f} "
          f"(ratio {greedy.cost / lp.value:.3f})\n")

    rows = []
    for k in (1, 4, 9, 16, 25, 49):
        result = solve_distributed(instance, k=k, seed=0)
        rows.append(
            (
                k,
                result.cost,
                result.cost / lp.value,
                result.metrics.rounds,
                result.metrics.total_messages,
                result.metrics.max_message_bits,
                len(result.open_facilities),
            )
        )
    print(
        render_table(
            ("k", "cost", "ratio_vs_LP", "rounds", "messages", "max_bits", "open"),
            rows,
            title="distributed trade-off: more rounds -> better solutions",
        )
    )
    print(
        "\nNote how the ratio approaches the greedy reference as k grows, "
        "while rounds stay linear in k and every message fits in O(log N) "
        "bits -- the paper's claims in one table."
    )


if __name__ == "__main__":
    main()
