"""Sensor-network aggregation-hub placement (metric scenario).

A field of sensors (clients) must each report to an aggregation hub
(facility). Hubs are candidate radio towers with installation costs;
reporting costs grow with distance. Sensors cluster around a few hot
spots, so a good plan opens roughly one hub per cluster.

The sensors and towers can only communicate locally (a sensor talks to the
towers in range) — exactly the paper's distributed model. This example
runs the distributed algorithm with a modest round budget and compares the
plan against what centralized algorithms (JV primal-dual, local search)
would pick with full knowledge.

Run:  python examples/sensor_network.py
"""

from __future__ import annotations

from repro import (
    jain_vazirani_solve,
    local_search_solve,
    solve_distributed,
    solve_lp,
)
from repro.analysis.tables import render_table
from repro.fl.generators import clustered_instance


def describe(label: str, cost: float, num_open: int, lp_value: float) -> tuple:
    return (label, cost, cost / lp_value, num_open)


def main() -> None:
    instance = clustered_instance(
        num_facilities=24, num_clients=96, seed=5, num_clusters=4
    )
    print(f"scenario: {instance}")
    print(f"metric: {instance.is_metric()}  (Euclidean by construction)\n")

    lp = solve_lp(instance)
    rows = []

    # Distributed plans at increasing round budgets.
    for k in (4, 16, 49):
        result = solve_distributed(instance, k=k, seed=1)
        rows.append(
            describe(
                f"distributed k={k} ({result.metrics.rounds} rounds)",
                result.cost,
                len(result.open_facilities),
                lp.value,
            )
        )

    # Centralized references.
    jv = jain_vazirani_solve(instance)
    rows.append(describe("jain-vazirani (centralized)", jv.cost, jv.num_open, lp.value))
    ls = local_search_solve(instance)
    rows.append(describe("local search (centralized)", ls.cost, ls.num_open, lp.value))

    print(
        render_table(
            ("plan", "cost", "ratio_vs_LP", "hubs_open"),
            rows,
            title="aggregation-hub placement plans",
        )
    )

    best_k49 = solve_distributed(instance, k=49, seed=1)
    print(
        f"\nWith ~{best_k49.metrics.rounds} local communication rounds the "
        f"sensors agree on {len(best_k49.open_facilities)} hubs at "
        f"{best_k49.cost / lp.value:.2f}x the LP bound — close to the "
        f"centralized plans, with no global coordinator."
    )


if __name__ == "__main__":
    main()
