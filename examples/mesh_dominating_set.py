"""Distributed dominating set on a mesh network (application demo).

A wireless mesh needs a minimal subset of nodes to run a coordination
service so that every node has a coordinator in radio range — a minimum
dominating set. This is the problem family the distributed covering
technique behind the PODC 2005 paper was built around; via the reduction
chain  dominating set -> set cover -> facility location  the trade-off
algorithm solves it with tunable round budget.

Run:  python examples/mesh_dominating_set.py
"""

from __future__ import annotations

import math

from repro.apps.dominating_set import (
    dominating_set_to_set_cover,
    is_dominating_set,
    solve_dominating_set_distributed,
    solve_dominating_set_greedy,
)
from repro.apps.set_cover import set_cover_lp_bound
from repro.analysis.tables import render_table
from repro.net.topology import Topology


def grid_mesh(side: int) -> Topology:
    """A side x side grid mesh (4-neighbor radio links)."""
    def node(row: int, col: int) -> int:
        return row * side + col

    edges = []
    for row in range(side):
        for col in range(side):
            if col + 1 < side:
                edges.append((node(row, col), node(row, col + 1)))
            if row + 1 < side:
                edges.append((node(row, col), node(row + 1, col)))
    return Topology(side * side, edges)


def main() -> None:
    side = 8
    mesh = grid_mesh(side)
    print(f"mesh: {mesh} (a {side}x{side} grid, diameter {mesh.diameter()})")

    lp_bound = set_cover_lp_bound(dominating_set_to_set_cover(mesh))
    greedy = solve_dominating_set_greedy(mesh)
    print(f"LP lower bound on coordinators: {lp_bound:.2f}")
    print(f"centralized greedy picks:       {len(greedy)} coordinators\n")

    rows = []
    for k in (1, 4, 9, 16, 36):
        chosen, metrics = solve_dominating_set_distributed(mesh, k=k, seed=1)
        assert is_dominating_set(mesh, chosen)
        rows.append(
            (
                k,
                metrics.rounds,
                len(chosen),
                len(chosen) / lp_bound,
                metrics.max_message_bits,
            )
        )
    print(
        render_table(
            ("k", "rounds", "coordinators", "ratio_vs_LP", "max_bits"),
            rows,
            title="distributed coordinator election on the mesh",
        )
    )

    chosen, _ = solve_dominating_set_distributed(mesh, k=36, seed=1)
    print("\ncoordinator map (X = coordinator):")
    for row in range(side):
        line = "".join(
            "X" if row * side + col in chosen else "." for col in range(side)
        )
        print(f"  {line}")
    print(
        f"\n{len(chosen)} coordinators dominate all {side * side} nodes "
        f"(theoretical minimum >= {math.ceil(lp_bound)})."
    )


if __name__ == "__main__":
    main()
