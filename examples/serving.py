"""Serving: batch a mixed request stream through the solve service.

Feeds a mixed batch of solve requests — different families, round
budgets and variants, with deliberate duplicates — through the
``repro.service`` pipeline: admission queue, dedup batcher, parallel
executor, result store. Duplicates are solved once and answered
together; repeated recipes hit the instance/LP caches; the metrics
summary at the end shows the whole story in numbers.

Run:  python examples/serving.py
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.perf.cache import clear_caches
from repro.service import (
    InstanceRecipe,
    ServiceClient,
    ServiceConfig,
    SolveRequest,
    SolveService,
)

#: (request id, family, m, n, instance seed, k, variant). The stream
#: mixes two families and two round budgets, and repeats two recipes
#: verbatim — the repeats are what the batcher dedups.
WORKLOAD = (
    ("uni-k4-a", "uniform", 12, 36, 3, 4, "greedy"),
    ("euc-k9-a", "euclidean", 12, 36, 5, 9, "greedy"),
    ("uni-k4-b", "uniform", 12, 36, 3, 4, "greedy"),      # duplicate of uni-k4-a
    ("uni-k9-a", "uniform", 12, 36, 3, 9, "greedy"),      # same instance, new k
    ("euc-k9-b", "euclidean", 12, 36, 5, 9, "greedy"),    # duplicate of euc-k9-a
    ("uni-k9-da", "uniform", 12, 36, 3, 9, "dual_ascent"),
)


def build_requests() -> list[SolveRequest]:
    """The demo workload as wire-ready request objects."""
    requests = []
    for request_id, family, m, n, seed, k, variant in WORKLOAD:
        recipe = InstanceRecipe(family=family, num_facilities=m, num_clients=n, seed=seed)
        requests.append(
            SolveRequest(
                request_id=request_id,
                recipe=recipe,
                k=k,
                variant=variant,
                compute_lp=True,  # adds ratio_vs_lp; repeats hit the LP cache
            )
        )
    return requests


def main() -> None:
    clear_caches()  # start cold so the cache numbers below are the demo's own
    service = SolveService(ServiceConfig(max_batch_size=8))
    client = ServiceClient(service)

    print("mixed batch through the solve service")
    print(f"submitting {len(WORKLOAD)} requests "
          f"({len({w[1:] for w in WORKLOAD})} unique work keys)\n")

    responses = client.solve_many(build_requests())

    rows = []
    for response in responses:
        result = response.result or {}
        rows.append(
            (
                response.request_id,
                response.status,
                "hit" if response.dedup else "miss",
                response.batch_index,
                f"{result.get('cost', float('nan')):.3f}",
                f"{result.get('ratio_vs_lp', float('nan')):.3f}",
                result.get("rounds", "-"),
            )
        )
    print(
        render_table(
            ("request", "status", "dedup", "batch", "cost", "ratio_vs_lp", "rounds"),
            rows,
            title="responses (duplicates share their leader's bytes)",
        )
    )

    metrics = service.metrics_summary()
    print("\nservice metrics:")
    for key in (
        "responses_ok",
        "batches",
        "batch_size_mean",
        "batch_unique_mean",
        "dedup_hits",
        "cache_hits_instance",
        "cache_hits_lp",
        "latency_p50_s",
    ):
        print(f"  {key:>20} = {metrics[key]:.3f}")

    print(
        "\nSix requests, four unique work keys: the two duplicates were "
        "never solved — they were answered from their leader's slot "
        "(dedup=hit), and the repeated recipes re-used the cached "
        "instance and LP bound. Every response is byte-identical to a "
        "direct solve_distributed call with the same parameters."
    )


if __name__ == "__main__":
    main()
