"""Tracing: one connected span tree across the whole solve pipeline.

Runs a small batched workload through the solve service with a tracer
attached at every layer — the client session is the root span, each
request gets a service span, the batch and its work units get children,
pool workers ship their solve subtrees back across the process
boundary, and the simulator contributes one span per protocol round.
The demo prints the assembled tree (critical path starred), evaluates
the stock SLOs against the service's metrics, and writes two artifacts:
a JSONL span log (``repro trace tree/export`` reads it) and a
Chrome/Perfetto ``trace_event`` JSON you can drop into
``chrome://tracing`` or https://ui.perfetto.dev.

Run:  python examples/tracing.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.obs.slo import SLOMonitor, default_service_slos
from repro.obs.spans import (
    Tracer,
    critical_path,
    render_span_tree,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.perf.cache import clear_caches
from repro.service import (
    InstanceRecipe,
    ServiceClient,
    ServiceConfig,
    SolveRequest,
    SolveService,
)

#: (request id, family, instance seed, k). Two unique work keys plus a
#: duplicate, so the trace shows dedup: three request spans over two
#: work-unit spans.
WORKLOAD = (
    ("trace-a", "uniform", 3, 4),
    ("trace-b", "euclidean", 5, 6),
    ("trace-a2", "uniform", 3, 4),  # duplicate of trace-a
)

#: Where the artifacts land (a temp dir keeps reruns clean).
OUT_DIR = Path(tempfile.gettempdir()) / "repro_tracing_demo"


def build_requests() -> list[SolveRequest]:
    """The demo workload as request objects (contexts stamped later)."""
    return [
        SolveRequest(
            request_id=request_id,
            recipe=InstanceRecipe(family, 10, 30, seed),
            k=k,
        )
        for request_id, family, seed, k in WORKLOAD
    ]


def main() -> None:
    clear_caches()
    tracer = Tracer()
    service = SolveService(ServiceConfig(max_batch_size=8), tracer=tracer)
    client = ServiceClient(service, tracer=tracer)

    print("traced batched solve: one span tree, client to simulator round")
    responses = client.solve_many(build_requests())
    tracer.close()
    assert all(r.status == "ok" for r in responses)

    spans = tracer.export()
    print(
        f"\n{len(spans)} spans from {len(WORKLOAD)} requests "
        "(per-round spans pruned below depth 5):\n"
    )
    print(render_span_tree(spans, max_depth=5))

    path = [s.name for s in critical_path(spans)]
    print("\ncritical path (the chain a latency fix must shorten):")
    print("  " + " -> ".join(path))

    monitor = SLOMonitor(service.registry, default_service_slos())
    print("\nSLOs over the service registry:")
    print(monitor.render())

    span_log = write_spans_jsonl(spans, OUT_DIR / "spans.jsonl")
    chrome = write_chrome_trace(spans, OUT_DIR / "trace.json")
    print(f"\nwrote span log     {span_log}")
    print(f"wrote chrome trace {chrome}  (open in chrome://tracing)")
    print(
        "\nThe tree is connected end to end: the duplicate request's span "
        "ends at the batch without its own work unit (dedup), and every "
        "worker subtree was re-parented onto its unit span when the "
        "ordered merge brought it back across the process boundary."
    )


if __name__ == "__main__":
    main()
