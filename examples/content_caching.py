"""Content-cache placement over a CDN (non-metric coverage scenario).

Edge caches (facilities) can each serve the regions they are wired to —
a region outside a cache's footprint simply cannot be served by it, and
within a footprint serving is essentially free. Minimizing deployment
cost so that every region is covered is *non-metric* facility location
(weighted set cover), the hardness core of the problem and the regime the
PODC 2005 algorithm is designed for: the logarithmic factor in its bound
is unavoidable here.

Run:  python examples/content_caching.py
"""

from __future__ import annotations

from repro import greedy_solve, solve_distributed, solve_lp
from repro.analysis.tables import render_table
from repro.core.bounds import approximation_envelope
from repro.fl.generators import set_cover_instance


def main() -> None:
    instance = set_cover_instance(
        num_facilities=25, num_clients=120, seed=11, set_density=0.18
    )
    print(f"scenario: {instance}")
    print(
        f"{instance.num_edges} cache-region wires "
        f"(~{instance.num_edges / instance.num_clients:.1f} caches per region)\n"
    )

    lp = solve_lp(instance)
    greedy = greedy_solve(instance)
    print(f"LP lower bound:       {lp.value:8.3f}")
    print(
        f"centralized greedy:   {greedy.cost:8.3f} "
        f"(ratio {greedy.cost / lp.value:.3f}, the ln-n benchmark)\n"
    )

    rows = []
    for k in (1, 4, 9, 16, 25, 49):
        result = solve_distributed(instance, k=k, seed=2)
        envelope = approximation_envelope(
            k, instance.num_facilities, instance.num_clients, instance.rho
        )
        rows.append(
            (
                k,
                result.metrics.rounds,
                result.cost,
                result.cost / lp.value,
                envelope,
                len(result.open_facilities),
            )
        )
    print(
        render_table(
            ("k", "rounds", "cost", "ratio_vs_LP", "paper_envelope", "caches"),
            rows,
            title="distributed cache deployment: round budget vs quality",
        )
    )
    print(
        "\nEvery measured ratio sits far below the paper's analytic "
        "envelope; with a few dozen rounds the distributed deployment is "
        "within a small factor of the centralized greedy."
    )


if __name__ == "__main__":
    main()
