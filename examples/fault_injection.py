"""Running the protocol on an unreliable network (extension demo).

The PODC 2005 model assumes reliable synchronous links. This example
injects message loss and facility crashes, shows how the protocol's
deterministic fallback keeps most runs complete, and how incomplete runs
are detected and repaired.

It also demonstrates the observability path end to end: a lossy run is
streamed to a JSONL trace with a manifest sidecar, and ``inspect_trace``
reads the artifact back — including the per-kind drop accounting that
shows exactly which protocol messages the faults ate.

Finally it turns on the resilience layer: crash *recovery*, the
ACK/retransmit sublayer (watch the retries show up in the bit ledger),
and in-protocol self-healing, contrasting the self-healed outcome with
the plain protocol's post-hoc repair under the same faults.

Run:  python examples/fault_injection.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    DistributedFacilityLocation,
    FaultPlan,
    GilbertElliottLoss,
    JsonlTraceSink,
    ReliabilityPolicy,
    RunRecord,
    SelfHealingPolicy,
    inspect_trace,
    solve_lp,
)
from repro.analysis.tables import render_table
from repro.fl.generators import uniform_instance


def main() -> None:
    instance = uniform_instance(num_facilities=20, num_clients=60, seed=9)
    lp = solve_lp(instance)
    print(f"instance: {instance}\n")

    rows = []
    for drop_p in (0.0, 0.02, 0.05, 0.10, 0.20):
        complete = 0
        unserved_total = 0
        repaired_ratios = []
        seeds = range(10)
        for seed in seeds:
            plan = FaultPlan(drop_probability=drop_p, seed=100 + seed)
            result = DistributedFacilityLocation(
                instance, k=16, seed=seed, fault_plan=plan
            ).run()
            if result.feasible:
                complete += 1
            unserved_total += len(result.unserved_clients)
            try:
                repaired_ratios.append(result.repaired_solution().cost / lp.value)
            except Exception:
                pass  # no open facility reachable: count as unrepairable
        rows.append(
            (
                drop_p,
                f"{complete}/{len(list(seeds))}",
                unserved_total / 10,
                sum(repaired_ratios) / len(repaired_ratios)
                if repaired_ratios
                else float("nan"),
            )
        )
    print(
        render_table(
            ("drop_p", "complete_runs", "mean_unserved", "repaired_ratio"),
            rows,
            title="message loss vs protocol completeness (k=16, 10 seeds)",
        )
    )

    # Crash demo: kill three facilities mid-run.
    plan = FaultPlan(crash_rounds={0: 5, 1: 9, 2: 13})
    result = DistributedFacilityLocation(
        instance, k=16, seed=0, fault_plan=plan
    ).run()
    state = "complete" if result.feasible else "incomplete"
    print(
        f"\ncrash demo (facilities 0, 1, 2 die at rounds 5, 9, 13): run is "
        f"{state}; crashed facilities excluded from the open set "
        f"({sorted(result.open_facilities)[:6]}...)."
    )
    repaired = result.repaired_solution()
    print(f"repaired plan: cost {repaired.cost:.3f} "
          f"({repaired.cost / lp.value:.3f}x LP bound)")

    # Observability demo: stream one lossy run to a JSONL trace plus
    # manifest, then read the artifact back with the inspector. The
    # "dropped messages by kind" table shows which protocol messages the
    # faults actually ate — the raw material for debugging incomplete runs.
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "lossy.jsonl"
        sink = JsonlTraceSink(trace_path)
        plan = FaultPlan(drop_probability=0.10, seed=42)
        result = DistributedFacilityLocation(
            instance, k=16, seed=0, fault_plan=plan, trace=sink
        ).run()
        manifest = RunRecord.from_run(
            result,
            seed=0,
            parameters={"k": 16, "drop_probability": 0.10},
            wall_seconds=result.wall_seconds,
        )
        sink.write_json(manifest.to_dict())
        sink.close()

        summary = result.metrics.summary()
        print(
            f"\ntraced lossy run (drop_p=0.10): "
            f"{summary['dropped_messages']} messages dropped, by kind "
            f"{summary.get('drops_by_kind', {})}\n"
        )
        print(inspect_trace(trace_path))

    # Resilience demo: the same adversity, now with crash *recovery*, the
    # ACK/retransmit sublayer, and in-protocol self-healing. Facilities
    # 0-2 die early and rejoin later with volatile state reset; bursty
    # loss chews on every link; lost deliveries are retransmitted (and
    # charged — see the retransmit/ack lines of the ledger); any client
    # still unserved at the end of the schedule escalates to its cheapest
    # responsive facility instead of giving up.
    plan = FaultPlan(
        crash_rounds={0: 5, 1: 9, 2: 13},
        recovery_rounds={0: 15, 1: 19, 2: 23},
        burst=GilbertElliottLoss(
            p_good_to_bad=0.05, p_bad_to_good=0.5, loss_bad=0.9
        ),
        seed=7,
    )
    plain = DistributedFacilityLocation(
        instance, k=16, seed=0, fault_plan=plan
    ).run()
    resilient = DistributedFacilityLocation(
        instance,
        k=16,
        seed=0,
        fault_plan=plan,
        reliability=ReliabilityPolicy(max_retries=3, backoff=1),
        healing=SelfHealingPolicy(timeout_rounds=6, max_attempts=3),
    ).run()
    summary = resilient.metrics.summary()
    rel = resilient.diagnostics["reliability"]
    print(
        render_table(
            ("run", "complete", "unserved", "dropped", "retransmits", "acks"),
            [
                (
                    "plain",
                    str(plain.feasible),
                    len(plain.unserved_clients),
                    plain.metrics.dropped_messages,
                    0,
                    0,
                ),
                (
                    "resilient",
                    str(resilient.feasible),
                    len(resilient.unserved_clients),
                    resilient.metrics.dropped_messages,
                    summary["retransmitted_messages"],
                    summary["ack_messages"],
                ),
            ],
            title="crash-recovery + burst loss: plain vs resilient (same plan)",
        )
    )
    print(
        f"\nreliability sublayer: {rel['retries']} retries, {rel['acks']} acks, "
        f"{rel['gave_up']} given up, {rel['duplicates']} duplicate deliveries; "
        f"retransmitted traffic cost {summary['retransmitted_bits']} bits."
    )
    print(
        f"self-healing: {resilient.diagnostics['num_healed_clients']} clients "
        f"healed, {resilient.diagnostics['num_healed_opens']} facilities "
        f"opened by escalation."
    )
    if resilient.feasible:
        print(
            f"resilient run cost {resilient.cost:.3f} "
            f"({resilient.cost / lp.value:.3f}x LP bound); plain run "
            + (
                f"cost {plain.cost:.3f}"
                if plain.feasible
                else f"left {len(plain.unserved_clients)} clients unserved"
            )
        )


if __name__ == "__main__":
    main()
