"""Running the protocol on an unreliable network (extension demo).

The PODC 2005 model assumes reliable synchronous links. This example
injects message loss and facility crashes, shows how the protocol's
deterministic fallback keeps most runs complete, and how incomplete runs
are detected and repaired.

It also demonstrates the observability path end to end: a lossy run is
streamed to a JSONL trace with a manifest sidecar, and ``inspect_trace``
reads the artifact back — including the per-kind drop accounting that
shows exactly which protocol messages the faults ate.

Run:  python examples/fault_injection.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    DistributedFacilityLocation,
    FaultPlan,
    JsonlTraceSink,
    RunRecord,
    inspect_trace,
    solve_lp,
)
from repro.analysis.tables import render_table
from repro.fl.generators import uniform_instance


def main() -> None:
    instance = uniform_instance(num_facilities=20, num_clients=60, seed=9)
    lp = solve_lp(instance)
    print(f"instance: {instance}\n")

    rows = []
    for drop_p in (0.0, 0.02, 0.05, 0.10, 0.20):
        complete = 0
        unserved_total = 0
        repaired_ratios = []
        seeds = range(10)
        for seed in seeds:
            plan = FaultPlan(drop_probability=drop_p, seed=100 + seed)
            result = DistributedFacilityLocation(
                instance, k=16, seed=seed, fault_plan=plan
            ).run()
            if result.feasible:
                complete += 1
            unserved_total += len(result.unserved_clients)
            try:
                repaired_ratios.append(result.repaired_solution().cost / lp.value)
            except Exception:
                pass  # no open facility reachable: count as unrepairable
        rows.append(
            (
                drop_p,
                f"{complete}/{len(list(seeds))}",
                unserved_total / 10,
                sum(repaired_ratios) / len(repaired_ratios)
                if repaired_ratios
                else float("nan"),
            )
        )
    print(
        render_table(
            ("drop_p", "complete_runs", "mean_unserved", "repaired_ratio"),
            rows,
            title="message loss vs protocol completeness (k=16, 10 seeds)",
        )
    )

    # Crash demo: kill three facilities mid-run.
    plan = FaultPlan(crash_rounds={0: 5, 1: 9, 2: 13})
    result = DistributedFacilityLocation(
        instance, k=16, seed=0, fault_plan=plan
    ).run()
    state = "complete" if result.feasible else "incomplete"
    print(
        f"\ncrash demo (facilities 0, 1, 2 die at rounds 5, 9, 13): run is "
        f"{state}; crashed facilities excluded from the open set "
        f"({sorted(result.open_facilities)[:6]}...)."
    )
    repaired = result.repaired_solution()
    print(f"repaired plan: cost {repaired.cost:.3f} "
          f"({repaired.cost / lp.value:.3f}x LP bound)")

    # Observability demo: stream one lossy run to a JSONL trace plus
    # manifest, then read the artifact back with the inspector. The
    # "dropped messages by kind" table shows which protocol messages the
    # faults actually ate — the raw material for debugging incomplete runs.
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "lossy.jsonl"
        sink = JsonlTraceSink(trace_path)
        plan = FaultPlan(drop_probability=0.10, seed=42)
        result = DistributedFacilityLocation(
            instance, k=16, seed=0, fault_plan=plan, trace=sink
        ).run()
        manifest = RunRecord.from_run(
            result,
            seed=0,
            parameters={"k": 16, "drop_probability": 0.10},
            wall_seconds=result.wall_seconds,
        )
        sink.write_json(manifest.to_dict())
        sink.close()

        summary = result.metrics.summary()
        print(
            f"\ntraced lossy run (drop_p=0.10): "
            f"{summary['dropped_messages']} messages dropped, by kind "
            f"{summary.get('drops_by_kind', {})}\n"
        )
        print(inspect_trace(trace_path))


if __name__ == "__main__":
    main()
