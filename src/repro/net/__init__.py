"""Synchronous message-passing simulator (CONGEST-style).

This subpackage is the distributed substrate of the reproduction. It models
the PODC communication setting the paper is stated in:

* time proceeds in synchronous *rounds*;
* in each round every node may send one message to each neighbor;
* messages are accounted in *bits* so the CONGEST ``O(log N)``-bits-per-
  message claim can be measured (and optionally enforced);
* nodes are deterministic given their seeds — every run is reproducible.

The main entry points are :class:`~repro.net.simulator.Simulator`,
:class:`~repro.net.node.Node` and
:class:`~repro.net.topology.Topology`.
"""

from repro.net.message import Message
from repro.net.metrics import NetworkMetrics
from repro.net.node import Node, RoundContext
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.net.faults import (
    FaultPlan,
    GilbertElliottLoss,
    LinkFailure,
    NetworkPartition,
)
from repro.net.reliability import ReliabilityPolicy, ReliabilityStats

__all__ = [
    "Message",
    "NetworkMetrics",
    "Node",
    "RoundContext",
    "Simulator",
    "Topology",
    "FaultPlan",
    "GilbertElliottLoss",
    "LinkFailure",
    "NetworkPartition",
    "ReliabilityPolicy",
    "ReliabilityStats",
]
