"""Structured event tracing for simulations.

Tracing exists for two audiences: tests, which assert on the *sequence* of
protocol events rather than only on end states, and humans debugging a
protocol, who want a readable transcript. It is off by default and costs a
single attribute check per event when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.timeline import RoundTimelineEntry

__all__ = ["TraceEvent", "Trace", "NullTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event."""

    round_number: int
    node_id: int
    event: str
    data: Mapping[str, Any]

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[r{self.round_number:>4} n{self.node_id:>4}] {self.event} {fields}"


class Trace:
    """An in-memory, append-only event log."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    @property
    def enabled(self) -> bool:
        """Whether events are being recorded."""
        return True

    def record(
        self, round_number: int, node_id: int, event: str, data: Mapping[str, Any]
    ) -> None:
        """Append one event."""
        self._events.append(TraceEvent(round_number, node_id, event, dict(data)))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self, event: str | None = None, node_id: int | None = None
    ) -> list[TraceEvent]:
        """Filtered view of the log."""
        return [
            e
            for e in self._events
            if (event is None or e.event == event)
            and (node_id is None or e.node_id == node_id)
        ]

    def render(self) -> str:
        """Human-readable transcript."""
        return "\n".join(str(e) for e in self._events)

    # -- simulator lifecycle hooks -------------------------------------
    #
    # The simulator calls these at round boundaries and at end of run so
    # that *streaming* trace implementations (see repro.obs.sinks) can
    # flush per round and finalize their output. The in-memory default
    # needs neither, so both are no-ops here.

    def on_round_end(self, entry: "RoundTimelineEntry") -> None:
        """Round boundary: receives the round's telemetry entry."""

    def close(self) -> None:
        """End of run: release any underlying resources."""


class NullTrace(Trace):
    """Disabled trace: drops every event. The simulator default."""

    @property
    def enabled(self) -> bool:
        return False

    def record(
        self, round_number: int, node_id: int, event: str, data: Mapping[str, Any]
    ) -> None:
        """Discard the event."""
