"""Network-cost accounting: rounds, messages, bits, congestion.

The paper's complexity claims are about exactly two resources — the number
of synchronous rounds and the number of bits per message. The simulator
feeds every delivered message through :class:`NetworkMetrics`, so after a
run the caller can read off:

* ``rounds`` — rounds executed,
* ``total_messages`` / ``total_bits`` — traffic volume,
* ``max_message_bits`` — the largest single message (the CONGEST bound),
* ``max_messages_per_round`` — peak per-round traffic,
* per-kind message counts — useful for protocol-level regression tests,
* per-kind and per-round *drop* counts — fault injection loses concrete
  messages, and knowing *which* protocol step lost them (a dropped SERVE
  confirmation is much worse than a dropped ACTIVE beacon) is what makes
  fault experiments explainable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.registry import MetricsRegistry

__all__ = ["NetworkMetrics"]


@dataclass
class NetworkMetrics:
    """Mutable accumulator of network costs for one simulation run."""

    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    max_messages_per_round: int = 0
    dropped_messages: int = 0
    retransmitted_messages: int = 0
    retransmitted_bits: int = 0
    ack_messages: int = 0
    ack_bits: int = 0
    duplicated_messages: int = 0
    messages_by_kind: Counter = field(default_factory=Counter)
    drops_by_kind: Counter = field(default_factory=Counter)
    drops_by_round: Counter = field(default_factory=Counter)
    _current_round_messages: int = field(default=0, repr=False)

    def start_round(self) -> None:
        """Mark the beginning of a round."""
        self.rounds += 1
        self._current_round_messages = 0

    def record_message(self, message: Message) -> None:
        """Account one *sent* message (dropped ones are recorded separately)."""
        bits = message.bits
        self.total_messages += 1
        self.total_bits += bits
        self.max_message_bits = max(self.max_message_bits, bits)
        self.messages_by_kind[message.kind] += 1
        self._current_round_messages += 1
        self.max_messages_per_round = max(
            self.max_messages_per_round, self._current_round_messages
        )

    def record_drop(
        self, message: Message | None = None, round_number: int | None = None
    ) -> None:
        """Account one message lost to fault injection.

        The lost message itself (and the round the loss happened in) used
        to be discarded; passing them attributes the drop by message kind
        and by round so fault analyses can tell *what* was lost. Both
        arguments stay optional for callers that only need the total.
        """
        self.dropped_messages += 1
        if message is not None:
            self.drops_by_kind[message.kind] += 1
        if round_number is not None:
            self.drops_by_round[int(round_number)] += 1

    def record_retransmit(self, message: Message) -> None:
        """Account one retransmitted copy (reliable-delivery sublayer).

        A retransmission is real traffic: it is charged into the message
        and bit totals exactly like a fresh send (so the CONGEST envelope
        sees it), *and* tracked separately so the bandwidth price of
        reliability stays visible.
        """
        self.record_message(message)
        self.retransmitted_messages += 1
        self.retransmitted_bits += message.bits

    def record_ack(self, message: Message) -> None:
        """Account one explicit ACK of a retransmitted copy (charged)."""
        self.record_message(message)
        self.ack_messages += 1
        self.ack_bits += message.bits

    def record_duplicate(self, message: Message) -> None:
        """Account one fault-injected duplicate delivery (not charged:
        the network copied the message, the sender paid only once)."""
        self.duplicated_messages += 1

    @property
    def mean_message_bits(self) -> float:
        """Average bits per message (0 when no message was sent)."""
        if self.total_messages == 0:
            return 0.0
        return self.total_bits / self.total_messages

    def summary(self) -> dict[str, Any]:
        """Dictionary for tables and experiment records.

        Counts are ints, ``mean_message_bits`` is a float, and the per-kind
        / per-round breakdowns are plain ``dict`` with string keys so they
        survive JSON round-trips into experiment records.
        """
        return {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "mean_message_bits": self.mean_message_bits,
            "max_messages_per_round": self.max_messages_per_round,
            "dropped_messages": self.dropped_messages,
            "retransmitted_messages": self.retransmitted_messages,
            "retransmitted_bits": self.retransmitted_bits,
            "ack_messages": self.ack_messages,
            "ack_bits": self.ack_bits,
            "duplicated_messages": self.duplicated_messages,
            "messages_by_kind": dict(self.messages_by_kind),
            "drops_by_kind": dict(self.drops_by_kind),
            "drops_by_round": {
                str(r): count for r, count in sorted(self.drops_by_round.items())
            },
        }

    def publish(self, registry: "MetricsRegistry") -> None:
        """Publish the current totals into a metrics registry.

        Scalar totals become gauges under the ``net_`` prefix; the per-kind
        message and drop breakdowns become ``kind``-labeled gauges. Safe to
        call repeatedly (gauges overwrite).
        """
        registry.gauge("net_rounds").set(self.rounds)
        registry.gauge("net_messages_total").set(self.total_messages)
        registry.gauge("net_bits_total").set(self.total_bits)
        registry.gauge("net_max_message_bits").set(self.max_message_bits)
        registry.gauge("net_max_messages_per_round").set(self.max_messages_per_round)
        registry.gauge("net_dropped_messages").set(self.dropped_messages)
        registry.gauge("net_retransmitted_messages").set(self.retransmitted_messages)
        registry.gauge("net_retransmitted_bits").set(self.retransmitted_bits)
        registry.gauge("net_ack_messages").set(self.ack_messages)
        registry.gauge("net_ack_bits").set(self.ack_bits)
        registry.gauge("net_duplicated_messages").set(self.duplicated_messages)
        for kind, count in self.messages_by_kind.items():
            registry.gauge("net_messages_by_kind").set(count, kind=kind)
        for kind, count in self.drops_by_kind.items():
            registry.gauge("net_drops_by_kind").set(count, kind=kind)
