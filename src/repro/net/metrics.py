"""Network-cost accounting: rounds, messages, bits, congestion.

The paper's complexity claims are about exactly two resources — the number
of synchronous rounds and the number of bits per message. The simulator
feeds every delivered message through :class:`NetworkMetrics`, so after a
run the caller can read off:

* ``rounds`` — rounds executed,
* ``total_messages`` / ``total_bits`` — traffic volume,
* ``max_message_bits`` — the largest single message (the CONGEST bound),
* ``max_messages_per_round`` — peak per-round traffic,
* per-kind message counts — useful for protocol-level regression tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.net.message import Message

__all__ = ["NetworkMetrics"]


@dataclass
class NetworkMetrics:
    """Mutable accumulator of network costs for one simulation run."""

    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    max_messages_per_round: int = 0
    dropped_messages: int = 0
    messages_by_kind: Counter = field(default_factory=Counter)
    _current_round_messages: int = field(default=0, repr=False)

    def start_round(self) -> None:
        """Mark the beginning of a round."""
        self.rounds += 1
        self._current_round_messages = 0

    def record_message(self, message: Message) -> None:
        """Account one *sent* message (dropped ones are recorded separately)."""
        bits = message.bits
        self.total_messages += 1
        self.total_bits += bits
        self.max_message_bits = max(self.max_message_bits, bits)
        self.messages_by_kind[message.kind] += 1
        self._current_round_messages += 1
        self.max_messages_per_round = max(
            self.max_messages_per_round, self._current_round_messages
        )

    def record_drop(self) -> None:
        """Account one message dropped by fault injection."""
        self.dropped_messages += 1

    @property
    def mean_message_bits(self) -> float:
        """Average bits per message (0 when no message was sent)."""
        if self.total_messages == 0:
            return 0.0
        return self.total_bits / self.total_messages

    def summary(self) -> dict[str, Any]:
        """Dictionary for tables and experiment records.

        Counts are ints, ``mean_message_bits`` is a float, and
        ``messages_by_kind`` is a plain ``dict[str, int]`` so per-kind
        counts survive JSON round-trips into experiment records.
        """
        return {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "mean_message_bits": self.mean_message_bits,
            "max_messages_per_round": self.max_messages_per_round,
            "dropped_messages": self.dropped_messages,
            "messages_by_kind": dict(self.messages_by_kind),
        }
