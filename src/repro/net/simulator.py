"""The synchronous round engine.

:class:`Simulator` owns a topology, one :class:`~repro.net.node.Node` per
topology node, the metrics accumulator, optional fault injection and
optional tracing. Its contract:

* **Synchrony.** A message submitted in round ``r`` is delivered at the
  start of round ``r + 1``. During a round every (alive, unfinished-or-
  receiving) node is invoked exactly once.
* **Isolation.** Nodes interact only through messages; the engine validates
  neighbor-only sends and, optionally, the strict CONGEST discipline of one
  message per edge per round and a per-message bit budget.
* **Determinism.** Given the same topology, nodes, seed and fault plan, two
  runs produce identical traffic and identical final node states.
* **Termination.** The run ends when every node has ``finished`` and no
  message is in flight, or when ``max_rounds`` is reached — in which case
  :class:`~repro.exceptions.RoundLimitExceededError` is raised unless the
  caller opted into truncated runs with ``allow_truncation=True``.
"""

from __future__ import annotations

import operator
import time
from typing import Mapping, Sequence

from repro.exceptions import RoundLimitExceededError, SimulationError
from repro.net.columnar import InboxPool
from repro.net.faults import FaultPlan
from repro.net.message import Message
from repro.net.metrics import NetworkMetrics
from repro.net.node import Node, RoundContext
from repro.net.reliability import (
    ACK_KIND,
    PendingRetry,
    ReliabilityPolicy,
    ReliabilityStats,
)
from repro.net.rng import spawn_node_rngs
from repro.net.topology import Topology
from repro.net.trace import NullTrace, Trace
from repro.obs.probes import RoundProbe
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Tracer
from repro.obs.timeline import RoundTimeline, RoundTimelineEntry
from repro.obs.watchdogs import Watchdog

__all__ = ["Simulator"]

# Deterministic inbox order — (sender, kind) — realized as two stable
# single-attribute sorts. A single attrgetter("sender", "kind") key
# allocates one tuple per message per sort; the single-attribute getters
# return existing objects, so the two-pass sort allocates nothing. The
# second (primary-key) pass is also nearly free: deliveries append in
# sender order, so after the kind pass the list is close to
# sender-sorted and timsort runs in ~linear time.
_INBOX_ORDER_SECONDARY = operator.attrgetter("kind")
_INBOX_ORDER_PRIMARY = operator.attrgetter("sender")

# Shared inbox for nodes that received nothing this round. Handing every
# such node the same list avoids one allocation per silent node per
# round; protocol hooks treat their inbox as read-only (and the engine
# never sorts a list of fewer than two messages), so sharing is safe.
_EMPTY_INBOX: list[Message] = []


class Simulator:
    """Synchronous message-passing simulator.

    Parameters
    ----------
    topology:
        The communication graph.
    nodes:
        One node per topology identifier; either a sequence in id order or a
        mapping ``id -> node``. Node ids must match topology ids exactly.
    seed:
        Experiment seed; per-node independent random streams are derived
        from it.
    fault_plan:
        Optional fault injection (drops, bursts, partitions, link cuts,
        duplication, crashes with optional recovery — see
        :mod:`repro.net.faults`). The plan's random streams are reset at
        setup, so one plan object can be reused across runs.
    reliability:
        Optional :class:`~repro.net.reliability.ReliabilityPolicy`
        enabling the ACK/retransmit sublayer: deliveries lost to fault
        injection are retransmitted with bounded retries and per-round
        backoff, retransmissions and ACKs are charged into the metrics,
        and the ``reliability_stats`` attribute accumulates
        retries/acks/gave-up totals. Zero overhead when no fault fires.
    max_message_bits:
        When set, any message exceeding this many bits raises
        :class:`~repro.exceptions.MessageSizeError` at send time. Leave
        ``None`` to only *measure* sizes via metrics.
    enforce_single_message_per_edge:
        Strict CONGEST discipline: a node may send at most one message per
        neighbor per round.
    trace:
        Pass a :class:`~repro.net.trace.Trace` to record protocol events.
    probes:
        Optional :class:`~repro.obs.probes.RoundProbe` instances observed
        at every round boundary; their merged output is embedded in the
        round's timeline entry (``probe`` field). With no probes attached
        the per-round cost is a single truthiness check.
    watchdogs:
        Optional :class:`~repro.obs.watchdogs.Watchdog` invariant checks
        run at every round boundary (after probes, before the trace's
        round hook, so violations stream ahead of the round line).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when given,
        the simulator publishes per-round instruments (round wall-clock
        histogram, message counters) and the final
        :meth:`~repro.net.metrics.NetworkMetrics.publish` summary into it,
        and protocol nodes can publish through
        :meth:`~repro.net.node.RoundContext.count`.
    tracer:
        Optional :class:`~repro.obs.spans.Tracer`; when given, every
        executed round is recorded as a ``sim.round`` child span of the
        tracer's current span, annotated with the round's telemetry
        (messages, bits, drops, and any scalar probe observations such as
        dual sums). Spans observe only — they never alter the run.
    recorder:
        Optional :class:`~repro.obs.recorder.FlightRecorder`; when given,
        every round boundary is digested into the recording (node state
        and the message plane by kind), enabling replay verification and
        divergence bisection. Like the tracer, purely observational, and
        a single ``None`` check when absent.
    """

    def __init__(
        self,
        topology: Topology,
        nodes: Sequence[Node] | Mapping[int, Node],
        seed: int = 0,
        fault_plan: FaultPlan | None = None,
        reliability: ReliabilityPolicy | None = None,
        max_message_bits: int | None = None,
        enforce_single_message_per_edge: bool = False,
        trace: Trace | None = None,
        probes: Sequence[RoundProbe] = (),
        watchdogs: Sequence[Watchdog] = (),
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        recorder=None,
    ) -> None:
        self._topology = topology
        self._nodes = _normalize_nodes(topology, nodes)
        self._seed = int(seed)
        self._fault_plan = fault_plan or FaultPlan()
        self.reliability = reliability
        self.reliability_stats = ReliabilityStats()
        self.fault_warnings: list[dict] = []
        self._retransmits: list[PendingRetry] = []
        self.max_message_bits = max_message_bits
        self.enforce_single_message_per_edge = enforce_single_message_per_edge
        self.trace: Trace = trace if trace is not None else NullTrace()
        self.probes: tuple[RoundProbe, ...] = tuple(probes)
        self.watchdogs: tuple[Watchdog, ...] = tuple(watchdogs)
        self.registry: MetricsRegistry | None = registry
        self.tracer: Tracer | None = tracer
        self.recorder = recorder
        self.metrics = NetworkMetrics()
        self.timeline = RoundTimeline()
        self._round = 0
        self._pending: list[Message] = []  # sent this round, delivered next
        # Inbox lists are pooled and reused across rounds: delivery used
        # to allocate one fresh list per receiving node per round.
        self._inbox_pool = InboxPool()
        self._started = False
        # One context object for the whole run, rebound per invocation
        # (see RoundContext.rebind) instead of allocated per node per
        # round — cuts the dominant allocation churn of the round loop.
        self._context = RoundContext(self, self._nodes[0], 0)
        for node, rng in zip(self._nodes, spawn_node_rngs(seed, len(self._nodes))):
            node.neighbors = topology.neighbors(node.node_id)
            node.rng = rng

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The communication graph."""
        return self._topology

    @property
    def nodes(self) -> tuple[Node, ...]:
        """All nodes, in id order."""
        return tuple(self._nodes)

    def node(self, node_id: int) -> Node:
        """The node with the given id."""
        return self._nodes[node_id]

    @property
    def current_round(self) -> int:
        """The last executed round number (0 before the first round)."""
        return self._round

    @property
    def pending_messages(self) -> tuple[Message, ...]:
        """Messages submitted this round, awaiting next-round delivery.

        This is the message plane the flight recorder digests: at the
        round boundary it holds exactly the traffic the round produced.
        """
        return tuple(self._pending)

    @property
    def all_finished(self) -> bool:
        """Whether every alive node has declared itself finished."""
        return all(n.finished or n.crashed for n in self._nodes)

    # ------------------------------------------------------------------
    # Engine
    # ------------------------------------------------------------------

    def _submit(self, message: Message) -> None:
        """Accept a message from a node context (internal API)."""
        self._pending.append(message)

    def setup(self) -> None:
        """Run every node's :meth:`~repro.net.node.Node.on_setup` hook.

        Called automatically by :meth:`run`; exposed separately so tests
        can single-step simulations with :meth:`step`.
        """
        if self._started:
            raise SimulationError("setup() may only run once")
        self._started = True
        # Fresh fault streams per run: a plan reused across simulators
        # must make identical decisions in each (coin-for-coin contract).
        self._fault_plan.reset()
        start = time.perf_counter()
        ctx = self._context
        for node in self._nodes:
            ctx.rebind(node, round_number=0)
            node.on_setup(ctx)
        for message in self._pending:
            self.metrics.record_message(message)
        # Round 0: setup traffic would otherwise be invisible in per-round
        # accounting (it predates the first metrics.start_round()).
        self._record_timeline_entry(
            round_number=0,
            wall_ms=(time.perf_counter() - start) * 1e3,
            messages=self.metrics.total_messages,
            bits=self.metrics.total_bits,
            drops=0,
        )

    def step(self) -> None:
        """Execute exactly one synchronous round."""
        if not self._started:
            self.setup()
        start = time.perf_counter()
        messages_before = self.metrics.total_messages
        bits_before = self.metrics.total_bits
        drops_before = self.metrics.dropped_messages
        self._round += 1
        self.metrics.start_round()
        self._apply_fault_lifecycle()
        inboxes = self._deliver()
        ctx = self._context
        round_number = self._round
        for node in self._nodes:
            if node.crashed:
                continue
            inbox = inboxes.get(node.node_id)
            if inbox is None:
                # A finished node with nothing delivered has nothing to
                # react to: skipping its invocation is observationally
                # identical (its hooks are no-ops on an empty inbox) and
                # removes the bulk of the tail-phase per-round cost.
                if node.finished:
                    continue
                inbox = _EMPTY_INBOX
            elif len(inbox) > 1:
                inbox.sort(key=_INBOX_ORDER_SECONDARY)
                inbox.sort(key=_INBOX_ORDER_PRIMARY)
            ctx.rebind(node, round_number)
            node.on_round(ctx, inbox)
        # Round over: every inbox has been consumed; reclaim the buffers.
        self._inbox_pool.release_all()
        for message in self._pending:
            self.metrics.record_message(message)
        self._record_timeline_entry(
            round_number=self._round,
            wall_ms=(time.perf_counter() - start) * 1e3,
            messages=self.metrics.total_messages - messages_before,
            bits=self.metrics.total_bits - bits_before,
            drops=self.metrics.dropped_messages - drops_before,
        )

    def _apply_fault_lifecycle(self) -> None:
        """Apply scheduled crashes and recoveries at the round boundary.

        Crashes take effect *before* delivery: a node that crashes at the
        beginning of round ``r`` neither receives nor — retroactively —
        sends in round ``r`` (its in-flight messages are accounted as
        drops). A recovering node rejoins before delivery, so it receives
        from this round on; :meth:`~repro.net.node.Node.on_recover` runs
        first so the node can reset its volatile state.
        """
        if self._fault_plan.is_trivial:
            return
        for node in self._nodes:
            if not node.crashed and self._fault_plan.crashes_at(
                node.node_id, self._round
            ):
                node.crashed = True
                if self.trace.enabled:
                    self.trace.record(
                        self._round, node.node_id, "node_crashed", {}
                    )
            elif node.crashed and self._fault_plan.recovers_at(
                node.node_id, self._round
            ):
                node.crashed = False
                ctx = self._context
                ctx.rebind(node, self._round)
                node.on_recover(ctx)
                if self.trace.enabled:
                    self.trace.record(
                        self._round, node.node_id, "node_recovered", {}
                    )

    def _deliver(self) -> dict[int, list[Message]]:
        """Route pending traffic and due retransmissions through the faults.

        Returns per-node inboxes. The fast path — trivial fault plan, no
        reliability sublayer — routes without consulting any fault model,
        so fault-free runs pay nothing for the resilience machinery.
        """
        inboxes: dict[int, list[Message]] = {}
        acquire = self._inbox_pool.acquire
        trivial = self._fault_plan.is_trivial
        if trivial and not self._retransmits:
            for message in self._pending:
                inbox = inboxes.get(message.receiver)
                if inbox is None:
                    inboxes[message.receiver] = inbox = acquire()
                inbox.append(message)
            self._pending.clear()
            return inboxes
        deliverable: list[tuple[Message, int]] = [
            (message, 0) for message in self._pending
        ]
        self._pending.clear()
        if self._retransmits:
            still_waiting: list[PendingRetry] = []
            for retry in self._retransmits:
                if retry.due_round > self._round:
                    still_waiting.append(retry)
                    continue
                if self._nodes[retry.message.sender].crashed:
                    continue  # a dead sender retransmits nothing
                self.metrics.record_retransmit(retry.message)
                self.reliability_stats.retries += 1
                if self.registry is not None:
                    self.registry.counter("reliable_retries_total").inc(
                        kind=retry.message.kind
                    )
                deliverable.append((retry.message, retry.attempts))
            self._retransmits = still_waiting
        for message, attempts in deliverable:
            if self._nodes[message.sender].crashed:
                # A node that crashed before delivery never really sent.
                self.metrics.record_drop(message, self._round)
                continue
            if self._nodes[message.receiver].crashed:
                # Delivered into a dead node: lost, but (unlike a dead
                # sender) worth retrying — the receiver may recover.
                self.metrics.record_drop(message, self._round)
                self._schedule_retry(message, attempts)
                continue
            if not trivial and self._fault_plan.should_drop(message, self._round):
                self.metrics.record_drop(message, self._round)
                self._schedule_retry(message, attempts)
                continue
            inbox = inboxes.get(message.receiver)
            if inbox is None:
                inboxes[message.receiver] = inbox = acquire()
            inbox.append(message)
            if not trivial and self._fault_plan.should_duplicate(message):
                inbox.append(message)
                self.metrics.record_duplicate(message)
            if attempts > 0:
                self._acknowledge(message, attempts)
        return inboxes

    def _schedule_retry(self, message: Message, attempts: int) -> None:
        """Queue the next retransmission, or give the message up for dead."""
        if self.reliability is None:
            return
        if attempts >= self.reliability.max_retries:
            self.reliability_stats.gave_up += 1
            if self.registry is not None:
                self.registry.counter("reliable_gave_up_total").inc(
                    kind=message.kind
                )
            if self.trace.enabled:
                self.trace.record(
                    self._round,
                    message.sender,
                    "reliable_gave_up",
                    {"kind": message.kind, "receiver": message.receiver},
                )
            return
        next_attempt = attempts + 1
        self._retransmits.append(
            PendingRetry(
                message=message,
                attempts=next_attempt,
                due_round=self._round + self.reliability.backoff * next_attempt,
            )
        )

    def _acknowledge(self, message: Message, attempts: int) -> None:
        """Explicitly ACK a delivered retransmission (charged traffic).

        The ACK itself crosses the faulty network: if it is lost the
        sender, none the wiser, retransmits once more and the receiver
        sees a duplicate — exactly the at-least-once semantics real
        retransmit protocols give, which is why the protocol layers must
        stay idempotent.
        """
        if self.reliability is None:
            return
        ack = Message(
            sender=message.receiver,
            receiver=message.sender,
            kind=ACK_KIND,
            round_sent=self._round,
        )
        self.metrics.record_ack(ack)
        self.reliability_stats.acks += 1
        if self.registry is not None:
            self.registry.counter("reliable_acks_total").inc()
        if self._fault_plan.should_drop(ack, self._round + 1):
            self.metrics.record_drop(ack, self._round)
            self.reliability_stats.duplicates += 1
            self._schedule_retry(message, attempts)

    def _record_timeline_entry(
        self, round_number: int, wall_ms: float, messages: int, bits: int, drops: int
    ) -> None:
        """Append one round's telemetry and notify probes/watchdogs/trace.

        Probes, watchdogs and registry publishes are each guarded by a
        single emptiness/None check, so runs without them attached pay
        nothing beyond the pre-existing telemetry cost.
        """
        alive = sum(1 for n in self._nodes if not n.crashed)
        finished = sum(1 for n in self._nodes if n.finished)
        probe_data: dict | None = None
        if self.probes:
            probe_data = {}
            for probe in self.probes:
                probe_data.update(probe.observe(self, round_number))
        entry = RoundTimelineEntry(
            round_number=round_number,
            wall_ms=wall_ms,
            messages=messages,
            bits=bits,
            drops=drops,
            alive=alive,
            finished=finished,
            probe=probe_data,
            engine="simulator",
        )
        self.timeline.append(entry)
        if self.watchdogs:
            for watchdog in self.watchdogs:
                watchdog.check(self, entry)
        if self.registry is not None:
            self.registry.counter("sim_rounds_total").inc()
            self.registry.histogram("sim_round_wall_ms").observe(wall_ms)
            self.registry.histogram("sim_round_messages").observe(messages)
        if self.tracer is not None:
            attributes: dict = {
                "round": round_number,
                "messages": messages,
                "bits": bits,
                "engine": "simulator",
            }
            if drops:
                attributes["drops"] = drops
            if probe_data:
                attributes.update(
                    (key, value)
                    for key, value in probe_data.items()
                    if isinstance(value, (int, float))
                )
            self.tracer.add_span(
                "sim.round",
                start_unix=time.time() - wall_ms / 1e3,
                duration_s=wall_ms / 1e3,
                attributes=attributes,
            )
        if self.recorder is not None:
            self.recorder.on_simulator_round(self, round_number)
        self.trace.on_round_end(entry)

    def run(self, max_rounds: int, allow_truncation: bool = False) -> NetworkMetrics:
        """Run until global termination or ``max_rounds``.

        Returns the metrics accumulator. Raises
        :class:`~repro.exceptions.RoundLimitExceededError` if the protocol
        has not terminated after ``max_rounds`` rounds, unless
        ``allow_truncation`` is set (used by experiments that deliberately
        cut protocols short).
        """
        if max_rounds < 0:
            raise SimulationError(f"max_rounds must be >= 0, got {max_rounds}")
        self.fault_warnings = self._fault_plan.validate(max_rounds)
        if self.fault_warnings and self.trace.enabled:
            for warning in self.fault_warnings:
                self.trace.record(0, -1, "fault_plan_warning", warning)
        if not self._started:
            self.setup()
        while not (self.all_finished and not self._pending and not self._retransmits):
            if self._round >= max_rounds:
                if allow_truncation:
                    if self.registry is not None:
                        self.metrics.publish(self.registry)
                    return self.metrics
                unfinished = [
                    n.node_id for n in self._nodes if not (n.finished or n.crashed)
                ]
                raise RoundLimitExceededError(
                    f"protocol did not terminate within {max_rounds} rounds; "
                    f"{len(unfinished)} nodes still running "
                    f"(first few: {unfinished[:5]})"
                )
            self.step()
        for watchdog in self.watchdogs:
            watchdog.finalize(self)
        if self.registry is not None:
            self.metrics.publish(self.registry)
        return self.metrics


def _normalize_nodes(
    topology: Topology, nodes: Sequence[Node] | Mapping[int, Node]
) -> list[Node]:
    """Validate and order the node collection against the topology."""
    if isinstance(nodes, Mapping):
        ordered = [nodes.get(i) for i in range(topology.num_nodes)]
        missing = [i for i, n in enumerate(ordered) if n is None]
        if missing:
            raise SimulationError(f"missing nodes for ids {missing[:5]}")
        result = [n for n in ordered if n is not None]
    else:
        result = list(nodes)
    if len(result) != topology.num_nodes:
        raise SimulationError(
            f"got {len(result)} nodes for a topology of {topology.num_nodes}"
        )
    for expected, node in enumerate(result):
        if node.node_id != expected:
            raise SimulationError(
                f"node at position {expected} has id {node.node_id}; "
                "node ids must match topology ids"
            )
    return result
