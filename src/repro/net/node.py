"""The node protocol: what a distributed algorithm implements.

A protocol is a set of :class:`Node` subclasses. The simulator drives them
through exactly two hooks:

* :meth:`Node.on_setup` — called once, before round 1. Messages sent here
  are delivered in round 1.
* :meth:`Node.on_round` — called every round with the messages delivered to
  the node this round. Messages sent here are delivered next round.

Nodes communicate *only* through :meth:`RoundContext.send`; the simulator
rejects sends to non-neighbors, so information can never bypass the network
topology. A node signals local termination by setting ``self.finished``;
the simulation ends when every node has finished and no message is in
flight.

Within a round nodes are invoked in increasing node-id order, but since a
message sent in round ``r`` is only visible in round ``r + 1``, the
invocation order cannot leak information — the semantics are those of a
fully synchronous network.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

import numpy as np

from repro.exceptions import MessageSizeError, NotANeighborError, SimulationError
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.simulator import Simulator

__all__ = ["Node", "RoundContext"]


class Node:
    """Base class for protocol nodes.

    Attributes populated by the simulator before :meth:`on_setup`:

    ``node_id``
        This node's identifier in the topology.
    ``neighbors``
        Frozenset of neighbor identifiers.
    ``rng``
        A private ``numpy.random.Generator``; all of the node's coin flips
        must come from here so runs are reproducible.
    ``finished``
        Set to ``True`` by the node itself when its part of the protocol is
        complete.
    ``crashed``
        Set by the simulator's fault injection; a crashed node is not
        invoked and its outgoing messages are discarded. A node with a
        scheduled recovery round rejoins later: the simulator clears the
        flag and calls :meth:`on_recover` so the node can reset its
        volatile state.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        self.neighbors: frozenset[int] = frozenset()
        self.rng: np.random.Generator = np.random.default_rng(0)
        self.finished = False
        self.crashed = False

    def on_setup(self, ctx: "RoundContext") -> None:
        """One-time initialization hook (round 0). Override as needed."""

    def on_round(self, ctx: "RoundContext", inbox: list[Message]) -> None:
        """Per-round hook. Override in protocol implementations."""
        raise NotImplementedError

    def on_recover(self, ctx: "RoundContext") -> None:
        """Crash-recovery hook: the node rejoins with volatile state reset.

        Called by the simulator at the start of the node's scheduled
        recovery round, before :meth:`on_round` runs again. Override to
        clear whatever in-protocol scratch state would not have survived a
        real crash (durable decisions — e.g. a facility's committed
        opening — are assumed journaled and survive). The default keeps
        everything, which models a node that merely paused.
        """

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"{type(self).__name__}(id={self.node_id}, {state})"


class RoundContext:
    """Per-node, per-round capability handle.

    The context is the only channel through which a node can affect the
    outside world, which is what lets the simulator enforce the model:
    neighbor-only delivery, per-message bit budgets, and (optionally) the
    strict CONGEST rule of at most one message per edge per round.
    """

    def __init__(self, simulator: "Simulator", node: Node, round_number: int) -> None:
        self._simulator = simulator
        self._node = node
        self._round_number = round_number
        self._sent_to: set[int] = set()

    def rebind(self, node: Node, round_number: int) -> None:
        """Point this context at another node (or round) and reset state.

        The simulator reuses one context object across all node
        invocations of a round instead of allocating one per node — a
        measurable win on the hot path. Contexts are only valid during
        the ``on_setup``/``on_round``/``on_recover`` call they are passed
        to, so nodes must not retain them; rebinding enforces that any
        stale reference now acts for the wrong node.
        """
        self._node = node
        self._round_number = round_number
        self._sent_to.clear()

    @property
    def round_number(self) -> int:
        """The current round (0 during setup)."""
        return self._round_number

    @property
    def node_id(self) -> int:
        """Identifier of the node this context belongs to."""
        return self._node.node_id

    def send(self, receiver: int, kind: str, **payload: Any) -> None:
        """Queue a message for delivery to ``receiver`` next round.

        Raises
        ------
        NotANeighborError
            If ``receiver`` is not adjacent to this node.
        MessageSizeError
            If the simulator enforces a bit budget and the message exceeds
            it.
        SimulationError
            If strict CONGEST mode is on and this node already sent to
            ``receiver`` this round.
        """
        if receiver not in self._node.neighbors:
            raise NotANeighborError(
                f"node {self._node.node_id} attempted to send to non-neighbor "
                f"{receiver}"
            )
        if self._simulator.enforce_single_message_per_edge:
            if receiver in self._sent_to:
                raise SimulationError(
                    f"node {self._node.node_id} sent two messages to {receiver} "
                    f"in round {self._round_number} (strict CONGEST mode)"
                )
            self._sent_to.add(receiver)
        message = Message(
            sender=self._node.node_id,
            receiver=receiver,
            kind=kind,
            payload=payload,
            round_sent=self._round_number,
        )
        budget = self._simulator.max_message_bits
        if budget is not None and message.bits > budget:
            raise MessageSizeError(
                f"message {message!r} is {message.bits} bits, exceeding the "
                f"{budget}-bit budget"
            )
        self._simulator._submit(message)

    def broadcast(self, kind: str, **payload: Any) -> None:
        """Send the same message to every neighbor."""
        for receiver in sorted(self._node.neighbors):
            self.send(receiver, kind, **payload)

    def log(self, event: str, **data: Any) -> None:
        """Record a structured trace event (no-op when tracing is off).

        The ``enabled`` guard makes the disabled path a single attribute
        check: with the default :class:`~repro.net.trace.NullTrace`,
        ``record`` is never even called.
        """
        trace = self._simulator.trace
        if trace.enabled:
            trace.record(self._round_number, self._node.node_id, event, data)

    def count(self, name: str, amount: float = 1, **labels: Any) -> None:
        """Increment a registry counter (no-op without a registry).

        Guarded exactly like :meth:`log`: when no
        :class:`~repro.obs.registry.MetricsRegistry` is attached to the
        simulator, the cost is a single ``None`` check and the registry
        machinery is never touched.
        """
        registry = self._simulator.registry
        if registry is not None:
            registry.counter(name).inc(amount, **labels)
