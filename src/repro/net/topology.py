"""Communication topologies for the simulator.

A :class:`Topology` is an undirected graph over integer node identifiers
``0 .. num_nodes-1``. For facility location the canonical topology is the
bipartite facility/client graph of the instance
(:meth:`Topology.from_instance`): facilities take identifiers
``0 .. m-1`` and client ``j`` takes identifier ``m + j``. Helper builders
for rings, paths, stars and complete graphs exist for simulator tests.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.exceptions import SimulationError
from repro.fl.instance import FacilityLocationInstance

__all__ = ["Topology"]


class Topology:
    """An immutable undirected graph of simulator nodes."""

    def __init__(self, num_nodes: int, edges: Iterable[tuple[int, int]]) -> None:
        if num_nodes <= 0:
            raise SimulationError("a topology needs at least one node")
        adjacency: list[set[int]] = [set() for _ in range(num_nodes)]
        for u, v in edges:
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise SimulationError(
                    f"edge ({u}, {v}) out of range for {num_nodes} nodes"
                )
            if u == v:
                raise SimulationError(f"self-loop on node {u} is not allowed")
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._adjacency = tuple(frozenset(s) for s in adjacency)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def from_instance(cls, instance: FacilityLocationInstance) -> "Topology":
        """Bipartite communication graph of a facility-location instance.

        Facility ``i`` is node ``i``; client ``j`` is node
        ``instance.num_facilities + j``. There is a link exactly where the
        instance has a (finite-cost) edge — matching the paper's model in
        which a client can talk to precisely the facilities it could use.
        """
        m = instance.num_facilities
        edges = ((i, m + j) for i, j, _ in instance.iter_edges())
        return cls(instance.num_nodes, edges)

    @classmethod
    def complete(cls, num_nodes: int) -> "Topology":
        """Complete graph on ``num_nodes`` nodes."""
        edges = (
            (u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)
        )
        return cls(num_nodes, edges)

    @classmethod
    def ring(cls, num_nodes: int) -> "Topology":
        """Cycle on ``num_nodes >= 3`` nodes."""
        if num_nodes < 3:
            raise SimulationError("a ring needs at least 3 nodes")
        edges = ((u, (u + 1) % num_nodes) for u in range(num_nodes))
        return cls(num_nodes, edges)

    @classmethod
    def path(cls, num_nodes: int) -> "Topology":
        """Path on ``num_nodes`` nodes."""
        edges = ((u, u + 1) for u in range(num_nodes - 1))
        return cls(num_nodes, edges)

    @classmethod
    def star(cls, num_leaves: int) -> "Topology":
        """Star with center 0 and ``num_leaves`` leaves."""
        edges = ((0, v) for v in range(1, num_leaves + 1))
        return cls(num_leaves + 1, edges)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(s) for s in self._adjacency) // 2

    def neighbors(self, node: int) -> frozenset[int]:
        """The neighbor set of ``node``."""
        return self._adjacency[node]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return len(self._adjacency[node])

    def max_degree(self) -> int:
        """Maximum degree over all nodes."""
        return max(len(s) for s in self._adjacency)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether nodes ``u`` and ``v`` are linked."""
        return v in self._adjacency[u]

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adjacency):
            for v in nbrs:
                if u < v:
                    yield u, v

    # ------------------------------------------------------------------
    # Graph measures
    # ------------------------------------------------------------------

    def connected_components(self) -> list[frozenset[int]]:
        """Connected components, each as a frozenset of node ids."""
        seen: set[int] = set()
        components: list[frozenset[int]] = []
        for start in range(self.num_nodes):
            if start in seen:
                continue
            component = {start}
            queue = deque([start])
            while queue:
                u = queue.popleft()
                for v in self._adjacency[u]:
                    if v not in component:
                        component.add(v)
                        queue.append(v)
            seen |= component
            components.append(frozenset(component))
        return components

    def is_connected(self) -> bool:
        """Whether the graph is a single connected component."""
        return len(self.connected_components()) == 1

    def eccentricity(self, node: int) -> int:
        """Greatest BFS distance from ``node`` within its component."""
        dist = {node: 0}
        queue = deque([node])
        far = 0
        while queue:
            u = queue.popleft()
            for v in self._adjacency[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    far = max(far, dist[v])
                    queue.append(v)
        return far

    def diameter(self) -> int:
        """Maximum eccentricity over all nodes, per component.

        For disconnected graphs this returns the largest component-local
        diameter (distances across components are undefined rather than
        infinite, matching how component-local protocols behave).
        """
        return max(self.eccentricity(u) for u in range(self.num_nodes))

    def to_networkx(self):
        """Export as a ``networkx.Graph`` (lazy import) for analysis."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_nodes))
        graph.add_edges_from(self.iter_edges())
        return graph

    def __repr__(self) -> str:
        return f"Topology(nodes={self.num_nodes}, edges={self.num_edges})"
