"""Deterministic randomness for distributed nodes.

Every node must flip its own coins — sharing one stream across nodes would
silently leak information between them and would also make results depend
on node scheduling order. :func:`spawn_node_rngs` derives one independent
``numpy`` generator per node from a single experiment seed using
``SeedSequence.spawn``, which guarantees streams that are both independent
and stable across runs and platforms.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_node_rngs", "spawn_node_rng_range", "derive_rng"]


def spawn_node_rngs(seed: int, num_nodes: int) -> list[np.random.Generator]:
    """One independent, reproducible generator per node.

    Parameters
    ----------
    seed:
        The experiment-level seed.
    num_nodes:
        How many node streams to derive.
    """
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(num_nodes)]


def spawn_node_rng_range(seed: int, start: int, stop: int) -> list[np.random.Generator]:
    """Streams for the node-id range ``[start, stop)`` only.

    ``SeedSequence.spawn`` keys each child purely by its index
    (``spawn_key=(i,)`` under the root entropy), so the stream of node
    ``i`` does not depend on how many siblings were spawned alongside it.
    This builds ``stop - start`` generators bit-identical to
    ``spawn_node_rngs(seed, N)[start:stop]`` for any ``N >= stop`` without
    materializing the other ``N - (stop - start)`` streams — which is what
    lets a million-node columnar run (where only facilities ever draw
    coins) and a sharded worker (which owns one node slice) pay only for
    the streams they actually use.
    """
    return [
        np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(i,)))
        for i in range(start, stop)
    ]


def derive_rng(seed: int, *keys: int) -> np.random.Generator:
    """A generator keyed by ``seed`` plus a tuple of integer sub-keys.

    Used when a component needs its own stream (e.g. the fault injector)
    that must not collide with any node stream: node streams use
    ``SeedSequence(seed).spawn`` while derived streams use entropy-extended
    sequences, so the two families never overlap.
    """
    return np.random.default_rng(np.random.SeedSequence(entropy=(seed, *keys)))
