"""Reusable distributed primitives over the simulator.

Building blocks commonly needed when composing protocols on
:class:`~repro.net.simulator.Simulator`:

* :class:`BfsTreeNode` — builds a BFS spanning tree from a root (layered
  flooding; each node learns its parent, children and depth),
* :class:`ConvergecastNode` — BFS tree + aggregation of per-node values up
  to the root (sum / min / max), then broadcast of the result back down, so
  every node learns the global aggregate in `O(diameter)` rounds,
* :class:`LeaderElectionNode` — minimum-identifier flooding: after
  `diameter` rounds every node of a component knows the component's leader.

These are textbook `O(diameter)`-round protocols with `O(log N)`-bit
messages (IDs and one numeric value). The facility-location algorithm does
not need them in its default known-coefficients mode, but
:mod:`repro.core.aggregation` is exactly a specialization of the
convergecast pattern, and users extending the library (e.g. computing a
global `OPT` estimate, electing a coordinator) get them for free.

All three node classes run for a caller-fixed number of rounds (any upper
bound on the diameter), mirroring the model assumption that nodes know a
polynomial bound on `N`.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.exceptions import SimulationError
from repro.net.message import Message
from repro.net.node import Node, RoundContext
from repro.net.simulator import Simulator
from repro.net.topology import Topology

__all__ = [
    "BfsTreeNode",
    "ConvergecastNode",
    "LeaderElectionNode",
    "build_bfs_tree",
    "convergecast",
    "elect_leaders",
]

_EXPLORE = "bfs"
_VALUE_UP = "up"
_RESULT_DOWN = "down"
_LEADER = "ldr"


class BfsTreeNode(Node):
    """Layered BFS flooding from a designated root.

    After round ``d`` every node at distance ``d`` from the root knows its
    ``parent`` and ``depth``; parents learn their ``children`` one round
    later (children confirm adoption). Runs for ``total_rounds`` rounds.
    """

    def __init__(self, node_id: int, is_root: bool, total_rounds: int) -> None:
        super().__init__(node_id)
        self.is_root = bool(is_root)
        self.total_rounds = int(total_rounds)
        self.parent: int | None = None
        self.depth: int | None = 0 if is_root else None
        self.children: set[int] = set()

    def on_setup(self, ctx: RoundContext) -> None:
        if self.is_root:
            ctx.broadcast(_EXPLORE, depth=0)

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        for msg in inbox:
            if msg.kind == _EXPLORE and self.depth is None:
                self.parent = msg.sender
                self.depth = int(msg["depth"]) + 1
                ctx.send(self.parent, _EXPLORE + "+")  # adoption confirm
                ctx.broadcast(_EXPLORE, depth=self.depth)
            elif msg.kind == _EXPLORE + "+":
                self.children.add(msg.sender)
        if ctx.round_number >= self.total_rounds:
            self.finished = True


class ConvergecastNode(BfsTreeNode):
    """BFS tree + aggregate-up + broadcast-down.

    Every node contributes ``value``; after the run every node in the
    root's component holds the component aggregate in ``result``. The
    aggregation operator must be associative and commutative
    (``"sum" | "min" | "max"``).

    The schedule is time-triggered: nodes aggregate upward once their
    subtree is guaranteed complete (``total_rounds`` past), which costs
    ``2 * total_rounds + O(1)`` rounds overall — the textbook convergecast
    without termination detection, appropriate for the known-``N`` model.
    """

    _OPS: dict[str, Callable[[float, float], float]] = {
        "sum": lambda a, b: a + b,
        "min": min,
        "max": max,
    }

    def __init__(
        self,
        node_id: int,
        is_root: bool,
        total_rounds: int,
        value: float,
        op: str = "sum",
    ) -> None:
        if op not in self._OPS:
            raise SimulationError(f"unknown aggregation op {op!r}")
        super().__init__(node_id, is_root, 3 * total_rounds + 3)
        self.tree_rounds = int(total_rounds)
        self.value = float(value)
        self.op = op
        self.accumulated = float(value)
        self.result: float | None = None
        self._sent_up = False

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        merge = self._OPS[self.op]
        for msg in inbox:
            if msg.kind == _VALUE_UP:
                self.accumulated = merge(self.accumulated, float(msg["value"]))
            elif msg.kind == _RESULT_DOWN:
                if self.result is None:
                    self.result = float(msg["value"])
                    for child in sorted(self.children):
                        ctx.send(child, _RESULT_DOWN, value=self.result)
        super().on_round(ctx, inbox)
        # Upward phase: leaves (and inner nodes) report once the tree is
        # final and all children have reported. Deepest nodes go first by
        # scheduling on depth: node at depth d sends at round
        # tree_rounds + (tree_rounds - d) + 1.
        if (
            not self._sent_up
            and self.parent is not None
            and self.depth is not None
            and ctx.round_number == self.tree_rounds + (self.tree_rounds - self.depth) + 1
        ):
            ctx.send(self.parent, _VALUE_UP, value=self.accumulated)
            self._sent_up = True
        # Root publishes once everything must have arrived.
        if (
            self.is_root
            and self.result is None
            and ctx.round_number == 2 * self.tree_rounds + 2
        ):
            self.result = self.accumulated
            for child in sorted(self.children):
                ctx.send(child, _RESULT_DOWN, value=self.result)


class LeaderElectionNode(Node):
    """Minimum-identifier flooding leader election.

    After ``total_rounds >= diameter`` rounds, ``leader`` holds the
    smallest node id of the node's connected component; the unique node
    with ``leader == node_id`` is the component's leader.
    """

    def __init__(self, node_id: int, total_rounds: int) -> None:
        super().__init__(node_id)
        self.total_rounds = int(total_rounds)
        self.leader = int(node_id)

    def on_setup(self, ctx: RoundContext) -> None:
        ctx.broadcast(_LEADER, best=self.leader)

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        improved = False
        for msg in inbox:
            if msg.kind == _LEADER and int(msg["best"]) < self.leader:
                self.leader = int(msg["best"])
                improved = True
        if improved and ctx.round_number < self.total_rounds:
            ctx.broadcast(_LEADER, best=self.leader)
        if ctx.round_number >= self.total_rounds:
            self.finished = True

    @property
    def is_leader(self) -> bool:
        """Whether this node won its component's election."""
        return self.leader == self.node_id


# ----------------------------------------------------------------------
# Convenience runners
# ----------------------------------------------------------------------


def build_bfs_tree(
    topology: Topology, root: int, rounds: int | None = None, seed: int = 0
) -> list[BfsTreeNode]:
    """Run BFS-tree construction; returns the node objects for inspection."""
    rounds = rounds if rounds is not None else topology.num_nodes
    nodes = [
        BfsTreeNode(i, is_root=(i == root), total_rounds=rounds)
        for i in range(topology.num_nodes)
    ]
    Simulator(topology, nodes, seed=seed).run(max_rounds=rounds + 1)
    return nodes


def convergecast(
    topology: Topology,
    root: int,
    values: list[float],
    op: str = "sum",
    rounds: int | None = None,
    seed: int = 0,
) -> tuple[float, list[ConvergecastNode]]:
    """Aggregate ``values`` to ``root`` and broadcast the result back.

    Returns ``(aggregate, nodes)``; every node in the root's component has
    ``node.result == aggregate`` afterwards.
    """
    if len(values) != topology.num_nodes:
        raise SimulationError(
            f"need one value per node: {len(values)} != {topology.num_nodes}"
        )
    rounds = rounds if rounds is not None else topology.num_nodes
    nodes = [
        ConvergecastNode(
            i, is_root=(i == root), total_rounds=rounds, value=values[i], op=op
        )
        for i in range(topology.num_nodes)
    ]
    Simulator(topology, nodes, seed=seed).run(max_rounds=3 * rounds + 4)
    result = nodes[root].result
    if result is None or not math.isfinite(result):
        raise SimulationError("convergecast did not produce a finite result")
    return result, nodes


def elect_leaders(
    topology: Topology, rounds: int | None = None, seed: int = 0
) -> list[int]:
    """Run leader election; returns each node's elected leader id."""
    rounds = rounds if rounds is not None else topology.num_nodes
    nodes = [
        LeaderElectionNode(i, total_rounds=rounds)
        for i in range(topology.num_nodes)
    ]
    Simulator(topology, nodes, seed=seed).run(max_rounds=rounds + 1)
    return [node.leader for node in nodes]
