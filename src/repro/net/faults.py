"""Fault injection for robustness experiments (extension E11).

The PODC 2005 model assumes reliable synchronous links; fault injection is
an *extension* this repository adds so the deterministic-fallback step of
the algorithm can be exercised under adversity. Two fault classes are
modeled:

* **message drops** — each message is lost independently with probability
  ``drop_probability``;
* **node crashes** — a node listed in ``crash_rounds`` stops executing at
  the beginning of the given round and never sends again.

Fault decisions use their own random stream derived from the plan's seed,
so enabling faults does not perturb any node's coin flips — a faulty run
and a fault-free run of the same protocol are coin-for-coin comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import SimulationError
from repro.net.message import Message
from repro.net.rng import derive_rng

__all__ = ["FaultPlan"]


@dataclass
class FaultPlan:
    """Configuration of injected faults for one simulation run.

    Parameters
    ----------
    drop_probability:
        Independent loss probability applied to every message.
    crash_rounds:
        Mapping ``node_id -> round`` after whose beginning the node is dead.
    seed:
        Seed of the fault injector's private random stream.
    """

    drop_probability: float = 0.0
    crash_rounds: Mapping[int, int] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise SimulationError(
                f"drop_probability must lie in [0, 1], got {self.drop_probability}"
            )
        for node, rnd in self.crash_rounds.items():
            if rnd < 1:
                raise SimulationError(
                    f"crash round for node {node} must be >= 1, got {rnd}"
                )
        self._rng = derive_rng(self.seed, 0xFA)

    def should_drop(self, message: Message) -> bool:
        """Decide (reproducibly) whether this message is lost."""
        if self.drop_probability <= 0.0:
            return False
        return bool(self._rng.random() < self.drop_probability)

    def crashes_at(self, node_id: int, round_number: int) -> bool:
        """Whether ``node_id`` crashes at the start of ``round_number``."""
        return self.crash_rounds.get(node_id) == round_number

    @property
    def is_trivial(self) -> bool:
        """True when the plan injects nothing."""
        return self.drop_probability <= 0.0 and not self.crash_rounds
