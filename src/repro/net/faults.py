"""Fault injection for robustness experiments (extension E11/E17).

The PODC 2005 model assumes reliable synchronous links; fault injection is
an *extension* this repository adds so the deterministic-fallback and
self-healing steps of the algorithm can be exercised under adversity. The
fault family is composable — one :class:`FaultPlan` may combine any subset
of:

* **iid message drops** — each message is lost independently with
  probability ``drop_probability``;
* **bursty (correlated) loss** — a per-link Gilbert–Elliott two-state
  channel (:class:`GilbertElliottLoss`): each directed link wanders between
  a *good* and a *bad* state round by round and loses messages with the
  state's loss probability, producing the loss bursts real networks show;
* **directional link failures** — :class:`LinkFailure` kills one direction
  of one edge over a round window (the reverse direction keeps working);
* **network partitions** — :class:`NetworkPartition` severs all traffic
  between node groups for a round interval, then heals;
* **message duplication** — a delivered message arrives twice with
  probability ``duplicate_probability`` (protocols must be idempotent);
* **node crashes, optionally with recovery** — a node listed in
  ``crash_rounds`` stops executing at the beginning of the given round; if
  it also appears in ``recovery_rounds`` it rejoins at that later round
  with its volatile state reset (see
  :meth:`repro.net.node.Node.on_recover`).

Fault decisions use their own random streams derived from the plan's seed,
so enabling faults does not perturb any node's coin flips — a faulty run
and a fault-free run of the same protocol are coin-for-coin comparable.
Each sub-model draws from its own derived stream, so adding burst loss
does not shift the iid-drop stream either. The simulator calls
:meth:`FaultPlan.reset` at setup, so one plan object can be reused across
runs without advancing any stream (reproducibility is per-run, not
per-object).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.net.message import Message
from repro.net.rng import derive_rng

__all__ = [
    "FaultPlan",
    "GilbertElliottLoss",
    "LinkFailure",
    "NetworkPartition",
]

# Sub-stream keys: each fault model owns a derived RNG so composing models
# never shifts another model's draws. 0xFA is the historical iid-drop key.
_KEY_IID_DROP = 0xFA
_KEY_DUPLICATE = 0xD1
_KEY_BURST = 0x6E


def _check_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise SimulationError(f"{name} must lie in [0, 1], got {value}")
    return float(value)


@dataclass(frozen=True)
class GilbertElliottLoss:
    """Two-state (good/bad) burst-loss channel, per directed link.

    Every directed link carries an independent Markov chain: in the *good*
    state messages are lost with probability ``loss_good`` (usually 0), in
    the *bad* state with ``loss_bad`` (usually near 1). The chain moves
    good→bad with ``p_good_to_bad`` and bad→good with ``p_bad_to_good``
    once per round, so losses cluster into bursts whose mean length is
    ``1 / p_bad_to_good`` rounds.
    """

    p_good_to_bad: float
    p_bad_to_good: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            _check_probability(name, getattr(self, name))


@dataclass(frozen=True)
class LinkFailure:
    """One direction of one edge fails over a round window.

    Messages from ``sender`` to ``receiver`` delivered in rounds
    ``[start_round, end_round]`` (inclusive; ``end_round=None`` means
    forever) are lost. The reverse direction is unaffected — declare a
    second :class:`LinkFailure` for a bidirectional cut.
    """

    sender: int
    receiver: int
    start_round: int = 1
    end_round: int | None = None

    def __post_init__(self) -> None:
        if self.start_round < 1:
            raise SimulationError(
                f"link failure start_round must be >= 1, got {self.start_round}"
            )
        if self.end_round is not None and self.end_round < self.start_round:
            raise SimulationError(
                f"link failure window is empty: "
                f"[{self.start_round}, {self.end_round}]"
            )

    def severs(self, sender: int, receiver: int, round_number: int) -> bool:
        """Whether this failure eats a ``sender -> receiver`` delivery now."""
        return (
            sender == self.sender
            and receiver == self.receiver
            and round_number >= self.start_round
            and (self.end_round is None or round_number <= self.end_round)
        )


@dataclass(frozen=True)
class NetworkPartition:
    """All traffic between node groups is severed for a round interval.

    ``groups`` lists disjoint node sets; during rounds ``[start_round,
    end_round]`` a message whose endpoints lie in different groups is lost.
    Nodes not listed in any group form one implicit extra group, so a
    single-group partition cuts that group off from the rest of the
    network.
    """

    groups: tuple[frozenset[int], ...]
    start_round: int
    end_round: int

    def __init__(
        self,
        groups: Iterable[Iterable[int]],
        start_round: int,
        end_round: int,
    ) -> None:
        object.__setattr__(
            self, "groups", tuple(frozenset(int(n) for n in g) for g in groups)
        )
        object.__setattr__(self, "start_round", int(start_round))
        object.__setattr__(self, "end_round", int(end_round))
        if not self.groups:
            raise SimulationError("partition needs at least one node group")
        if self.start_round < 1 or self.end_round < self.start_round:
            raise SimulationError(
                f"partition window is invalid: "
                f"[{self.start_round}, {self.end_round}]"
            )
        seen: set[int] = set()
        for group in self.groups:
            if group & seen:
                raise SimulationError("partition groups must be disjoint")
            seen |= group

    def _side(self, node: int) -> int:
        for index, group in enumerate(self.groups):
            if node in group:
                return index
        return -1  # the implicit "rest of the network" group

    def severs(self, sender: int, receiver: int, round_number: int) -> bool:
        """Whether this partition eats a delivery between the two nodes."""
        if not self.start_round <= round_number <= self.end_round:
            return False
        return self._side(sender) != self._side(receiver)


class _BurstChannel:
    """Per-link Gilbert–Elliott chain state (lazily created)."""

    __slots__ = ("bad", "last_round", "rng")

    def __init__(self, rng: np.random.Generator) -> None:
        self.bad = False
        self.last_round = 0
        self.rng = rng


@dataclass
class FaultPlan:
    """Configuration of injected faults for one simulation run.

    Parameters
    ----------
    drop_probability:
        Independent loss probability applied to every message.
    crash_rounds:
        Mapping ``node_id -> round`` after whose beginning the node is dead.
    seed:
        Seed of the fault injector's private random streams.
    burst:
        Optional :class:`GilbertElliottLoss` correlated-loss channel.
    link_failures:
        Directional per-link failures (:class:`LinkFailure`).
    partitions:
        Network partitions over round intervals (:class:`NetworkPartition`).
    duplicate_probability:
        Probability that a delivered message arrives twice.
    recovery_rounds:
        Mapping ``node_id -> round`` at which a crashed node rejoins with
        reset volatile state; every listed node must also appear in
        ``crash_rounds`` with an earlier round.
    """

    drop_probability: float = 0.0
    crash_rounds: Mapping[int, int] = field(default_factory=dict)
    seed: int = 0
    burst: GilbertElliottLoss | None = None
    link_failures: Sequence[LinkFailure] = ()
    partitions: Sequence[NetworkPartition] = ()
    duplicate_probability: float = 0.0
    recovery_rounds: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_probability("drop_probability", self.drop_probability)
        _check_probability("duplicate_probability", self.duplicate_probability)
        for node, rnd in self.crash_rounds.items():
            if rnd < 1:
                raise SimulationError(
                    f"crash round for node {node} must be >= 1, got {rnd}"
                )
        for node, rnd in self.recovery_rounds.items():
            crash = self.crash_rounds.get(node)
            if crash is None:
                raise SimulationError(
                    f"node {node} has a recovery round but no crash round"
                )
            if rnd <= crash:
                raise SimulationError(
                    f"node {node} recovers at round {rnd}, not after its "
                    f"crash at round {crash}"
                )
        self.link_failures = tuple(self.link_failures)
        self.partitions = tuple(self.partitions)
        self.reset()

    # ------------------------------------------------------------------
    # Stream lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Re-derive every fault stream from the seed.

        Called by the simulator at setup, so reusing one plan object
        across two runs yields identical fault decisions in both — the
        streams are per-run, never carried over from a previous run.
        """
        self._rng = derive_rng(self.seed, _KEY_IID_DROP)
        self._dup_rng = derive_rng(self.seed, _KEY_DUPLICATE)
        self._burst_channels: dict[tuple[int, int], _BurstChannel] = {}

    # ------------------------------------------------------------------
    # Per-message decisions
    # ------------------------------------------------------------------

    def should_drop(self, message: Message, round_number: int | None = None) -> bool:
        """Decide (reproducibly) whether this delivery is lost.

        ``round_number`` is the delivery round; it defaults to
        ``message.round_sent + 1`` (the synchronous-delivery contract).
        Deterministic models (link failures, partitions) are consulted
        first so they never consume random draws.
        """
        rnd = round_number if round_number is not None else message.round_sent + 1
        for failure in self.link_failures:
            if failure.severs(message.sender, message.receiver, rnd):
                return True
        for partition in self.partitions:
            if partition.severs(message.sender, message.receiver, rnd):
                return True
        if self.drop_probability > 0.0 and bool(
            self._rng.random() < self.drop_probability
        ):
            return True
        if self.burst is not None and self._burst_drop(message, rnd):
            return True
        return False

    def _burst_drop(self, message: Message, round_number: int) -> bool:
        """Advance the link's two-state chain to this round; draw the loss."""
        model = self.burst
        assert model is not None
        key = (message.sender, message.receiver)
        channel = self._burst_channels.get(key)
        if channel is None:
            channel = _BurstChannel(
                derive_rng(self.seed, _KEY_BURST, message.sender, message.receiver)
            )
            self._burst_channels[key] = channel
        while channel.last_round < round_number:
            flip = model.p_bad_to_good if channel.bad else model.p_good_to_bad
            if bool(channel.rng.random() < flip):
                channel.bad = not channel.bad
            channel.last_round += 1
        loss = model.loss_bad if channel.bad else model.loss_good
        if loss <= 0.0:
            return False
        if loss >= 1.0:
            return True
        return bool(channel.rng.random() < loss)

    def should_duplicate(self, message: Message) -> bool:
        """Decide (reproducibly) whether this delivery arrives twice."""
        if self.duplicate_probability <= 0.0:
            return False
        return bool(self._dup_rng.random() < self.duplicate_probability)

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------

    def crashes_at(self, node_id: int, round_number: int) -> bool:
        """Whether ``node_id`` crashes at the start of ``round_number``."""
        return self.crash_rounds.get(node_id) == round_number

    def recovers_at(self, node_id: int, round_number: int) -> bool:
        """Whether ``node_id`` rejoins at the start of ``round_number``."""
        return self.recovery_rounds.get(node_id) == round_number

    # ------------------------------------------------------------------
    # Static validation
    # ------------------------------------------------------------------

    def validate(self, max_rounds: int) -> list[dict[str, Any]]:
        """Diagnose schedule entries that can never fire within a horizon.

        ``crashes_at``/``recovers_at`` use exact round equality, so a crash
        scheduled past ``max_rounds`` silently never happens. Rather than
        ignoring it, the simulator calls this at run start and surfaces
        each finding as a ``fault_plan_warning`` trace event and in the run
        diagnostics.
        """
        warnings: list[dict[str, Any]] = []
        for node, rnd in sorted(self.crash_rounds.items()):
            if rnd > max_rounds:
                warnings.append(
                    {
                        "issue": "crash_after_horizon",
                        "node": node,
                        "round": rnd,
                        "max_rounds": max_rounds,
                    }
                )
        for node, rnd in sorted(self.recovery_rounds.items()):
            if rnd > max_rounds and self.crash_rounds.get(node, 0) <= max_rounds:
                warnings.append(
                    {
                        "issue": "recovery_after_horizon",
                        "node": node,
                        "round": rnd,
                        "max_rounds": max_rounds,
                    }
                )
        for index, partition in enumerate(self.partitions):
            if partition.start_round > max_rounds:
                warnings.append(
                    {
                        "issue": "partition_after_horizon",
                        "partition": index,
                        "round": partition.start_round,
                        "max_rounds": max_rounds,
                    }
                )
        for index, failure in enumerate(self.link_failures):
            if failure.start_round > max_rounds:
                warnings.append(
                    {
                        "issue": "link_failure_after_horizon",
                        "link": index,
                        "round": failure.start_round,
                        "max_rounds": max_rounds,
                    }
                )
        return warnings

    @property
    def is_trivial(self) -> bool:
        """True when the plan injects nothing."""
        return (
            self.drop_probability <= 0.0
            and not self.crash_rounds
            and self.burst is None
            and not self.link_failures
            and not self.partitions
            and self.duplicate_probability <= 0.0
        )
