"""Messages and their bit-size accounting.

The CONGEST model allows ``O(log N)`` bits per message. To make that claim
*measurable*, every message computes the number of bits a straightforward
binary encoding of its payload would take:

* ``bool`` — 1 bit;
* ``int`` — ``1 + ceil(log2(|v| + 1))`` bits (sign + magnitude), which is
  ``O(log N)`` for values polynomial in the network size;
* ``float`` — 64 bits (one machine word; the theory model assumes costs are
  polynomially-bounded integers, for which a word is ``O(log N)`` bits —
  see DESIGN.md, fidelity note on cost encoding);
* ``str`` — 8 bits per character (used only for the message *kind* tag,
  which is drawn from a constant-size protocol alphabet and therefore
  contributes ``O(1)`` bits);
* ``None`` — 1 bit.

Payload values are restricted to these scalar types; containers are
deliberately rejected so no protocol can smuggle unbounded data through a
single message unnoticed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import SimulationError

__all__ = ["Message", "payload_bits", "scalar_bits"]

_FLOAT_BITS = 64
_CHAR_BITS = 8


def scalar_bits(value: Any) -> int:
    """Bit cost of one scalar payload value (see module docstring)."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 1 + max(1, math.ceil(math.log2(abs(value) + 1)) if value else 1)
    if isinstance(value, float):
        return _FLOAT_BITS
    if isinstance(value, str):
        return _CHAR_BITS * max(1, len(value))
    raise SimulationError(
        f"unsupported message payload type {type(value).__name__}; "
        "only None/bool/int/float/str scalars may be sent"
    )


def payload_bits(payload: Mapping[str, Any]) -> int:
    """Total bit cost of a payload mapping (keys cost nothing: they are the
    fixed field names of the protocol's message format, not transmitted
    data)."""
    return sum(scalar_bits(v) for v in payload.values())


@dataclass(frozen=True)
class Message:
    """One message in flight.

    Attributes
    ----------
    sender / receiver:
        Node identifiers (integers assigned by the topology).
    kind:
        Protocol-level message type tag, e.g. ``"alpha"`` or ``"open"``.
    payload:
        Mapping of field name to scalar value.
    round_sent:
        The round in which the message was submitted; it is delivered at
        ``round_sent + 1``.
    """

    sender: int
    receiver: int
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    round_sent: int = 0

    @property
    def bits(self) -> int:
        """Encoded size: kind tag plus payload scalars."""
        return scalar_bits(self.kind) + payload_bits(self.payload)

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into the payload."""
        return self.payload.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self.payload.items())
        return (
            f"Message({self.sender}->{self.receiver} @r{self.round_sent} "
            f"{self.kind}[{fields}])"
        )
