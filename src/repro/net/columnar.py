"""Columnar message-plane accounting and inbox buffer reuse.

Two pieces live here:

* :class:`ColumnarBitLedger` — the CONGEST cost model for the columnar
  engine. The columnar engine never materializes
  :class:`~repro.net.message.Message` objects (that is the point: a
  million-node round cannot afford one Python object per edge), but the
  paper's complexity claims are still about rounds, messages, and bits —
  so each kernel phase reports its *counts* to the ledger, which charges
  them with the exact per-field bit prices
  :mod:`repro.net.message` uses (64-bit floats, 8 bits per kind
  character, ``1 + max(1, ceil(log2 N))`` bits for a node id) and
  accumulates them into the same :class:`~repro.net.metrics.NetworkMetrics`
  / :class:`~repro.obs.timeline.RoundTimeline` shapes every other engine
  produces. Downstream consumers (manifests, service payloads,
  ``repro compare``) cannot tell the difference.
* :class:`InboxPool` — list-buffer reuse for the object-graph
  :class:`~repro.net.simulator.Simulator`. Delivery used to allocate a
  fresh list per receiving node per round; the pool loans cleared lists
  and takes them back at the round boundary, making steady-state
  delivery allocation-free.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.net.metrics import NetworkMetrics

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.net.message import Message
    from repro.obs.timeline import RoundTimeline

__all__ = ["ColumnarBitLedger", "InboxPool"]


class ColumnarBitLedger:
    """Modeled CONGEST traffic for one columnar run.

    Kernel drivers report phase counts (how many edges carried an alpha
    value, how many clients accepted an offer, ...) and the ledger maps
    each protocol phase to one synchronous communication round of
    uniform-size messages. The mapping mirrors what the object-graph
    protocol nodes actually send:

    ==================  =========================================  ==========
    modeled round       one message per                            payload
    ==================  =========================================  ==========
    ``greedy/active``   active-client edge                         1 bit
    ``greedy/propose``  member edge of a proposing star            float
    ``greedy/accept``   client that accepted an offer              node id
    ``greedy/serve``    served client + newly opened facility      node id
    ``greedy/force``    leftover client forcing a facility open    node id
    ``dual/alpha``      unfrozen-client edge                       float
    ``dual/tight``      facility that just became tight            1 bit
    ``dual/freeze``     client that just froze                     1 bit
    ``dual/select``     client announcing its cheapest witness     node id
    ``dual/open``       edge of a coin-opened facility             1 bit
    ``dual/join``       client joining (or forcing) a facility     node id
    ==================  =========================================  ==========
    """

    def __init__(self, num_facilities: int, num_clients: int, num_edges: int) -> None:
        self.num_facilities = int(num_facilities)
        self.num_clients = int(num_clients)
        self.num_edges = int(num_edges)
        num_nodes = self.num_facilities + self.num_clients
        #: Bits to name one node, as message.py prices an int payload.
        self.id_bits = 1 + max(1, math.ceil(math.log2(max(num_nodes, 2))))
        self.metrics = NetworkMetrics()
        self._entries: list[tuple[int, int, int]] = []  # (round, msgs, bits)

    # ------------------------------------------------------------------
    # Internal charging
    # ------------------------------------------------------------------

    def _charge(self, kind: str, count: int, payload_bits: int) -> tuple[int, int]:
        """Charge ``count`` messages of one kind; returns (msgs, bits)."""
        count = int(count)
        if count <= 0:
            return 0, 0
        per_message = 8 * len(kind) + payload_bits
        metrics = self.metrics
        metrics.total_messages += count
        metrics.total_bits += per_message * count
        metrics.max_message_bits = max(metrics.max_message_bits, per_message)
        metrics.messages_by_kind[kind] += count
        return count, per_message * count

    def _round(self, *phases: tuple[str, int, int]) -> None:
        """Close one modeled synchronous round of the given phases."""
        metrics = self.metrics
        metrics.rounds += 1
        messages = 0
        bits = 0
        for kind, count, payload_bits in phases:
            m, b = self._charge(kind, count, payload_bits)
            messages += m
            bits += b
        metrics.max_messages_per_round = max(
            metrics.max_messages_per_round, messages
        )
        self._entries.append((metrics.rounds, messages, bits))

    # ------------------------------------------------------------------
    # Phase reports (called once per protocol iteration/level)
    # ------------------------------------------------------------------

    def greedy_iteration(
        self, active_edges: int, proposals: int, offers: int, served: int, opened: int
    ) -> None:
        """One scaled-greedy iteration: beacon, propose, accept, resolve."""
        self._round(("greedy/active", active_edges, 1))
        self._round(("greedy/propose", proposals, 64))
        self._round(("greedy/accept", offers, self.id_bits))
        self._round(
            ("greedy/serve", served, self.id_bits),
            ("greedy/open", opened, 1),
        )

    def greedy_force(self, forced: int) -> None:
        """Terminal force round for clients with no open neighbor."""
        self._round(("greedy/force", forced, self.id_bits))

    def dual_level(
        self, unfrozen: int, unfrozen_edges: int, newly_tight: int, newly_frozen: int
    ) -> None:
        """One dual-ascent level: alpha broadcast, tightness, freezes."""
        self._round(("dual/alpha", unfrozen_edges, 64))
        self._round(("dual/tight", newly_tight, 1))
        self._round(("dual/freeze", newly_frozen, 1))

    def dual_rounding(self, selections: int, open_edges: int, joins: int) -> None:
        """Terminal rounding: witness selection, open ads, joins."""
        self._round(("dual/select", selections, self.id_bits))
        self._round(("dual/open", open_edges, 1))
        self._round(("dual/join", joins, self.id_bits))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_metrics(self) -> NetworkMetrics:
        """The accumulated :class:`NetworkMetrics` (shared, not copied)."""
        return self.metrics

    def to_timeline(self, num_nodes: int) -> "RoundTimeline":
        """A per-round timeline of the modeled traffic, engine-tagged.

        ``wall_ms`` is zero on every entry: the modeled rounds have no
        measured duration (the engine's real wall-clock is a property of
        the whole solve, reported separately).
        """
        from repro.obs.timeline import RoundTimeline, RoundTimelineEntry

        entries = [
            RoundTimelineEntry(
                round_number=round_number,
                wall_ms=0.0,
                messages=messages,
                bits=bits,
                drops=0,
                alive=num_nodes,
                finished=0,
                engine="columnar",
            )
            for round_number, messages, bits in self._entries
        ]
        return RoundTimeline(entries)


class InboxPool:
    """Reusable pool of inbox lists for the round engine.

    ``acquire`` hands out an empty list (recycled when possible);
    ``release_all`` clears every loaned list and returns it to the free
    pool. After warm-up the delivery path allocates nothing: the pool
    high-water mark is the peak number of simultaneously receiving nodes.
    """

    def __init__(self) -> None:
        self._free: list[list["Message"]] = []
        self._loaned: list[list["Message"]] = []

    def acquire(self) -> list["Message"]:
        """An empty inbox list, owned by the pool until ``release_all``."""
        inbox = self._free.pop() if self._free else []
        self._loaned.append(inbox)
        return inbox

    def release_all(self) -> None:
        """Reclaim every loaned inbox (clearing contents in place)."""
        for inbox in self._loaned:
            inbox.clear()
        self._free.extend(self._loaned)
        self._loaned.clear()

    @property
    def pooled(self) -> int:
        """Lists currently sitting in the free pool (for tests/benches)."""
        return len(self._free)
