"""Reliable-delivery sublayer: ACK/retransmit over the lossy network.

The PODC model assumes reliable links; :mod:`repro.net.faults` breaks that
assumption, and this module restores it — *partially, and at a measurable
price*. When a :class:`ReliabilityPolicy` is attached to the simulator,
every message lost to fault injection is retransmitted by its sender with
bounded retries and per-round backoff, and every *retransmitted* copy that
arrives is acknowledged by the receiver. Both the retransmissions and the
ACKs are charged against the run's message/bit accounting, so the
robustness/bandwidth trade-off shows up in the same CONGEST ledger the
paper's claims are stated in.

Semantics
---------
* First transmissions carry no explicit ACK: in a synchronous protocol the
  next round's natural reply traffic doubles as a cumulative
  acknowledgement (piggybacking), which is what makes the sublayer
  **zero-overhead when idle** — a fault-free run with reliability enabled
  is byte-identical in traffic to a run without it.
* A delivery lost in round ``r`` is retransmitted so it arrives in round
  ``r + backoff * attempt`` (linear backoff: attempt 1 after ``backoff``
  rounds, attempt 2 after ``2 * backoff`` more, ...). Each retransmitted
  copy is charged like a fresh message of the same kind and size.
* A retransmitted copy that arrives triggers an explicit ``ack`` message
  (charged); if the ACK itself is lost the sender retransmits again and
  the receiver sees a duplicate — protocols must stay idempotent, which
  both shipped variants are.
* After ``max_retries`` failed attempts the sender gives up; the message
  is gone for good and the ``gave_up`` counter records it. In-protocol
  self-healing (:mod:`repro.core.healing`) is the layer above that copes
  with such permanent losses.
* A crashed sender stops retransmitting; a crashed *receiver* keeps being
  retried (it may recover within the retry budget).

Counters are published both into the attached metrics registry
(``reliable_retries_total`` / ``reliable_acks_total`` /
``reliable_gave_up_total``) and into the simulator's
:class:`ReliabilityStats`, which needs no registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.net.message import Message

__all__ = ["ReliabilityPolicy", "ReliabilityStats", "ACK_KIND"]

#: Message kind of the explicit acknowledgement of a retransmitted copy.
ACK_KIND = "ack"


@dataclass(frozen=True)
class ReliabilityPolicy:
    """Opt-in configuration of the ACK/retransmit sublayer.

    Parameters
    ----------
    max_retries:
        How many retransmissions a sender attempts before giving up.
    backoff:
        Linear per-round backoff factor: retry ``i`` (1-based) arrives
        ``backoff * i`` rounds after the loss it reacts to.
    """

    max_retries: int = 3
    backoff: int = 1

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise SimulationError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )
        if self.backoff < 1:
            raise SimulationError(f"backoff must be >= 1, got {self.backoff}")


@dataclass
class ReliabilityStats:
    """Run totals of the reliable-delivery sublayer."""

    retries: int = 0
    acks: int = 0
    gave_up: int = 0
    duplicates: int = 0

    def summary(self) -> dict[str, int]:
        """Plain-dict view for diagnostics and manifests."""
        return {
            "retries": self.retries,
            "acks": self.acks,
            "gave_up": self.gave_up,
            "duplicates": self.duplicates,
        }


@dataclass
class PendingRetry:
    """One retransmission scheduled by the sublayer (simulator-internal)."""

    message: Message
    attempts: int
    due_round: int = field(compare=False, default=0)
