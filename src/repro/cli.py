"""Command-line interface.

Everything the library does is reachable from the shell::

    repro generate --family euclidean -m 20 -n 60 --seed 3 -o inst.json
    repro solve inst.json -k 16 --variant greedy
    repro solve --family uniform -m 20 -n 60 --seed 3 -k 16
    repro solve inst.json -k 16 --trace run.jsonl --timeline --no-lp
    repro solve inst.json -k 16 --watchdogs --trace run.jsonl
    repro inspect run.jsonl
    repro compare old.manifest.json new.manifest.json --threshold cost=1.05
    repro bench benchmarks/_artifacts --name micro -o benchmarks/baselines
    repro bench --suite micro --workers 2 -o benchmarks/baselines
    repro bench --suite macro --workers 4 -o .
    repro bench --suite scale --max-nodes 100000 -o .
    repro solve --sparse-degree 3 -m 2000 -n 98000 --seed 7 -k 8 \\
        --engine columnar --shards 2 --no-lp --digest
    repro baselines inst.json
    repro experiment E3 --quick
    repro chaos --family uniform -m 6 -n 18 -k 9 --num-seeds 3 -o chaos.json
    repro report EXPERIMENTS.md --quick
    cat requests.jsonl | repro serve --batch-size 16 --metrics
    repro serve --socket /tmp/repro.sock --workers 4
    repro solve inst.json -k 16 --spans spans.jsonl --metrics-out metrics.json
    cat requests.jsonl | repro serve --trace-spans spans.jsonl --slo default
    repro trace tree spans.jsonl --depth 4
    repro trace export spans.jsonl -o trace.json
    repro top metrics.json --spans spans.jsonl
    repro record inst.json -k 16 --engine loop -o run.rec.json
    repro record inst.json -k 16 --engine loop --full -o full.rec.json
    repro replay run.rec.json --engine vectorized
    repro divergence left.rec.json right.rec.json
    repro inspect run.rec.json --digests other.rec.json
    repro explain full.rec.json facility:3

(Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.analysis import experiments as exp
from repro.analysis.tables import render_table
from repro.baselines import (
    exact_solve,
    greedy_solve,
    jain_vazirani_solve,
    local_search_solve,
    lp_rounding_solve,
    mettu_plaxton_solve,
    solve_lp,
)
from repro.core.algorithm import Variant, solve_distributed
from repro.core.dual_ascent_nodes import RoundingPolicy
from repro.exceptions import ReproError
from repro.fl.generators import FAMILIES, make_instance
from repro.fl.instance import FacilityLocationInstance
from repro.fl.io import load_instance_json, save_instance_json
from repro.obs.bench import collect_records, write_bench
from repro.obs.compare import compare_paths, parse_threshold
from repro.obs.inspect import inspect_trace
from repro.obs.manifest import RunRecord, manifest_path_for
from repro.obs.sinks import JsonlTraceSink
from repro.obs.watchdogs import default_watchdogs

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "E1": exp.run_e1_tradeoff_table,
    "E2": exp.run_e2_ratio_vs_k,
    "E3": exp.run_e3_rounds_vs_k,
    "E4": exp.run_e4_message_bits,
    "E5": exp.run_e5_baselines_table,
    "E6": exp.run_e6_rounding_ablation,
    "E7": exp.run_e7_rho_sensitivity,
    "E8": exp.run_e8_families_table,
    "E9": exp.run_e9_scalability,
    "E10": exp.run_e10_variants_table,
    "E11": exp.run_e11_faults,
    "E12": exp.run_e12_ladder_necessity,
    "E13": exp.run_e13_settle_ablation,
    "E14": exp.run_e14_anytime,
    "E15": exp.run_e15_concentration,
    "E16": exp.run_e16_opening_rule,
    "E17": exp.run_e17_fault_families,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed facility-location approximation (PODC 2005 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate an instance to JSON")
    _add_instance_source(gen, require_family=True)
    gen.add_argument("-o", "--output", required=True, help="output JSON path")

    solve = sub.add_parser("solve", help="run the distributed algorithm")
    solve.add_argument("instance", nargs="?", help="instance JSON path")
    _add_instance_source(solve, require_family=False)
    solve.add_argument("-k", type=int, default=9, help="round-budget parameter")
    solve.add_argument(
        "--variant",
        choices=[v.value for v in Variant],
        default=Variant.GREEDY.value,
    )
    solve.add_argument("--algo-seed", type=int, default=0, help="algorithm seed")
    solve.add_argument(
        "--rounding",
        choices=["select_all", "randomized"],
        default="select_all",
        help="rounding policy (dual_ascent only)",
    )
    solve.add_argument("--c-round", type=float, default=1.0)
    solve.add_argument(
        "--engine",
        choices=["simulator", "loop", "vectorized", "columnar"],
        default="simulator",
        help="execution engine (default: the message-passing simulator; "
        "the emulation engines skip network simulation, and columnar "
        "scales to million-node instances)",
    )
    solve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes for --engine columnar (shared-memory "
        "node-range sharding; never changes the output bytes)",
    )
    solve.add_argument(
        "--sparse-degree",
        type=int,
        metavar="D",
        help="generate the instance natively on the columnar edge plane "
        "(-m/-n/--seed, D candidate facilities per client) instead of "
        "loading one; the columnar engine never densifies it, so this is "
        "the entry point for million-node solves (other engines "
        "materialize the dense matrix — oracle sizes only)",
    )
    solve.add_argument(
        "--digest",
        action="store_true",
        help="also print the canonical final-checkpoint digest of the "
        "solution (cheap cross-engine identity check; same hash the "
        "flight recorder puts at its `final` checkpoint)",
    )
    solve.add_argument("--json", action="store_true", help="machine-readable output")
    solve.add_argument(
        "--trace",
        metavar="PATH",
        help="stream a JSONL trace (events + per-round telemetry + manifest) "
        "to PATH; a sidecar .manifest.json is written next to it",
    )
    solve.add_argument(
        "--timeline",
        action="store_true",
        help="print the per-round timeline table after solving",
    )
    solve.add_argument(
        "--no-lp",
        action="store_true",
        help="skip the LP lower bound (omits ratio_vs_lp; use on large instances)",
    )
    solve.add_argument(
        "--watchdogs",
        action="store_true",
        help="attach the invariant watchdogs (feasibility, dual monotonicity, "
        "CONGEST envelope); violations become trace events",
    )
    solve.add_argument(
        "--strict-watchdogs",
        action="store_true",
        help="like --watchdogs, but the first violation aborts the run",
    )
    solve.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the run's metrics-registry snapshot as JSON to PATH "
        "(same schema as the service metrics op with \"full\": true)",
    )
    solve.add_argument(
        "--spans",
        metavar="PATH",
        help="trace the solve as spans and write a JSONL span log to PATH "
        "(render with `repro trace tree`, export with `repro trace export`)",
    )
    solve.add_argument(
        "--profile-memory",
        action="store_true",
        help="sample the tracemalloc peak over the solve (reported as "
        "mem_peak_kb; with --spans it lands on the span, otherwise in "
        "the solve output)",
    )

    inspect = sub.add_parser(
        "inspect", help="summarize a JSONL trace written by solve --trace"
    )
    inspect.add_argument(
        "trace",
        help="JSONL trace path (or a flight-recording JSON with --digests)",
    )
    inspect.add_argument(
        "other",
        nargs="?",
        help="with --digests: a second recording to diff against",
    )
    inspect.add_argument(
        "--slowest", type=int, default=5, help="how many slowest rounds to show"
    )
    inspect.add_argument(
        "--digests",
        action="store_true",
        help="treat the artifact as a flight recording (repro record) and "
        "show its per-checkpoint state digests; with a second artifact, "
        "flag the first divergent checkpoint",
    )

    record = sub.add_parser(
        "record",
        help="run one solve under the deterministic flight recorder and "
        "write the recording artifact",
    )
    record.add_argument("instance", nargs="?", help="instance JSON path")
    _add_instance_source(record, require_family=False)
    record.add_argument("-k", type=int, default=9, help="round-budget parameter")
    record.add_argument(
        "--variant",
        choices=[v.value for v in Variant],
        default=Variant.GREEDY.value,
    )
    record.add_argument("--algo-seed", type=int, default=0, help="algorithm seed")
    record.add_argument(
        "--rounding",
        choices=["select_all", "randomized"],
        default="select_all",
        help="rounding policy (dual_ascent only)",
    )
    record.add_argument("--c-round", type=float, default=1.0)
    record.add_argument(
        "--engine",
        choices=["loop", "vectorized", "simulator", "columnar"],
        default="loop",
        help="which engine to record (default loop)",
    )
    record.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes for --engine columnar (digests are "
        "shard-count independent by the determinism contract)",
    )
    record.add_argument(
        "--full",
        action="store_true",
        help="also log the causal message-provenance DAG (loop engine "
        "only); enables `repro explain`",
    )
    record.add_argument(
        "-o", "--output", required=True, help="recording output path (JSON)"
    )

    replay = sub.add_parser(
        "replay",
        help="re-run a recording's embedded solve recipe and assert "
        "digest-identity (exit 1 on mismatch)",
    )
    replay.add_argument("recording", help="recording JSON written by repro record")
    replay.add_argument(
        "--engine",
        choices=["loop", "vectorized", "simulator", "columnar"],
        default=None,
        help="override the recorded engine (cross-engine digest check)",
    )

    divergence = sub.add_parser(
        "divergence",
        help="diff two recordings and bisect to the first divergent "
        "round, node and field (exit 1 when divergent)",
    )
    divergence.add_argument("left", help="first recording JSON")
    divergence.add_argument("right", help="second recording JSON")
    divergence.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    explain = sub.add_parser(
        "explain",
        help="render the causal chain behind one actor's outcome from a "
        "--full recording (e.g. why facility:3 opened)",
    )
    explain.add_argument("recording", help="recording JSON written with --full")
    explain.add_argument(
        "actor",
        help="actor id, e.g. facility:3 or client:11",
    )

    compare = sub.add_parser(
        "compare",
        help="diff two run artifacts (or directories) under regression thresholds",
    )
    compare.add_argument("old", help="baseline artifact: trace .jsonl, manifest, BENCH file, or directory")
    compare.add_argument("new", help="candidate artifact of the same kind")
    compare.add_argument(
        "--threshold",
        action="append",
        default=[],
        metavar="NAME=RATIO",
        help="per-metric regression threshold (repeatable), e.g. cost=1.05",
    )
    compare.add_argument(
        "--default-threshold",
        type=float,
        default=None,
        metavar="RATIO",
        help="threshold applied to metrics without an explicit one "
        "(such metrics are otherwise reported but unchecked)",
    )
    compare.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    bench = sub.add_parser(
        "bench",
        help="fold benchmark artifacts into a versioned BENCH_<name>.json, "
        "or run a perf suite (--suite) and emit its trajectory point",
    )
    bench.add_argument(
        "source",
        nargs="?",
        help="artifact directory (benchmarks/_artifacts), a pytest-benchmark "
        "JSON export, or a single record/manifest file (omit with --suite)",
    )
    bench.add_argument(
        "--suite",
        choices=["micro", "macro", "scale"],
        help="run the named perf suite instead of folding artifacts "
        "(see docs/PERFORMANCE.md)",
    )
    bench.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        help="scale suite only: skip rungs whose m+n exceeds this "
        "(CI runs the reduced ladder; the committed baseline is full)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the suite's parallel sweeps (default 1)",
    )
    bench.add_argument(
        "--name",
        help="trajectory name (required without --suite; defaults to the "
        "suite's canonical name with it)",
    )
    bench.add_argument(
        "-o",
        "--output",
        default=".",
        help="output directory or explicit file path (default: cwd)",
    )

    base = sub.add_parser("baselines", help="run every sequential baseline")
    base.add_argument("instance", nargs="?", help="instance JSON path")
    _add_instance_source(base, require_family=False)

    expcmd = sub.add_parser("experiment", help="run one experiment E1..E17")
    expcmd.add_argument("id", choices=sorted(_EXPERIMENTS, key=_experiment_key))
    expcmd.add_argument("--quick", action="store_true")
    expcmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the experiment's sweep cells (default 1; "
        "output is identical whatever the value)",
    )

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    report.add_argument("--quick", action="store_true")

    serve = sub.add_parser(
        "serve",
        help="run the batched solve service (JSONL on stdin/stdout, or a "
        "Unix socket with --socket); see docs/ARCHITECTURE.md",
    )
    serve.add_argument(
        "--socket",
        metavar="PATH",
        help="bind a Unix domain socket at PATH instead of serving stdin",
    )
    serve.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="bind a TCP socket instead of serving stdin (port 0 picks an "
        "ephemeral port, printed to stderr); connections are served "
        "concurrently",
    )
    serve.add_argument(
        "--service-workers",
        type=int,
        default=1,
        metavar="K",
        help="backend service workers behind a consistent-hash router; "
        "requests route on their work key so dedup and result reuse "
        "survive sharding (default 1 = no router)",
    )
    serve.add_argument(
        "--hash-replicas",
        type=int,
        default=64,
        help="vnodes per worker on the routing hash ring "
        "(with --service-workers > 1; default 64)",
    )
    serve.add_argument(
        "--shared-cache-ttl",
        type=float,
        default=300.0,
        help="seconds a cross-worker shared-cache entry stays servable "
        "(with --service-workers > 1; 0 disables the TTL; default 300)",
    )
    serve.add_argument(
        "--shared-cache-size",
        type=int,
        default=512,
        help="cross-worker shared-cache capacity "
        "(with --service-workers > 1; default 512)",
    )
    serve.add_argument(
        "--max-depth",
        type=int,
        default=256,
        help="admission-queue capacity; offers beyond it are rejected "
        "(default 256)",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=32,
        help="most live requests per executed batch (default 32)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per batch (default 1; responses are "
        "identical whatever the value)",
    )
    serve.add_argument(
        "--ttl",
        type=float,
        default=300.0,
        help="seconds a completed response stays fetchable (default 300)",
    )
    serve.add_argument(
        "--max-results",
        type=int,
        default=1024,
        help="result-store capacity (default 1024)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds of graceful drain on SIGTERM (or a drain line): "
        "queued work flushes within this budget, the remainder is "
        "answered status=draining (default 30)",
    )
    serve.add_argument(
        "--high-water",
        type=int,
        default=None,
        help="queue depth at which incoming low-priority work is shed "
        "(default: disabled)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="RPS",
        help="per-client-id token-bucket refill rate in requests/second "
        "(default: disabled)",
    )
    serve.add_argument(
        "--rate-burst",
        type=float,
        default=8.0,
        help="token-bucket burst capacity with --rate-limit (default 8)",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="per-cell execution budget when a worker crashes or wedges "
        "(default 3)",
    )
    serve.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock watchdog per pool cell; a cell still running "
        "past it is treated like a crash and retried (default: disabled)",
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help="append one metrics-summary line at EOF (stdin mode only)",
    )
    serve.add_argument(
        "--trace-spans",
        metavar="PATH",
        help="trace every request through the pipeline and write the span "
        "log (JSONL) to PATH when the server exits",
    )
    serve.add_argument(
        "--profile-memory",
        action="store_true",
        help="with --trace-spans: sample tracemalloc peaks on worker solve "
        "spans (reported as mem_peak_kb)",
    )
    serve.add_argument(
        "--slo",
        metavar="SPEC",
        help="evaluate SLOs when the server exits and fail (exit 1) on "
        "violation; SPEC is a JSON file or the literal 'default' "
        "(availability 99%%, p95 latency under 2s)",
    )

    loadtest = sub.add_parser(
        "loadtest",
        help="drive a deterministic traffic shape against a multi-worker "
        "TCP front end, measure latency quantiles and goodput, verify "
        "served results against direct solves, and emit a "
        "BENCH_loadtest.json record for repro compare gating",
    )
    loadtest.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed = synchronous users (next request after the previous "
        "completes); open = scheduled arrivals through one pipelined "
        "connection (default closed)",
    )
    loadtest.add_argument(
        "--users",
        type=int,
        default=4,
        help="concurrent users; closed mode gives each its own "
        "connection and thread (default 4)",
    )
    loadtest.add_argument(
        "--requests",
        type=int,
        default=6,
        help="requests per user (default 6)",
    )
    loadtest.add_argument(
        "--service-workers",
        type=int,
        default=2,
        metavar="K",
        help="backend workers behind the router started for the test "
        "(ignored with --address; default 2)",
    )
    loadtest.add_argument(
        "--catalog",
        type=int,
        default=12,
        help="distinct recipes in the traffic catalog — the number of "
        "distinct work keys the run can produce (default 12)",
    )
    loadtest.add_argument(
        "--zipf",
        type=float,
        default=1.1,
        help="zipf skew of recipe popularity; larger = hotter duplicates "
        "= more dedup/shared-cache traffic (default 1.1)",
    )
    loadtest.add_argument(
        "--arrival-rate",
        type=float,
        default=200.0,
        metavar="RPS",
        help="open mode: scheduled arrivals per second (default 200)",
    )
    loadtest.add_argument(
        "--burstiness",
        type=float,
        default=0.0,
        help="open mode, in [0,1): 0 spaces arrivals evenly, higher "
        "collapses groups into bursts at the same average rate "
        "(default 0)",
    )
    loadtest.add_argument(
        "--deadline-fraction",
        type=float,
        default=0.0,
        help="fraction of requests carrying a tight queue deadline, so "
        "timeout paths fire under load (default 0)",
    )
    loadtest.add_argument(
        "--low-priority-fraction",
        type=float,
        default=0.0,
        help="fraction of requests tagged priority=low (default 0)",
    )
    loadtest.add_argument(
        "--high-priority-fraction",
        type=float,
        default=0.0,
        help="fraction of requests tagged priority=high (default 0)",
    )
    loadtest.add_argument("-m", "--facilities", type=int, default=12)
    loadtest.add_argument("-n", "--clients", type=int, default=12)
    loadtest.add_argument(
        "--seed",
        type=int,
        default=0,
        help="master seed; equal shapes generate byte-equal workloads "
        "(default 0)",
    )
    loadtest.add_argument(
        "--name",
        default="smoke",
        help="record id inside the BENCH_loadtest.json file "
        "(default smoke)",
    )
    loadtest.add_argument(
        "--address",
        metavar="HOST:PORT",
        help="drive an external repro serve --tcp front end instead of "
        "starting one inside the test (no shutdown is sent)",
    )
    loadtest.add_argument(
        "--bench-out",
        metavar="PATH",
        help="write the BENCH_loadtest.json trajectory file (PATH may be "
        "a directory; the canonical filename is used)",
    )
    loadtest.add_argument(
        "--max-p95-ms",
        type=float,
        default=None,
        help="fail (exit 1) when p95 latency exceeds this budget",
    )
    loadtest.add_argument(
        "--max-p99-ms",
        type=float,
        default=None,
        help="fail (exit 1) when p99 latency exceeds this budget",
    )
    loadtest.add_argument(
        "--min-goodput",
        type=float,
        default=None,
        metavar="RPS",
        help="fail (exit 1) when goodput drops below this floor",
    )
    loadtest.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the byte-identity check of served results against "
        "direct solves (on by default; lost/divergent always gate)",
    )
    loadtest.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    trace = sub.add_parser(
        "trace",
        help="inspect span logs written by --spans / --trace-spans",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    tree = trace_sub.add_parser(
        "tree", help="render the span tree with critical-path highlighting"
    )
    tree.add_argument("spans", help="span log path (JSONL)")
    tree.add_argument(
        "--depth",
        type=int,
        default=None,
        help="prune subtrees deeper than this (per-round spans get noisy)",
    )
    export = trace_sub.add_parser(
        "export",
        help="convert a span log to Chrome/Perfetto trace_event JSON",
    )
    export.add_argument("spans", help="span log path (JSONL)")
    export.add_argument(
        "-o",
        "--output",
        required=True,
        help="output path for the trace_event JSON "
        "(load it in chrome://tracing or ui.perfetto.dev)",
    )

    top = sub.add_parser(
        "top",
        help="one-shot (or interval) view of a metrics snapshot file, "
        "optionally with the slowest spans of a span log",
    )
    top.add_argument(
        "snapshot",
        help="metrics snapshot JSON written by solve --metrics-out or the "
        "service metrics op with \"full\": true",
    )
    top.add_argument(
        "--spans",
        metavar="PATH",
        help="also show the slowest spans of this span log",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=0.0,
        help="re-read and re-render every INTERVAL seconds (0 = one-shot)",
    )
    top.add_argument(
        "--count",
        type=int,
        default=0,
        help="with --interval: stop after COUNT renders (0 = forever)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="sweep a fault-intensity grid and gate on feasibility and "
        "bounded cost inflation",
    )
    chaos.add_argument("instance", nargs="?", help="instance JSON path")
    _add_instance_source(chaos, require_family=False)
    chaos.add_argument("-k", type=int, default=9, help="round-budget parameter")
    chaos.add_argument(
        "--variant",
        choices=[v.value for v in Variant],
        default=Variant.GREEDY.value,
    )
    chaos.add_argument(
        "--families",
        nargs="+",
        default=None,
        metavar="FAMILY",
        help="fault families to sweep (default: all); see repro.analysis.chaos",
    )
    chaos.add_argument(
        "--intensities",
        nargs="+",
        type=float,
        default=None,
        metavar="X",
        help="intensity grid in (0, 1] (default: 0.05 0.15 0.3)",
    )
    chaos.add_argument(
        "--num-seeds", type=int, default=3, help="seeds per grid cell"
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the fault grid (default 1; the report "
        "is identical whatever the value)",
    )
    chaos.add_argument(
        "--no-reliability",
        action="store_true",
        help="disable the ACK/retransmit sublayer (measure the raw protocol)",
    )
    chaos.add_argument(
        "--no-healing",
        action="store_true",
        help="disable in-protocol self-healing",
    )
    chaos.add_argument(
        "--min-feasible-frac",
        type=float,
        default=0.8,
        help="feasibility gate per grid cell (default 0.8)",
    )
    chaos.add_argument(
        "--max-inflation",
        type=float,
        default=3.0,
        help="mean cost-inflation gate per grid cell (default 3.0)",
    )
    chaos.add_argument(
        "-o",
        "--output",
        metavar="PATH",
        help="write the bench_record JSON artifact (repro bench / compare "
        "compatible) to PATH",
    )
    chaos.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    chaos_serve = sub.add_parser(
        "chaos-serve",
        help="run the service-level chaos harness (worker kills, slow "
        "cells, connection drops, malformed frames) against a live "
        "service and gate on exactly-one-terminal-response and "
        "byte-identical results",
    )
    chaos_serve.add_argument(
        "--family",
        choices=sorted(FAMILIES),
        default="uniform",
        help="generator family for the workload (default uniform)",
    )
    chaos_serve.add_argument("-m", "--facilities", type=int, default=6)
    chaos_serve.add_argument("-n", "--clients", type=int, default=15)
    chaos_serve.add_argument(
        "--requests",
        type=int,
        default=12,
        help="workload size; every third request duplicates an earlier "
        "one so dedup is exercised under faults (default 12)",
    )
    chaos_serve.add_argument(
        "-k",
        "--ks",
        nargs="+",
        type=int,
        default=[4, 9],
        metavar="K",
        help="round-budget values cycled across the workload (default 4 9)",
    )
    chaos_serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes per batch; 2+ exercises pool respawn "
        "(default 2)",
    )
    chaos_serve.add_argument(
        "--crash-rate",
        type=float,
        default=0.25,
        help="fraction of cells whose first execution kills its worker "
        "(default 0.25)",
    )
    chaos_serve.add_argument(
        "--slow-rate",
        type=float,
        default=0.0,
        help="fraction of cells that stall once before answering "
        "(default 0)",
    )
    chaos_serve.add_argument(
        "--slow-sleep",
        type=float,
        default=0.4,
        help="stall duration for slow cells, seconds (default 0.4)",
    )
    chaos_serve.add_argument(
        "--cell-timeout",
        type=float,
        default=30.0,
        help="per-cell watchdog, seconds; set below --slow-sleep to turn "
        "stalls into watchdog retries (default 30)",
    )
    chaos_serve.add_argument(
        "--drop-every",
        type=int,
        default=0,
        help="with --socket: sever the client connection before every "
        "Nth request (default 0 = never)",
    )
    chaos_serve.add_argument(
        "--malformed-every",
        type=int,
        default=0,
        help="with --socket: inject a malformed frame before every Nth "
        "request (default 0 = never)",
    )
    chaos_serve.add_argument(
        "--socket",
        action="store_true",
        help="drive a real Unix-socket server in a thread instead of the "
        "in-process client (required for drop/malformed injection)",
    )
    chaos_serve.add_argument(
        "--max-attempts",
        type=int,
        default=4,
        help="per-cell execution budget under crash injection (default 4)",
    )
    chaos_serve.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fault-assignment seed (which cells crash/stall is a "
        "deterministic function of it)",
    )
    chaos_serve.add_argument(
        "-o",
        "--output",
        metavar="PATH",
        help="write the bench_record JSON artifact (repro compare "
        "compatible) to PATH",
    )
    chaos_serve.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    return parser


def _experiment_key(experiment_id: str) -> int:
    return int(experiment_id[1:])


def _add_instance_source(
    parser: argparse.ArgumentParser, require_family: bool
) -> None:
    parser.add_argument(
        "--family",
        choices=sorted(FAMILIES),
        required=require_family,
        help="generator family",
    )
    parser.add_argument("-m", "--facilities", type=int, default=10)
    parser.add_argument("-n", "--clients", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0, help="instance seed")


def _load_instance(args: argparse.Namespace) -> FacilityLocationInstance:
    path = getattr(args, "instance", None)
    if path:
        return load_instance_json(path)
    if not args.family:
        raise ReproError(
            "provide an instance JSON path or --family/-m/-n/--seed"
        )
    return make_instance(args.family, args.facilities, args.clients, args.seed)


def _cmd_generate(args: argparse.Namespace) -> int:
    instance = make_instance(args.family, args.facilities, args.clients, args.seed)
    save_instance_json(instance, args.output)
    print(f"wrote {args.output}: {instance}")
    return 0


def _final_solution_digest(
    open_facilities: Any,
    assignment: Any,
    num_facilities: int,
    num_clients: int,
) -> str:
    """Digest of the canonical ``final`` checkpoint, recorder-identical.

    Built from the solution alone (no recording of the run), so two
    engines printing the same string here would also produce recordings
    with identical ``final`` checkpoints — the cheap CI cross-check.
    ``assignment`` may be a client→facility mapping or an ``(n,)`` array.
    """
    from repro.obs.recorder import Checkpoint

    open_set = {int(i) for i in open_facilities}
    if hasattr(assignment, "get"):
        served = {int(j): int(f) for j, f in assignment.items()}
        assigned = {
            f"client:{j}": served.get(j, -1) for j in range(num_clients)
        }
    else:
        assigned = {
            f"client:{j}": int(assignment[j]) for j in range(num_clients)
        }
    checkpoint = Checkpoint.build(
        "final",
        {
            "open": {
                f"facility:{i}": i in open_set for i in range(num_facilities)
            },
            "assignment": assigned,
        },
    )
    return checkpoint.digest


def _solve_instances(
    args: argparse.Namespace,
) -> tuple[FacilityLocationInstance | None, Any]:
    """Resolve the solve target: ``(dense instance, columnar instance)``.

    With ``--sparse-degree`` the columnar form is generated directly on
    the edge plane and the dense form stays ``None`` — only engines that
    genuinely need the matrix (anything but columnar) materialize it.
    """
    if args.sparse_degree is None:
        return _load_instance(args), None
    if args.instance or args.family:
        raise ReproError(
            "--sparse-degree generates its own instance from -m/-n/--seed; "
            "drop the instance path / --family"
        )
    from repro.core.columnar import ColumnarInstance

    cinst = ColumnarInstance.generate_sparse(
        args.facilities,
        args.clients,
        args.seed,
        client_degree=args.sparse_degree,
    )
    if args.engine == "columnar":
        return None, cinst
    return cinst.to_instance(), cinst


def _cmd_solve_emulated(
    args: argparse.Namespace,
    instance: FacilityLocationInstance | None,
    cinst: Any,
    policy: RoundingPolicy,
) -> int:
    """solve with ``--engine loop|vectorized|columnar`` (no simulator)."""
    import time

    from repro.obs.spans import measure_peak_memory

    for name, value in (
        ("--trace", args.trace),
        ("--watchdogs", args.watchdogs),
        ("--strict-watchdogs", args.strict_watchdogs),
        ("--spans", args.spans),
    ):
        if value:
            raise ReproError(f"{name} requires --engine simulator")
    if args.metrics_out and args.engine != "columnar":
        raise ReproError(
            "--metrics-out needs a message plane: --engine simulator "
            "or columnar"
        )
    if args.timeline and args.engine != "columnar":
        raise ReproError(
            "--timeline needs a message plane: --engine simulator "
            "or columnar"
        )
    lp_value: float | None = None
    if not args.no_lp:
        if instance is None:
            raise ReproError(
                "the LP bound would densify the instance; pass --no-lp "
                "with --sparse-degree + --engine columnar"
            )
        lp_value = solve_lp(instance).value

    payload: dict[str, Any] = {
        "instance": (instance or cinst).name,
        "k": args.k,
        "variant": args.variant,
        "engine": args.engine,
    }
    started = time.perf_counter()
    if args.engine == "columnar":
        from repro.core.columnar import solve_columnar

        def run():
            return solve_columnar(
                cinst if cinst is not None else instance,
                k=args.k,
                variant=args.variant,
                seed=args.algo_seed,
                rounding=policy,
                shards=args.shards,
            )

        mem_peak_kb: float | None = None
        if args.profile_memory:
            result, mem_peak_kb = measure_peak_memory(run)
        else:
            result = run()
        payload.update(
            {
                "shards": args.shards,
                "cost": result.cost,
                "feasible": result.feasible,
                "num_open": int(result.open_mask.sum()),
                "rounds": result.metrics.rounds,
                "total_messages": result.metrics.total_messages,
                "max_message_bits": result.metrics.max_message_bits,
            }
        )
        digest_inputs = (
            result.open_facilities,
            result.assignment,
            result.instance.m,
            result.instance.n,
        )
        timeline = result.timeline
        metrics = result.metrics
    else:
        from repro.core.sequential_sim import run_sequential

        def run():
            return run_sequential(
                instance,
                k=args.k,
                variant=args.variant,
                seed=args.algo_seed,
                rounding=policy,
                engine=args.engine,
            )

        mem_peak_kb = None
        if args.profile_memory:
            result, mem_peak_kb = measure_peak_memory(run)
        else:
            result = run()
        payload.update(
            {
                "cost": result.cost,
                "feasible": True,
                "num_open": len(result.open_facilities),
            }
        )
        digest_inputs = (
            result.open_facilities,
            result.assignment,
            instance.num_facilities,
            instance.num_clients,
        )
        timeline = None
        metrics = None
    payload["wall_seconds"] = time.perf_counter() - started
    if mem_peak_kb is not None:
        payload["mem_peak_kb"] = mem_peak_kb
    if lp_value is not None:
        payload["ratio_vs_lp"] = payload["cost"] / max(lp_value, 1e-12)
    if args.digest:
        payload["digest"] = _final_solution_digest(*digest_inputs)
    if args.metrics_out and metrics is not None:
        from repro.obs.metrics_io import write_snapshot
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        metrics.publish(registry)
        write_snapshot(
            registry,
            args.metrics_out,
            meta={
                "command": "solve",
                "engine": args.engine,
                "instance": payload["instance"],
                "k": args.k,
                "variant": args.variant,
            },
        )
        payload["metrics_out"] = args.metrics_out
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        rows = [(key, value) for key, value in payload.items()]
        print(
            render_table(
                ("field", "value"),
                rows,
                title=f"{args.engine} solve",
            )
        )
    if args.timeline and timeline is not None:
        print(timeline.render())
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    policy = RoundingPolicy(mode=args.rounding, c_round=args.c_round)
    instance, cinst = _solve_instances(args)
    if args.shards != 1 and args.engine != "columnar":
        raise ReproError("--shards applies to --engine columnar only")
    if args.engine != "simulator":
        return _cmd_solve_emulated(args, instance, cinst, policy)
    sink = JsonlTraceSink(args.trace) if args.trace else None
    # The LP bound is computed *before* the run when probes will want it:
    # the per-round quality probe turns it into the anytime ratio estimate.
    want_probes = bool(args.trace or args.timeline)
    lp_value: float | None = None
    if not args.no_lp:
        lp_value = solve_lp(instance).value
    watchdogs = ()
    if args.watchdogs or args.strict_watchdogs:
        watchdogs = default_watchdogs(strict=args.strict_watchdogs)
    tracer = None
    if args.spans:
        from repro.obs.spans import Tracer

        tracer = Tracer(profile_memory=args.profile_memory)
    registry = None
    if args.metrics_out:
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
    def run_simulator():
        return solve_distributed(
            instance,
            k=args.k,
            variant=args.variant,
            seed=args.algo_seed,
            rounding=policy,
            trace=sink,
            probe_quality=want_probes,
            lower_bound=lp_value,
            watchdogs=watchdogs,
            tracer=tracer,
            registry=registry,
        )

    mem_peak_kb: float | None = None
    try:
        if args.profile_memory and tracer is None:
            from repro.obs.spans import measure_peak_memory

            result, mem_peak_kb = measure_peak_memory(run_simulator)
        else:
            result = run_simulator()
    except ReproError:
        if sink is not None:
            sink.close()
        raise
    payload = {
        "instance": instance.name,
        "k": args.k,
        "variant": args.variant,
        "cost": result.cost,
        "open_facilities": sorted(result.open_facilities),
        "rounds": result.metrics.rounds,
        "total_messages": result.metrics.total_messages,
        "max_message_bits": result.metrics.max_message_bits,
        "wall_seconds": result.wall_seconds,
    }
    if mem_peak_kb is not None:
        payload["mem_peak_kb"] = mem_peak_kb
    if args.digest:
        assignment = (
            result.solution.assignment if result.solution is not None else {}
        )
        payload["digest"] = _final_solution_digest(
            result.open_facilities,
            assignment,
            instance.num_facilities,
            instance.num_clients,
        )
    extras: dict[str, object] = {}
    if lp_value is not None:
        extras["ratio_vs_lp"] = result.cost / max(lp_value, 1e-12)
        payload["ratio_vs_lp"] = extras["ratio_vs_lp"]
    if watchdogs:
        violations = result.diagnostics.get("invariant_violations", 0)
        extras["invariant_violations"] = violations
        payload["invariant_violations"] = violations
    if sink is not None:
        manifest = RunRecord.from_run(
            result,
            seed=args.algo_seed,
            parameters={
                "k": args.k,
                "variant": args.variant,
                "rounding": args.rounding,
                "c_round": args.c_round,
            },
            wall_seconds=result.wall_seconds,
            extras=extras,
        )
        sink.write_json(manifest.to_dict())
        sink.close()
        manifest_file = manifest.write_json(manifest_path_for(args.trace))
        payload["trace"] = args.trace
        payload["manifest"] = str(manifest_file)
    if tracer is not None:
        from repro.obs.spans import write_spans_jsonl

        tracer.close()
        write_spans_jsonl(tracer.export(), args.spans)
        payload["spans"] = args.spans
    if registry is not None:
        from repro.obs.metrics_io import write_snapshot

        write_snapshot(
            registry,
            args.metrics_out,
            meta={
                "command": "solve",
                "instance": instance.name,
                "k": args.k,
                "variant": args.variant,
            },
        )
        payload["metrics_out"] = args.metrics_out
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        rows = [(key, value) for key, value in payload.items()]
        print(render_table(("field", "value"), rows, title="distributed solve"))
    if args.timeline:
        print(result.timeline.render())
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    if args.digests:
        from repro.obs.inspect import inspect_digests

        print(inspect_digests(args.trace, other=args.other))
        return 0
    if args.other:
        raise ReproError(
            "a second artifact is only meaningful with --digests"
        )
    print(inspect_trace(args.trace, slowest=args.slowest))
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.obs.recorder import record_run

    instance = _load_instance(args)
    recording = record_run(
        instance,
        engine=args.engine,
        k=args.k,
        variant=args.variant,
        seed=args.algo_seed,
        rounding=args.rounding,
        c_round=args.c_round,
        full=args.full,
        shards=args.shards,
    )
    target = recording.write_json(args.output)
    print(
        f"wrote {target}: engine={args.engine} "
        f"checkpoints={len(recording.checkpoints)} "
        f"final={recording.final_digest()}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.obs.recorder import (
        diff_recordings,
        load_recording,
        replay_recording,
    )

    original = load_recording(args.recording)
    replayed = replay_recording(original, engine=args.engine)
    report = diff_recordings(original, replayed)
    if report.identical:
        print(
            f"replay identical: {report.compared} checkpoint(s), "
            f"final={original.final_digest()}"
        )
        return 0
    print(report.render())
    print("error: replay diverged from the recording", file=sys.stderr)
    return 1


def _cmd_divergence(args: argparse.Namespace) -> int:
    from repro.obs.recorder import diff_recordings, load_recording

    report = diff_recordings(
        load_recording(args.left), load_recording(args.right)
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.identical else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs.recorder import load_recording

    recording = load_recording(args.recording)
    if recording.provenance is None:
        raise ReproError(
            f"{args.recording} carries no provenance log; re-record "
            "with `repro record --full --engine loop`"
        )
    print(recording.provenance.explain(args.actor))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    thresholds = dict(parse_threshold(spec) for spec in args.threshold)
    reports = compare_paths(
        args.old,
        args.new,
        thresholds=thresholds,
        default_threshold=args.default_threshold,
    )
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        print("\n\n".join(r.render() for r in reports))
    regressions = sum(len(r.regressions) for r in reports)
    if regressions:
        print(
            f"error: {regressions} metric(s) regressed past threshold",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.suite:
        from repro.perf.suite import run_perf_suite

        target = run_perf_suite(
            args.suite,
            workers=args.workers,
            out=args.output,
            name=args.name,
            max_nodes=args.max_nodes,
        )
        print(f"wrote {target} (suite={args.suite}, workers={args.workers})")
        return 0
    if not args.source:
        print("error: give an artifact source or --suite", file=sys.stderr)
        return 2
    if not args.name:
        print("error: --name is required without --suite", file=sys.stderr)
        return 2
    records = collect_records(args.source)
    target = write_bench(args.name, records, args.output)
    print(f"wrote {target}: {len(records)} record(s)")
    return 0


def _cmd_baselines(args: argparse.Namespace) -> int:
    instance = _load_instance(args)
    lp = solve_lp(instance)
    bound = max(lp.value, 1e-12)
    rows: list[tuple[str, float, float]] = []

    def add(label: str, cost: float) -> None:
        rows.append((label, cost, cost / bound))

    add("greedy", greedy_solve(instance).cost)
    add("jain_vazirani", jain_vazirani_solve(instance).cost)
    add("mettu_plaxton", mettu_plaxton_solve(instance).cost)
    add("local_search", local_search_solve(instance).cost)
    if instance.is_complete_bipartite():
        add("lp_rounding", lp_rounding_solve(instance, lp=lp).cost)
    if instance.num_facilities <= 16:
        add("exact", exact_solve(instance).cost)
    rows.append(("lp_lower_bound", lp.value, 1.0))
    print(
        render_table(
            ("algorithm", "cost", "ratio_vs_lp"),
            rows,
            title=f"baselines on {instance.name}",
        )
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    from repro.perf.executor import SweepExecutor

    runner = _EXPERIMENTS[args.id]
    kwargs: dict[str, Any] = {"quick": args.quick}
    if args.workers > 1:
        # The timing experiments (E3/E4/E9) measure the serial protocol
        # itself and take no executor; --workers is a no-op for them.
        if "executor" in inspect.signature(runner).parameters:
            kwargs["executor"] = SweepExecutor(workers=args.workers)
        else:
            print(
                f"note: {args.id} has no parallel sweep; ignoring --workers",
                file=sys.stderr,
            )
    result = runner(**kwargs)
    print(result.table)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.analysis.chaos import (
        DEFAULT_INTENSITIES,
        FAULT_FAMILIES,
        ChaosGates,
        run_chaos,
    )
    from repro.core.healing import SelfHealingPolicy
    from repro.net.reliability import ReliabilityPolicy
    from repro.perf.executor import SweepExecutor

    instance = _load_instance(args)
    report = run_chaos(
        instance,
        k=args.k,
        variant=args.variant,
        families=tuple(args.families) if args.families else FAULT_FAMILIES,
        intensities=(
            tuple(args.intensities) if args.intensities else DEFAULT_INTENSITIES
        ),
        seeds=tuple(range(args.num_seeds)),
        reliability=None if args.no_reliability else ReliabilityPolicy(),
        healing=None if args.no_healing else SelfHealingPolicy(),
        gates=ChaosGates(
            min_feasible_frac=args.min_feasible_frac,
            max_cost_inflation=args.max_inflation,
        ),
        executor=SweepExecutor(workers=args.workers),
    )
    result = report.to_experiment_result()
    if args.output:
        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        Path(args.output).write_text(json.dumps(result.to_record(), indent=2))
    if args.json:
        payload = {
            "passed": report.passed,
            "failures": report.failures(),
            "baseline_cost": report.baseline_cost,
            "record": result.to_record(),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(result.table)
        if args.output:
            print(f"wrote {args.output}")
    if not report.passed:
        for failure in report.failures():
            print(
                f"error: gate {failure['gate']} failed for "
                f"family={failure['family']} intensity={failure['intensity']}: "
                f"observed {failure['observed']:.3f} vs threshold "
                f"{failure['threshold']:.3f}",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_chaos_serve(args: argparse.Namespace) -> int:
    from repro.analysis.chaos_serve import (
        ChaosServePlan,
        build_chaos_workload,
        run_chaos_serve,
    )

    if (args.drop_every or args.malformed_every) and not args.socket:
        print(
            "error: --drop-every/--malformed-every inject transport faults "
            "and need --socket",
            file=sys.stderr,
        )
        return 2
    plan = ChaosServePlan(
        crash_rate=args.crash_rate,
        slow_rate=args.slow_rate,
        slow_sleep_s=args.slow_sleep,
        drop_every=args.drop_every,
        malformed_every=args.malformed_every,
        seed=args.seed,
    )
    requests = build_chaos_workload(
        family=args.family,
        num_facilities=args.facilities,
        num_clients=args.clients,
        ks=tuple(args.ks),
        num_requests=args.requests,
    )
    report = run_chaos_serve(
        requests=requests,
        plan=plan,
        workers=args.workers,
        max_attempts=args.max_attempts,
        cell_timeout_s=args.cell_timeout,
        use_socket=args.socket,
    )
    result = report.to_experiment_result()
    if args.output:
        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        Path(args.output).write_text(json.dumps(result.to_record(), indent=2))
    if args.json:
        payload = {
            "passed": report.passed,
            "failures": report.failures(),
            "statuses": dict(report.statuses),
            "injected": dict(report.injected),
            "client_stats": dict(report.client_stats),
            "record": result.to_record(),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(result.table)
        if args.output:
            print(f"wrote {args.output}")
    if not report.passed:
        for failure in report.failures():
            print(
                f"error: gate {failure['gate']} failed: "
                f"{json.dumps({k: v for k, v in failure.items() if k != 'gate'})}",
                file=sys.stderr,
            )
        return 1
    return 0


def _install_drain_handler() -> Any | None:
    """SIGTERM → a ``threading.Event`` the serve loops poll for drain.

    Returns ``None`` when signal delivery is unavailable (not the main
    thread, restricted platform); the server then simply has no
    signal-triggered drain path, which is how embedded use works anyway.
    """
    import signal
    import threading

    drain_signal = threading.Event()

    def _on_sigterm(signum: int, frame: Any) -> None:
        drain_signal.set()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # not the main thread
        return None
    return drain_signal


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, SolveService, serve_jsonl, serve_socket

    if args.socket and args.tcp:
        print("error: --socket and --tcp are mutually exclusive", file=sys.stderr)
        return 2
    if args.service_workers > 1 and (args.trace_spans or args.slo):
        # Router workers keep private registries; span/SLO aggregation
        # across them is not wired up yet.
        print(
            "error: --trace-spans/--slo are single-service features; "
            "drop them or use --service-workers 1",
            file=sys.stderr,
        )
        return 2
    tracer = None
    if args.trace_spans:
        from repro.obs.spans import Tracer

        tracer = Tracer(profile_memory=args.profile_memory)
    service_config = ServiceConfig(
        max_queue_depth=args.max_depth,
        max_batch_size=args.batch_size,
        workers=args.workers,
        result_ttl_s=args.ttl if args.ttl > 0 else None,
        max_results=args.max_results,
        profile_memory=args.profile_memory,
        high_water=args.high_water,
        max_solve_attempts=args.max_attempts,
        cell_timeout_s=args.cell_timeout,
        rate_limit_per_client=args.rate_limit,
        rate_limit_burst=args.rate_burst,
    )
    service: Any
    if args.service_workers > 1:
        from repro.service import RouterConfig, ServiceRouter

        service = ServiceRouter(
            config=RouterConfig(
                num_workers=args.service_workers,
                replicas=args.hash_replicas,
                shared_cache_ttl_s=(
                    args.shared_cache_ttl if args.shared_cache_ttl > 0 else None
                ),
                shared_cache_entries=args.shared_cache_size,
            ),
            service_config=service_config,
        )
        print(
            f"routing across {args.service_workers} service workers "
            f"({args.hash_replicas} ring replicas each)",
            file=sys.stderr,
        )
    else:
        service = SolveService(config=service_config, tracer=tracer)
    drain_signal = _install_drain_handler()
    if args.tcp:
        from repro.service import parse_hostport, serve_tcp

        host, port = parse_hostport(args.tcp)
        serve_tcp(
            service,
            host,
            port,
            on_bound=lambda bound: print(
                f"serving on tcp {host}:{bound}", file=sys.stderr, flush=True
            ),
            drain_signal=drain_signal,
            drain_timeout_s=args.drain_timeout,
        )
    elif args.socket:
        print(f"serving on unix socket {args.socket}", file=sys.stderr)
        serve_socket(
            service,
            args.socket,
            drain_signal=drain_signal,
            drain_timeout_s=args.drain_timeout,
        )
    else:
        serve_jsonl(
            service,
            sys.stdin,
            sys.stdout,
            emit_metrics=args.metrics,
            drain_signal=drain_signal,
            drain_timeout_s=args.drain_timeout,
        )
    if tracer is not None:
        from repro.obs.spans import write_spans_jsonl

        tracer.close()
        write_spans_jsonl(tracer.export(), args.trace_spans)
        print(
            f"wrote {len(tracer.finished)} span(s) to {args.trace_spans}",
            file=sys.stderr,
        )
    if args.slo:
        from repro.obs.slo import SLOMonitor, load_slo_spec

        monitor = SLOMonitor(service.registry, load_slo_spec(args.slo))
        print(monitor.render(), file=sys.stderr)
        if not monitor.all_ok():
            print("error: SLO violation", file=sys.stderr)
            return 1
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.analysis.loadgen import LoadShape, run_loadtest
    from repro.obs.bench import write_bench

    shape = LoadShape(
        name=args.name,
        mode=args.mode,
        num_users=args.users,
        requests_per_user=args.requests,
        arrival_rate_rps=args.arrival_rate,
        burstiness=args.burstiness,
        zipf_s=args.zipf,
        catalog_size=args.catalog,
        num_facilities=args.facilities,
        num_clients=args.clients,
        deadline_fraction=args.deadline_fraction,
        low_priority_fraction=args.low_priority_fraction,
        high_priority_fraction=args.high_priority_fraction,
        seed=args.seed,
    )
    report = run_loadtest(
        shape,
        service_workers=args.service_workers,
        address=args.address,
        check_correctness=not args.no_verify,
    )
    failures = report.gate_failures(
        max_p95_ms=args.max_p95_ms,
        max_p99_ms=args.max_p99_ms,
        min_goodput_rps=args.min_goodput,
    )
    if args.bench_out:
        target = write_bench(
            "loadtest", {shape.name: report.bench_record()}, args.bench_out
        )
    if args.json:
        payload = {
            "passed": not failures,
            "failures": failures,
            "record": report.bench_record(),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
        if args.bench_out:
            print(f"wrote {target}")
    if failures:
        for failure in failures:
            print(f"error: loadtest gate failed: {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.spans import (
        load_spans_jsonl,
        render_span_tree,
        write_chrome_trace,
    )

    spans = load_spans_jsonl(args.spans)
    if args.trace_command == "tree":
        if not spans:
            print("(empty span log)")
            return 0
        print(render_span_tree(spans, max_depth=args.depth))
        return 0
    target = write_chrome_trace(spans, args.output)
    print(f"wrote {target}: {len(spans)} span(s) as trace_event JSON")
    return 0


def _labels_suffix(entry: dict[str, Any]) -> str:
    labels = entry.get("labels") or {}
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{{{inner}}}="


def _render_top(args: argparse.Namespace) -> str:
    from repro.obs.metrics_io import load_snapshot

    payload = load_snapshot(args.snapshot)
    rows: list[tuple[str, str, str]] = []
    for name, data in sorted(payload.get("metrics", {}).items()):
        kind = str(data.get("type", "?"))
        values = data.get("values", [])
        if kind == "counter":
            rows.append((name, kind, f"{float(data.get('total', 0.0)):g}"))
        elif kind == "gauge":
            rendered = " ".join(
                f"{_labels_suffix(entry)}{float(entry.get('value', 0.0)):g}"
                for entry in values
            )
            rows.append((name, kind, rendered or "-"))
        elif kind == "histogram":
            count = sum(int(entry.get("count", 0)) for entry in values)
            total = sum(float(entry.get("sum", 0.0)) for entry in values)
            mean = total / count if count else 0.0
            rows.append((name, kind, f"n={count} mean={mean:.4g}"))
        else:
            rows.append((name, kind, ""))
    out = render_table(
        ("instrument", "kind", "value"),
        rows,
        title=f"metrics snapshot {args.snapshot}",
    )
    if args.spans:
        from repro.obs.spans import load_spans_jsonl

        spans = load_spans_jsonl(args.spans)
        slowest = sorted(spans, key=lambda s: -s.duration_s)[:10]
        span_rows = [
            (span.name, f"{span.duration_s * 1e3:.2f} ms", span.status)
            for span in slowest
        ]
        out += "\n" + render_table(
            ("span", "wall", "status"),
            span_rows,
            title=f"slowest spans of {args.spans}",
        )
    return out


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    renders = 0
    while True:
        print(_render_top(args))
        renders += 1
        if args.interval <= 0:
            return 0
        if args.count and renders >= args.count:
            return 0
        _time.sleep(args.interval)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    generate_report(Path(args.output), quick=args.quick)
    print(f"wrote {args.output}")
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "solve": _cmd_solve,
    "inspect": _cmd_inspect,
    "record": _cmd_record,
    "replay": _cmd_replay,
    "divergence": _cmd_divergence,
    "explain": _cmd_explain,
    "compare": _cmd_compare,
    "bench": _cmd_bench,
    "baselines": _cmd_baselines,
    "experiment": _cmd_experiment,
    "chaos": _cmd_chaos,
    "chaos-serve": _cmd_chaos_serve,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "loadtest": _cmd_loadtest,
    "trace": _cmd_trace,
    "top": _cmd_top,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
