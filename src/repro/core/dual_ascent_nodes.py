"""Node logic of the dual-ascent variant (primal-dual mirror of the paper).

This variant realizes the same round/approximation trade-off idea through
the LP dual: clients hold budgets ``alpha_j`` that climb a geometric ladder
of ``k`` levels (:meth:`repro.core.parameters.TradeoffParameters.linear`),
facilities become *tight* when accumulated payments
``P_i = sum_j max(0, alpha_j - c_ij)`` reach the opening cost, and tight
facilities freeze the budgets of clients that can afford them. Discretizing
the classic Jain–Vazirani continuous ascent into ``k`` multiplicative jumps
is what trades rounds for approximation: each jump can overshoot tightness
by at most the ladder base ``(eff_max/eff_min)^(1/k)``.

Timeline
--------
Each level ``l`` occupies three simulator rounds:

1. **ALPHA** — every unfrozen client raises ``alpha_j`` to
   ``max(gamma_j, threshold(l))`` (``gamma_j`` = its cheapest connection
   cost) and broadcasts it.
2. **TIGHT** — facilities fold the new budgets into their payments; a
   facility crossing ``P_i >= f_i`` declares itself tight (broadcast).
3. **FREEZE** — a client hearing a tight facility whose connection cost its
   budget covers records it as a *witness* and freezes. Frozen clients keep
   listening and keep recording later witnesses (which may be cheaper).

By the last level every client has a witness: the final threshold equals
the maximum single-client star cost, at which point the client's own
contribution alone pays for its cheapest facility.

A constant-round *rounding phase* then converts tight facilities into open
ones (see :class:`RoundingPolicy` — "select_all" opens every facility some
client selected; "randomized" opens proportionally to selected payment
mass, the paper's randomized-rounding step), followed by the deterministic
fallback that force-opens a leftover client's cheapest witness, so
feasibility is unconditional.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.core.healing import (
    SelfHealingClientMixin,
    SelfHealingPolicy,
    answer_heal_messages,
)
from repro.core.parameters import TradeoffParameters
from repro.exceptions import AlgorithmError
from repro.net.message import Message
from repro.net.node import Node, RoundContext

__all__ = [
    "DualFacilityNode",
    "DualClientNode",
    "RoundingPolicy",
    "dual_schedule_length",
    "dual_phase_of_round",
]

ALPHA = "alp"
TIGHT = "tgt"
SELECT = "sel"
OPEN_AD = "oad"
JOIN = "join"
SERVE = "srv"
FORCE = "frc"

_ROUNDS_PER_LEVEL = 3
_ROUNDING_ROUNDS = 5
_PAYMENT_RTOL = 1e-12


@dataclass(frozen=True)
class RoundingPolicy:
    """How tight facilities are converted into open facilities.

    Attributes
    ----------
    mode:
        ``"select_all"`` — every facility selected by at least one client
        opens (deterministic). ``"randomized"`` — a selected facility opens
        with probability ``min(1, c_round * ln(N) * mass / f_i)`` where
        ``mass`` is the selected payment volume; leftovers are handled by
        the deterministic fallback. The randomized mode is the paper's
        rounding step and the subject of ablation E6.
    c_round:
        The rounding constant (only used by ``"randomized"``).
    """

    mode: str = "select_all"
    c_round: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("select_all", "randomized"):
            raise AlgorithmError(
                f"unknown rounding mode {self.mode!r}; "
                "expected 'select_all' or 'randomized'"
            )
        if self.c_round <= 0:
            raise AlgorithmError(f"c_round must be positive, got {self.c_round}")


def dual_schedule_length(params: TradeoffParameters) -> int:
    """Total simulator rounds of the dual-ascent protocol."""
    return _ROUNDS_PER_LEVEL * params.num_scales + _ROUNDING_ROUNDS


def dual_phase_of_round(
    params: TradeoffParameters, round_number: int
) -> tuple[str, int]:
    """Map a simulator round to ``(phase_name, level)``.

    Phases are ``"alpha" | "tight" | "freeze"`` with a 1-based level during
    the ascent and ``"round1" .. "round5"`` afterwards (level 0).
    """
    ascent_end = _ROUNDS_PER_LEVEL * params.num_scales
    if round_number <= ascent_end:
        level = 1 + (round_number - 1) // _ROUNDS_PER_LEVEL
        offset = (round_number - 1) % _ROUNDS_PER_LEVEL
        return ("alpha", "tight", "freeze")[offset], level
    rounding_offset = round_number - ascent_end
    if rounding_offset <= _ROUNDING_ROUNDS:
        return f"round{rounding_offset}", 0
    return "done", 0


class DualFacilityNode(Node):
    """A facility in the dual-ascent protocol."""

    def __init__(
        self,
        node_id: int,
        opening_cost: float,
        client_costs: Mapping[int, float],
        params: TradeoffParameters,
        policy: RoundingPolicy,
    ) -> None:
        super().__init__(node_id)
        self.opening_cost = float(opening_cost)
        self.client_costs = dict(client_costs)
        self.params = params
        self.policy = policy
        self.alphas: dict[int, float] = {}
        self.is_tight = False
        self.tight_at_level: int | None = None
        self.is_open = False
        self.was_forced = False
        self.was_healed = False
        self.served_clients: set[int] = set()

    @property
    def payment(self) -> float:
        """Current accumulated payment ``P_i``."""
        return sum(
            max(0.0, alpha - self.client_costs[j])
            for j, alpha in self.alphas.items()
        )

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        phase, level = dual_phase_of_round(self.params, ctx.round_number)
        # Budgets are folded in *every* phase, not only TIGHT: under the
        # reliable-delivery sublayer a retransmitted ALPHA can arrive a
        # round or two late, and discarding it would lose real payment.
        for msg in inbox:
            if msg.kind == ALPHA:
                self.alphas[msg.sender] = float(msg["alpha"])
        if phase == "tight":
            self._update_payments(ctx, inbox, level)
        elif phase == "round2":
            self._decide_open(ctx, inbox)
        elif phase == "round4":
            self._handle_force(ctx, inbox)
            self.finished = True
        elif phase in ("round5", "done"):
            # Retransmitted JOIN/FORCE arrive late and healing clients
            # escalate here; keep answering both forever.
            self._handle_force(ctx, inbox)
            answer_heal_messages(self, ctx, inbox)
            self.finished = True

    def _update_payments(
        self, ctx: RoundContext, inbox: list[Message], level: int
    ) -> None:
        """TIGHT: fold new budgets in; announce tightness on crossing."""
        for msg in inbox:
            if msg.kind == ALPHA:
                self.alphas[msg.sender] = float(msg["alpha"])
        # The tolerance must scale with the budget ladder, not only with
        # f_i: when f_i is many orders of magnitude below the budgets,
        # float cancellation in (alpha - c) can swallow f_i entirely and
        # the exact-arithmetic tightness at the terminal level would never
        # be observed.
        slack = _PAYMENT_RTOL * max(self.opening_cost, self.params.eff_max)
        threshold = self.opening_cost - slack
        if not self.is_tight and self.payment >= threshold:
            self.is_tight = True
            self.tight_at_level = level
            ctx.log("tight", level=level, payment=self.payment)
            ctx.count("protocol_tight_total", variant="dual_ascent")
        if self.is_tight:
            # Re-announce every level: clients whose budgets grow later must
            # still learn of facilities that went tight earlier, otherwise
            # they could end the ascent without a witness.
            ctx.broadcast(TIGHT)

    def _decide_open(self, ctx: RoundContext, inbox: list[Message]) -> None:
        """ROUNDING: open per policy and advertise to every neighbor.

        Clients then pick the cheapest *open* witness, so randomized
        rounding with a small constant genuinely trades opening cost
        (fewer facilities) against connection cost (longer detours) —
        exactly the knob ablation E6 sweeps.
        """
        selectors = [msg for msg in inbox if msg.kind == SELECT]
        if not selectors:
            return
        if self.policy.mode == "select_all":
            opens = True
        else:
            mass = sum(
                max(0.0, float(msg["alpha"]) - self.client_costs[msg.sender])
                for msg in selectors
            )
            scale = math.log(max(self.params.num_nodes, 2))
            probability = min(
                1.0, self.policy.c_round * scale * mass / max(self.opening_cost, 1e-300)
            )
            opens = bool(self.rng.random() < probability)
            ctx.log("round_coin", probability=probability, opens=opens)
        if not opens:
            return
        self.is_open = True
        ctx.log("open", selectors=len(selectors), payment=self.payment)
        ctx.count("protocol_opens_total", variant="dual_ascent")
        ctx.broadcast(OPEN_AD)

    def _handle_force(self, ctx: RoundContext, inbox: list[Message]) -> None:
        """Serve joiners; open unconditionally for forcing clients."""
        for msg in inbox:
            if msg.kind == JOIN and self.is_open:
                self.served_clients.add(msg.sender)
                ctx.send(msg.sender, SERVE)
            elif msg.kind == FORCE:
                if not self.is_open:
                    self.is_open = True
                    self.was_forced = True
                    ctx.log("forced_open", by=msg.sender)
                    ctx.count("protocol_forced_opens_total", variant="dual_ascent")
                self.served_clients.add(msg.sender)
                ctx.send(msg.sender, SERVE)


class DualClientNode(SelfHealingClientMixin, Node):
    """A client in the dual-ascent protocol."""

    def __init__(
        self,
        node_id: int,
        facility_costs: Mapping[int, float],
        params: TradeoffParameters,
        healing: SelfHealingPolicy | None = None,
    ) -> None:
        super().__init__(node_id)
        self.facility_costs = dict(facility_costs)
        self.params = params
        self.gamma = min(facility_costs.values())
        self.alpha = 0.0
        self.frozen = False
        self.frozen_at_level: int | None = None
        self.witnesses: set[int] = set()
        self.connected_to: int | None = None
        self.used_force = False
        self._init_healing(healing)

    @property
    def connected(self) -> bool:
        """Whether the client has a confirmed serving facility."""
        return self.connected_to is not None

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        phase, level = dual_phase_of_round(self.params, ctx.round_number)
        self._absorb(ctx, inbox, level)
        if phase == "alpha":
            if not self.frozen:
                self.alpha = max(self.gamma, self.params.threshold(level))
                ctx.log("alpha_raise", level=level, alpha=self.alpha)
                ctx.count("protocol_alpha_raises_total", variant="dual_ascent")
                ctx.broadcast(ALPHA, alpha=self.alpha)
        elif phase == "round1":
            self._select(ctx)
        elif phase == "round3":
            if not self.connected:
                self._join_or_force(ctx, inbox)
        elif phase in ("round5", "done"):
            if self.healing is not None and not self.connected:
                self._heal_tick(ctx, inbox)
            else:
                self.finished = True
        if self.connected:
            self.finished = True

    def _absorb(self, ctx: RoundContext, inbox: list[Message], level: int) -> None:
        """Record tight announcements (witnesses) and service confirmations."""
        for msg in inbox:
            if msg.kind == TIGHT:
                if self.facility_costs[msg.sender] <= self.alpha * (1 + 1e-12):
                    self.witnesses.add(msg.sender)
                    if not self.frozen:
                        self.frozen = True
                        self.frozen_at_level = level
                        ctx.log("settle", level=level, witness=msg.sender)
                        ctx.count("protocol_settles_total", variant="dual_ascent")
            elif msg.kind == SERVE and not self.connected:
                self.connected_to = msg.sender
                ctx.log("connected", facility=msg.sender)
                ctx.count("protocol_connects_total", variant="dual_ascent")

    def _cheapest_witness(self) -> int:
        if not self.witnesses:
            if self.healing is not None:
                # Under faults every TIGHT announcement can be lost; with
                # healing enabled the client degrades gracefully to its
                # cheapest neighbor (healing will repair a bad pick).
                return min(
                    self.facility_costs,
                    key=lambda i: (self.facility_costs[i], i),
                )
            raise AlgorithmError(
                f"client node {self.node_id} reached rounding with no witness; "
                "the final ascent level should make this impossible"
            )
        return min(self.witnesses, key=lambda i: (self.facility_costs[i], i))

    def _select(self, ctx: RoundContext) -> None:
        """ROUNDING: point at the cheapest witness."""
        target = self._cheapest_witness()
        ctx.log("select", facility=target, alpha=self.alpha)
        ctx.send(target, SELECT, alpha=self.alpha)

    def _join_or_force(self, ctx: RoundContext, inbox: list[Message]) -> None:
        """Join the cheapest *open* witness; failing that, force one open."""
        open_witnesses = [
            msg.sender
            for msg in inbox
            if msg.kind == OPEN_AD and msg.sender in self.witnesses
        ]
        if open_witnesses:
            target = min(
                open_witnesses, key=lambda i: (self.facility_costs[i], i)
            )
            ctx.send(target, JOIN)
            ctx.log("join", facility=target)
        else:
            target = self._cheapest_witness()
            self.used_force = True
            ctx.send(target, FORCE)
            ctx.log("force", facility=target)
