"""In-protocol self-healing: clients repair permanent message loss.

The reliable-delivery sublayer (:mod:`repro.net.reliability`) masks
*transient* loss; this module is the layer above, for losses that
retransmission could not fix — a SERVE confirmation gone for good, a
facility that crashed after confirming, a client whose entire force-phase
handshake fell into a partition. Both protocol variants integrate the same
mechanism: a client that reaches the end of its schedule without a
confirmed serving facility does **not** finish; instead it escalates
through a timeout-driven probe/connect state machine until it is served or
exhausts its attempts.

State machine (per healing attempt)
-----------------------------------
* **clock 0** — broadcast ``HEAL_PROBE`` to every neighbor facility.
* **clock 2** (earliest) — responsive facilities' ``HEAL_PONG`` replies
  (carrying their open/closed status) have arrived; the client picks the
  cheapest responsive facility, preferring open ones, skipping
  blacklisted ones, and sends ``HEAL_CONNECT``. A ``HEAL_CONNECT``
  behaves like the force-phase FORCE: the facility opens if necessary
  (``was_healed`` marks such openings) and confirms with SERVE.
* **clock 2 + timeout_rounds** — if still unserved the attempt has timed
  out; the chosen target (if any) is blacklisted as unresponsive and the
  client starts over. After ``max_attempts`` timeouts it gives up
  (``heal_gave_up``) and finishes unserved — the run then reports the gap
  exactly as an unhealed faulty run would.

The late choice point (any clock >= 2 while no target is chosen) matters
under reliability: a pong delayed by retransmission backoff still gets
used instead of silently missing the window.

Self-healing costs nothing when nothing is broken: in a fault-free run
every client is connected by the end of the schedule, the state machine is
never entered, and not one healing message is sent — traffic stays
byte-identical to a run without the policy (verified by test).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import AlgorithmError
from repro.net.message import Message
from repro.net.node import RoundContext

__all__ = [
    "SelfHealingPolicy",
    "SelfHealingClientMixin",
    "answer_heal_messages",
    "healing_round_budget",
    "HEAL_PROBE",
    "HEAL_PONG",
    "HEAL_CONNECT",
]

# Healing message kinds (disjoint from both variants' protocol alphabets).
HEAL_PROBE = "hprb"
HEAL_PONG = "hpon"
HEAL_CONNECT = "hfrc"

#: SERVE confirmation kind — identical in both shipped variants.
_SERVE = "srv"


@dataclass(frozen=True)
class SelfHealingPolicy:
    """Opt-in configuration of client-side self-healing.

    Parameters
    ----------
    timeout_rounds:
        How many rounds past the earliest possible SERVE (probe clock 2)
        a client waits before declaring the attempt dead. Must cover the
        reliable-delivery retry tail to avoid blacklisting a facility
        whose confirmation is merely slow.
    max_attempts:
        How many probe/connect attempts before the client gives up.
    """

    timeout_rounds: int = 6
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.timeout_rounds < 2:
            raise AlgorithmError(
                f"timeout_rounds must be >= 2, got {self.timeout_rounds}"
            )
        if self.max_attempts < 1:
            raise AlgorithmError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )


def healing_round_budget(policy: SelfHealingPolicy | None) -> int:
    """Extra simulator rounds the healing tail may occupy.

    Each attempt spans clocks ``0 .. 2 + timeout_rounds``; after the last
    CONNECT a SERVE needs two more rounds to land, plus one round of
    slack for the final bookkeeping tick.
    """
    if policy is None:
        return 0
    return policy.max_attempts * (policy.timeout_rounds + 3) + 3


class SelfHealingClientMixin:
    """Client-side healing state machine, shared by both variants.

    The host class must provide ``facility_costs`` (mapping facility id ->
    connection cost), ``connected_to``, ``finished`` and the usual node
    attributes; it calls :meth:`_init_healing` from ``__init__`` and
    :meth:`_heal_tick` once per round after its schedule has ended while
    it is still unconnected.
    """

    def _init_healing(self, policy: SelfHealingPolicy | None) -> None:
        self.healing = policy
        self.used_heal = False
        self.heal_gave_up = False
        self._heal_clock = 0
        self._heal_attempts = 0
        self._heal_target: int | None = None
        self._heal_pongs: dict[int, bool] = {}
        self._heal_blacklist: set[int] = set()

    def _heal_tick(self, ctx: RoundContext, inbox: list[Message]) -> None:
        """Advance the healing state machine by one round."""
        for msg in inbox:
            if msg.kind == HEAL_PONG:
                self._heal_pongs[msg.sender] = bool(msg["open"])
        clock = self._heal_clock
        if clock == 0:
            self._heal_pongs = {}
            self._heal_target = None
            ctx.broadcast(HEAL_PROBE)
            ctx.log("heal_probe", attempt=self._heal_attempts + 1)
            ctx.count("protocol_heal_probes_total")
        elif clock >= 2 and self._heal_target is None and self._heal_pongs:
            candidates = {
                i: is_open
                for i, is_open in self._heal_pongs.items()
                if i not in self._heal_blacklist
            }
            if candidates:
                open_ids = [i for i, is_open in candidates.items() if is_open]
                pool = open_ids if open_ids else list(candidates)
                target = min(pool, key=lambda i: (self.facility_costs[i], i))
                self._heal_target = target
                self.used_heal = True
                ctx.send(target, HEAL_CONNECT)
                ctx.log("heal_connect", facility=target)
                ctx.count("protocol_heal_connects_total")
        if clock >= 2 + self.healing.timeout_rounds:
            self._heal_attempts += 1
            if self._heal_target is not None:
                self._heal_blacklist.add(self._heal_target)
            if self._heal_attempts >= self.healing.max_attempts:
                self.heal_gave_up = True
                self.finished = True
                ctx.log("heal_gave_up", attempts=self._heal_attempts)
                return
            self._heal_clock = 0
            ctx.log("heal_retry", attempt=self._heal_attempts + 1)
            return
        self._heal_clock = clock + 1


def answer_heal_messages(
    facility, ctx: RoundContext, inbox: list[Message], serve_kind: str = _SERVE
) -> None:
    """Facility-side healing: answer probes, honor escalated connects.

    Called by both variants' facility nodes in their post-schedule rounds.
    A ``HEAL_CONNECT`` acts like a force-phase FORCE — the facility opens
    if it was closed (flagging ``was_healed``) and confirms with SERVE.
    Replies are deduplicated per round so fault-injected duplicate
    deliveries cannot multiply traffic.
    """
    ponged: set[int] = set()
    served: set[int] = set()
    for msg in inbox:
        if msg.kind == HEAL_PROBE and msg.sender not in ponged:
            ponged.add(msg.sender)
            ctx.send(msg.sender, HEAL_PONG, open=int(facility.is_open))
        elif msg.kind == HEAL_CONNECT and msg.sender not in served:
            served.add(msg.sender)
            if not facility.is_open:
                facility.is_open = True
                facility.was_healed = True
                if getattr(facility, "opened_at_round", False) is None:
                    facility.opened_at_round = ctx.round_number
                ctx.log("healed_open", by=msg.sender)
                ctx.count("protocol_healed_opens_total")
            facility.served_clients.add(msg.sender)
            ctx.send(msg.sender, serve_kind)
