"""The paper's contribution: distributed facility location with a
round/approximation trade-off.

Public entry points:

* :class:`~repro.core.algorithm.DistributedFacilityLocation` — run the
  reconstructed PODC 2005 algorithm on an instance for a trade-off
  parameter ``k`` and get back a solution plus network metrics,
* :class:`~repro.core.parameters.TradeoffParameters` — how ``k`` maps to
  scales, settle iterations and the threshold base,
* :mod:`~repro.core.bounds` — the analytic guarantee envelope
  ``O(sqrt(k) * (m rho)^(1/sqrt k) * log(m+n))`` used by experiments,
* :func:`~repro.core.sequential_sim.run_sequential` — a fast sequential
  emulation of the same protocol (coin-for-coin identical results), used by
  equivalence tests and large parameter sweeps.
"""

from repro.core.algorithm import (
    DistributedFacilityLocation,
    DistributedRunResult,
    Variant,
)
from repro.core.healing import SelfHealingPolicy
from repro.core.parameters import TradeoffParameters
from repro.core.bounds import (
    approximation_envelope,
    round_budget,
    message_bits_envelope,
)

__all__ = [
    "DistributedFacilityLocation",
    "DistributedRunResult",
    "Variant",
    "TradeoffParameters",
    "SelfHealingPolicy",
    "approximation_envelope",
    "round_budget",
    "message_bits_envelope",
]
