"""Distributed aggregation of the schedule coefficients.

The trade-off schedule (:class:`~repro.core.parameters.TradeoffParameters`)
needs two instance-level coefficients, ``eff_min`` and ``eff_max`` — the
extremes of the star-efficiency range. The paper assumes the relevant
spread coefficient (``rho``) is known to all nodes; this module removes
that assumption for deployments where it is not: a min/max **flooding
aggregation** over the bipartite communication graph.

Protocol
--------
Each facility computes its *local* efficiency extremes from its own input
(its opening cost and incident connection costs — see
:func:`local_efficiency_bounds`). Every node then repeatedly merges the
(min, max) pairs it hears and re-broadcasts whenever its pair improves.
After ``diameter`` rounds every node of a connected component holds the
component-global extremes.

Two practical notes, both verified by tests:

* **Components are the right scope.** A client's candidate facilities are
  all in its own component, so component-local coefficients produce a
  valid (indeed potentially tighter) threshold ladder for that component —
  global values are not required for correctness.
* **Termination.** Nodes do not know the diameter; the aggregation runs
  for a caller-chosen number of rounds (any upper bound on the diameter,
  e.g. the known polynomial bound on ``N``). The messages carry two floats
  — ``O(log N)`` bits under the cost-word convention.

This costs ``O(diameter)`` extra rounds, which is why the main algorithm
keeps the paper's known-coefficient assumption by default and treats this
protocol as an opt-in preamble.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance
from repro.net.message import Message
from repro.net.node import Node, RoundContext
from repro.net.simulator import Simulator
from repro.net.topology import Topology

__all__ = [
    "local_efficiency_bounds",
    "AggregationNode",
    "AggregationResult",
    "run_efficiency_aggregation",
]

_KIND = "agg"


def local_efficiency_bounds(
    instance: FacilityLocationInstance, facility: int
) -> tuple[float, float]:
    """One facility's local star-efficiency extremes.

    Mirrors :func:`repro.core.parameters.efficiency_range` for a single
    facility: the best prefix-star efficiency and the worst single-client
    star cost, both computable from the facility's own input alone.
    """
    row = instance.connection_costs[facility]
    finite = row[np.isfinite(row)]
    if finite.size == 0:
        return math.inf, 0.0
    ordered = np.sort(finite)
    prefix = np.cumsum(ordered)
    sizes = np.arange(1, ordered.size + 1)
    ratios = (instance.opening_cost(facility) + prefix) / sizes
    return float(ratios.min()), float(instance.opening_cost(facility) + ordered[-1])


class AggregationNode(Node):
    """Min/max flooding node.

    Facilities seed their local bounds; clients start neutral. Every node
    re-broadcasts whenever its best-known pair improves, so information
    propagates one hop per round and quiesces after the component diameter.
    """

    def __init__(
        self,
        node_id: int,
        local_min: float = math.inf,
        local_max: float = 0.0,
        total_rounds: int = 0,
    ) -> None:
        super().__init__(node_id)
        self.best_min = float(local_min)
        self.best_max = float(local_max)
        self.total_rounds = int(total_rounds)

    def on_setup(self, ctx: RoundContext) -> None:
        if math.isfinite(self.best_min) or self.best_max > 0:
            ctx.broadcast(_KIND, low=self.best_min, high=self.best_max)

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        improved = False
        for msg in inbox:
            if msg.kind != _KIND:
                continue
            low = float(msg["low"])
            high = float(msg["high"])
            if low < self.best_min:
                self.best_min = low
                improved = True
            if high > self.best_max:
                self.best_max = high
                improved = True
        if improved and ctx.round_number < self.total_rounds:
            ctx.broadcast(_KIND, low=self.best_min, high=self.best_max)
        if ctx.round_number >= self.total_rounds:
            self.finished = True


@dataclass(frozen=True)
class AggregationResult:
    """Outcome of the aggregation: per-node (eff_min, eff_max) views."""

    eff_min: tuple[float, ...]
    eff_max: tuple[float, ...]
    rounds: int
    total_messages: int

    def bounds_of(self, node_id: int) -> tuple[float, float]:
        """The (min, max) pair node ``node_id`` ended up with."""
        return self.eff_min[node_id], self.eff_max[node_id]


def run_efficiency_aggregation(
    instance: FacilityLocationInstance,
    rounds: int | None = None,
    seed: int = 0,
) -> AggregationResult:
    """Run the aggregation preamble on an instance's topology.

    Parameters
    ----------
    instance:
        The facility-location instance (defines the topology and costs).
    rounds:
        How many rounds to flood. ``None`` uses the true diameter (what an
        omniscient scheduler would pick); deployments without that
        knowledge pass any upper bound, e.g. ``instance.num_nodes``.
    seed:
        Simulator seed (the protocol is deterministic; the seed only feeds
        the unused node streams).
    """
    topology = Topology.from_instance(instance)
    if rounds is None:
        rounds = max(1, topology.diameter())
    if rounds < 1:
        raise AlgorithmError(f"aggregation needs >= 1 round, got {rounds}")
    nodes: list[AggregationNode] = []
    for i in range(instance.num_facilities):
        low, high = local_efficiency_bounds(instance, i)
        nodes.append(AggregationNode(i, low, high, total_rounds=rounds))
    for j in range(instance.num_clients):
        nodes.append(
            AggregationNode(
                instance.num_facilities + j, total_rounds=rounds
            )
        )
    simulator = Simulator(topology, nodes, seed=seed)
    metrics = simulator.run(max_rounds=rounds + 1)
    return AggregationResult(
        eff_min=tuple(n.best_min for n in nodes),
        eff_max=tuple(n.best_max for n in nodes),
        rounds=metrics.rounds,
        total_messages=metrics.total_messages,
    )
