"""Numpy-batched engines for the sequential emulator.

These functions are drop-in replacements for the pure-Python loops in
:mod:`repro.core.sequential_sim` (``engine="loop"``): same protocol
semantics, same per-node random streams, same floating-point results —
but with every per-iteration client/facility update expressed as array
operations over the instance's ``numpy.inf``-padded dense cost matrix.

**Determinism contract.** The loop engine is the cross-validated
reference (it is itself validated coin-for-coin against the
message-passing simulator), so the batched engines must reproduce it
*bit for bit*, not merely approximately:

* Running sums are computed with ``numpy.cumsum``, which accumulates
  strictly left to right like the reference's ``total += cost`` loops
  (``numpy.sum`` would use pairwise summation and could differ in the
  last ulp — enough to flip a tight threshold or payment comparison).
  Skipped entries contribute ``0.0`` terms, which IEEE addition absorbs
  exactly for the non-negative partial sums that occur here.
* Ties break the same way: ``argsort(kind="stable")`` reproduces the
  reference's ``(cost, node id)`` orderings, and ``argmax``/``argmin``
  return the *first* extremum, matching the ``(priority, -i)`` /
  ``(cost, i)`` tie-break keys.
* Coin flips come from the same :func:`~repro.net.rng.spawn_node_rngs`
  streams, drawn for exactly the same facilities in the same situations
  (streams are per-node independent, so only the per-stream draw *count*
  matters, and both engines draw once per proposing/selected facility).

``tests/test_sequential_equivalence.py`` enforces the contract across
every instance family, both variants, and both engines.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dual_ascent_nodes import RoundingPolicy
from repro.core.parameters import TradeoffParameters
from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance
from repro.net.rng import spawn_node_rngs

__all__ = ["emulate_greedy_vectorized", "emulate_dual_vectorized"]


def _record_greedy_iteration(recorder, label, is_open, assignment, m, n) -> None:
    """Digest one end-of-iteration state (mirrors the loop engine's leaves)."""
    recorder.observe(
        label,
        {
            "open": {f"facility:{i}": bool(is_open[i]) for i in range(m)},
            "assignment": {
                f"client:{j}": int(assignment[j]) for j in range(n)
            },
        },
    )


def emulate_greedy_vectorized(
    instance: FacilityLocationInstance,
    params: TradeoffParameters,
    seed: int,
    open_fraction: float = 0.5,
    recorder=None,
) -> tuple[set[int], dict[int, int]]:
    """Batched scaled-parallel-greedy emulation (flagship variant)."""
    m = instance.num_facilities
    n = instance.num_clients
    rngs = spawn_node_rngs(seed, m + n)  # facility i uses stream i
    costs = instance.connection_costs  # (m, n), inf-padded, read-only
    opening = np.asarray(instance.opening_costs, dtype=float)
    # Per-facility client order by (cost, client node id). A stable sort
    # on cost keeps equal-cost clients in index order, which is exactly
    # the (cost, m + j) key of GreedyFacilityNode._best_star.
    order = np.argsort(costs, axis=1, kind="stable")
    sorted_costs = np.take_along_axis(costs, order, axis=1)
    sorted_finite = np.isfinite(sorted_costs)
    column = np.arange(n)

    is_open = np.zeros(m, dtype=bool)
    active = np.ones(n, dtype=bool)
    assignment = np.full(n, -1, dtype=np.int64)
    priorities = np.empty(m, dtype=float)

    for iteration in range(1, params.num_iterations + 1):
        label = f"greedy:iter:{iteration}"
        scale = params.scale_of_iteration(iteration)
        if not active.any():
            # Facilities observe no actives and draw no coins — identical
            # to the message run, where no ACTIVE message arrives.
            if recorder is not None:
                _record_greedy_iteration(
                    recorder, label, is_open, assignment, m, n
                )
            continue
        # Star search: the largest qualifying prefix of each facility's
        # active clients. `mask` marks prefix slots holding an active
        # client; masked-out slots contribute a 0.0 cost term and do not
        # advance the prefix size, so `totals[i, p] / sizes[i, p]` at a
        # masked slot equals the reference's fee-plus-prefix efficiency.
        mask = active[order] & sorted_finite
        vals = np.where(mask, sorted_costs, 0.0)
        fees = np.where(is_open, 0.0, opening)
        totals = np.cumsum(np.concatenate([fees[:, None], vals], axis=1), axis=1)[
            :, 1:
        ]
        sizes = np.cumsum(mask, axis=1)
        eff = totals / np.maximum(sizes, 1)
        qual = params.qualifies_many(eff, scale) & mask
        best_size = np.max(np.where(qual, sizes, 0), axis=1)
        proposers = best_size > 0

        # One coin per proposing facility, from its own stream — the same
        # draws, in the same situations, as the reference engines.
        priorities.fill(-1.0)
        for i in np.flatnonzero(proposers):
            priorities[i] = rngs[i].random()

        # Scatter star membership back to client space and let every
        # active client accept its best offer: highest priority, then
        # smallest facility id (argmax returns the first maximum).
        member_sorted = mask & (sizes <= best_size[:, None]) & proposers[:, None]
        member = np.zeros((m, n), dtype=bool)
        np.put_along_axis(member, order, member_sorted, axis=1)
        offer_key = np.where(member, priorities[:, None], -1.0)
        best_fac = np.argmax(offer_key, axis=0)
        has_offer = offer_key[best_fac, column] >= 0.0

        # Opening rule: a closed facility opens only when enough of its
        # proposed star accepted (same ceil arithmetic as the reference).
        accepted = np.bincount(best_fac[has_offer], minlength=m)
        needed = np.where(
            is_open, 1, np.maximum(1, np.ceil(best_size * open_fraction))
        )
        success = proposers & (accepted >= needed) & (accepted >= 1)
        is_open |= success
        served = has_offer & success[best_fac]
        assignment[served] = best_fac[served]
        active &= ~served
        if recorder is not None:
            _record_greedy_iteration(recorder, label, is_open, assignment, m, n)

    # Force phase: decisions are made against the open set as of the end
    # of the iterations (matching the PROBE round); forced openings land
    # simultaneously afterwards and never affect other clients' choices.
    if active.any():
        open_costs = np.where(is_open[:, None], costs, np.inf)
        join_cost = open_costs.min(axis=0)
        join_target = open_costs.argmin(axis=0)
        forced_target = costs.argmin(axis=0)
        has_open = np.isfinite(join_cost)
        target = np.where(has_open, join_target, forced_target)
        assignment[active] = target[active]
        is_open[forced_target[active & ~has_open]] = True

    open_set = {int(i) for i in np.flatnonzero(is_open)}
    connected = {int(j): int(assignment[j]) for j in range(n)}
    return open_set, connected


def emulate_dual_vectorized(
    instance: FacilityLocationInstance,
    params: TradeoffParameters,
    seed: int,
    policy: RoundingPolicy,
    recorder=None,
) -> tuple[set[int], dict[int, int]]:
    """Batched dual-ascent emulation (variant)."""
    m = instance.num_facilities
    n = instance.num_clients
    rngs = spawn_node_rngs(seed, m + n)
    costs = instance.connection_costs  # (m, n), inf-padded
    opening = np.asarray(instance.opening_costs, dtype=float)
    column = np.arange(n)

    gamma = costs.min(axis=0)  # every client has >= 1 finite edge
    alphas = np.zeros(n, dtype=float)
    frozen = np.zeros(n, dtype=bool)
    tight = np.zeros(m, dtype=bool)
    witnesses = np.zeros((m, n), dtype=bool)
    # Same ladder-scaled tolerance as DualFacilityNode (see its comment
    # on float cancellation with tiny opening costs).
    slack = 1e-12 * np.maximum(opening, params.eff_max)

    for level in range(1, params.num_scales + 1):
        threshold = params.threshold(level)
        alphas = np.where(frozen, alphas, np.maximum(gamma, threshold))
        # Payments accumulate in client order — cumsum, not sum, so the
        # running total matches the reference's dict-iteration sum bit
        # for bit (alphas - inf is -inf, clamped to a 0.0 contribution).
        contrib = np.maximum(0.0, alphas[None, :] - costs)
        payment = np.cumsum(contrib, axis=1)[:, -1]
        tight |= payment >= opening - slack
        witnesses |= tight[:, None] & (costs <= alphas[None, :] * (1 + 1e-12))
        frozen = witnesses.any(axis=0)
        if recorder is not None:
            recorder.observe(
                f"dual:level:{level}",
                {
                    "alpha": {
                        f"client:{j}": float(alphas[j]) for j in range(n)
                    },
                    "frozen": {
                        f"client:{j}": bool(frozen[j]) for j in range(n)
                    },
                    "witnesses": {
                        f"client:{j}": [
                            int(i) for i in np.flatnonzero(witnesses[:, j])
                        ]
                        for j in range(n)
                    },
                    "tight": {
                        f"facility:{i}": bool(tight[i]) for i in range(m)
                    },
                },
            )

    # Rounding phase: every client selects its cheapest witness.
    if not frozen.all():
        j = int(np.flatnonzero(~frozen)[0])
        raise AlgorithmError(
            f"client {j} has no witness after the final level; "
            "this contradicts the ladder's terminal property"
        )
    witness_cost = np.where(witnesses, costs, np.inf)
    target = witness_cost.argmin(axis=0)
    selected = np.zeros((m, n), dtype=bool)
    selected[target, column] = True
    has_selectors = selected.any(axis=1)

    is_open = np.zeros(m, dtype=bool)
    if policy.mode == "select_all":
        is_open |= has_selectors
    else:
        mass = np.cumsum(
            np.where(selected, np.maximum(0.0, alphas[None, :] - costs), 0.0),
            axis=1,
        )[:, -1]
        scale = math.log(max(params.num_nodes, 2))
        factor = policy.c_round * scale
        for i in np.flatnonzero(has_selectors):
            probability = min(
                1.0, factor * float(mass[i]) / max(float(opening[i]), 1e-300)
            )
            if rngs[i].random() < probability:
                is_open[i] = True
    if recorder is not None:
        recorder.observe(
            "dual:rounding",
            {"open": {f"facility:{i}": bool(is_open[i]) for i in range(m)}},
        )

    # Clients join the cheapest witness opened by the rounding coin flips;
    # leftovers force their cheapest witness open (deterministic fallback).
    # Join decisions see only the coin-opened set, matching the OPEN_AD
    # round of the message protocol.
    open_witness = witnesses & is_open[:, None]
    open_witness_cost = np.where(open_witness, costs, np.inf)
    join_target = open_witness_cost.argmin(axis=0)
    has_open_witness = open_witness.any(axis=0)
    final = np.where(has_open_witness, join_target, target)
    is_open[target[~has_open_witness]] = True

    open_set = {int(i) for i in np.flatnonzero(is_open)}
    connected = {int(j): int(final[j]) for j in range(n)}
    return open_set, connected
