"""Columnar sharded execution engine for both protocol variants.

The object-graph simulator and even the dense vectorized engines top out
well below a million nodes: the simulator spends its time on per-node
Python objects and per-inbox lists, and the dense engines materialize an
``(m, n)`` cost matrix that costs ``8 m n`` bytes regardless of how
sparse the bipartite graph actually is. This module is the third
re-implementation of the protocol semantics, built for scale:

* **Columnar state.** All per-node state — facility open flags, client
  active/assignment state, duals, alpha levels, freeze flags — lives in
  flat numpy buffers indexed by node id. The message plane is columnar
  too: instead of per-node inbox lists, every facility⇄client edge is one
  slot in CSR-style edge arrays with offset/count indexing
  (:class:`ColumnarInstance`), and a protocol "message" is a flag or
  value written into an edge column (e.g. the per-iteration ``member``
  proposal plane) that the receiving side gathers through a permutation.
* **Sharding.** One instance's node range splits across worker processes
  over ``multiprocessing.shared_memory``: every worker owns one facility
  slice and one client slice, runs the same slice-parametric kernels the
  in-process path runs, and synchronizes on a per-phase barrier. The
  cross-shard "message exchange" is exactly the bucketed ndarray
  scatter/gather through the shared edge plane — facility shards write
  their edge slices, client shards gather them through the client-order
  permutation after the barrier.

**Determinism contract.** The loop engine stays the small-scale oracle,
and this engine must match it (and the dense vectorized engine) *bit for
bit* — same open sets, same assignments, same coin flips, same recorder
digests — at every shard count:

* The per-facility prefix sums of the greedy star search are computed on
  a degree-padded 2-D array with ``numpy.cumsum`` (fee in column 0, one
  edge per subsequent column in (cost, client id) order). Absent and
  inactive slots contribute exact ``0.0`` terms, which IEEE addition
  absorbs exactly for the non-negative partial sums that occur here, so
  the prefix values equal the dense engine's inf-padded row cumsums at
  every real-edge position.
* First-extremum tie-breaks (``argmax``/``argmin`` in the dense engine)
  become two-pass segment reductions: a ``reduceat`` for the extreme
  value, then a ``reduceat`` over facility ids restricted to edges
  attaining it — the minimum id among ties, which is exactly what a
  first-extremum scan returns.
* Coin flips come from the same per-node ``SeedSequence`` streams
  (:func:`~repro.net.rng.spawn_node_rng_range`); only facilities ever
  draw, so a million-node run builds only ``m`` generators, and a shard
  builds only its slice — streams identical to the full spawn by the
  spawn-key prefix property.
* Shard boundaries never reorder arithmetic: every kernel reads shared
  state only between barriers and writes only its own slice (plus
  idempotent single-byte ``True`` scatters in the two force/join apply
  phases, which are race-free and order-independent).

``tests/test_columnar.py`` enforces the contract — solutions and
FlightRecorder digests — against both reference engines at shards 1 and 4.
"""

from __future__ import annotations

import math
import multiprocessing
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

from repro.core.algorithm import Variant
from repro.core.dual_ascent_nodes import RoundingPolicy
from repro.core.parameters import TradeoffParameters
from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance
from repro.net.rng import spawn_node_rng_range

__all__ = [
    "ColumnarInstance",
    "ColumnarSolveResult",
    "columnar_efficiency_range",
    "columnar_parameters",
    "emulate_greedy_columnar",
    "emulate_dual_columnar",
    "solve_columnar",
]

#: Test-only perturbation hook mirroring
#: :data:`repro.core.sequential_sim._TEST_DUAL_ALPHA_RAISE_HOOK`: when set
#: to a callable ``(level, client, value) -> value``, every dual alpha
#: raise in the *in-process* columnar path passes through it. Tests
#: monkeypatch it to force a single mis-raise on the columnar plane and
#: assert that ``repro divergence`` pinpoints exactly that level and
#: client. Never set in production (and never forwarded to shard workers).
_TEST_COLUMNAR_DUAL_ALPHA_RAISE_HOOK: Callable[[int, int, float], float] | None = None

#: A barrier wait exceeding this is treated as a dead shard, not a slow one.
_BARRIER_TIMEOUT_S = 600.0


# ----------------------------------------------------------------------
# Columnar instance plane
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnarInstance:
    """CSR edge-plane representation of a facility-location instance.

    Edges are stored twice, as two orderings of the same edge set:

    * **Facility-major greedy order** (``g_*`` columns, segmented by
      ``fac_ptr``): within each facility, edges sort by (cost, client id)
      — the exact prefix order of the greedy star search.
    * **Facility-major client order** (``byc_*`` columns, same
      ``fac_ptr`` segments): within each facility, edges sort by client
      id — the exact accumulation order of the dual payment sums.

    The client side (``cli_*`` columns, segmented by ``cli_ptr``) sorts
    by (client, facility id); ``cli_edge`` maps each client-side slot to
    its greedy-order edge index, which is how per-edge flags written by
    facility kernels are gathered client-side (the columnar inbox).
    """

    m: int
    n: int
    opening: np.ndarray  # (m,) float64
    fac_ptr: np.ndarray  # (m+1,) int64 — segment offsets into g_*/byc_*
    g_fac: np.ndarray  # (E,) int64, greedy order
    g_cli: np.ndarray  # (E,) int64
    g_cost: np.ndarray  # (E,) float64
    byc_cli: np.ndarray  # (E,) int64, client order per facility
    byc_cost: np.ndarray  # (E,) float64
    cli_ptr: np.ndarray  # (n+1,) int64 — segment offsets into cli_*
    cli_fac: np.ndarray  # (E,) int64
    cli_cost: np.ndarray  # (E,) float64
    cli_edge: np.ndarray  # (E,) int64 — client slot -> greedy edge index
    name: str = "columnar"

    @property
    def num_edges(self) -> int:
        """Total number of finite facility-client edges."""
        return int(self.g_cost.shape[0])

    @property
    def num_nodes(self) -> int:
        """Facilities plus clients (the protocol's ``N``)."""
        return self.m + self.n

    @property
    def client_degrees(self) -> np.ndarray:
        """Edges per client, ``(n,)``."""
        return np.diff(self.cli_ptr)

    @property
    def facility_degrees(self) -> np.ndarray:
        """Edges per facility, ``(m,)``."""
        return np.diff(self.fac_ptr)

    @classmethod
    def from_edges(
        cls,
        opening: np.ndarray,
        fac_idx: np.ndarray,
        cli_idx: np.ndarray,
        cost: np.ndarray,
        num_clients: int,
        name: str = "columnar",
    ) -> "ColumnarInstance":
        """Build the dual-ordered CSR plane from an edge triplet list."""
        opening = np.ascontiguousarray(opening, dtype=np.float64)
        fac_idx = np.asarray(fac_idx, dtype=np.int64)
        cli_idx = np.asarray(cli_idx, dtype=np.int64)
        cost = np.asarray(cost, dtype=np.float64)
        m = int(opening.shape[0])
        n = int(num_clients)
        if not np.all(np.isfinite(cost)) or (cost.size and float(cost.min()) < 0):
            raise AlgorithmError("columnar edges must have finite non-negative costs")
        counts = np.bincount(cli_idx, minlength=n)
        if n and int(counts.min()) < 1:
            j = int(np.flatnonzero(counts == 0)[0])
            raise AlgorithmError(f"client {j} has no facility edge; instance infeasible")
        # Greedy order: (facility, cost, client). lexsort keys are listed
        # least-significant first and the sort is stable.
        greedy = np.lexsort((cli_idx, cost, fac_idx))
        g_fac = np.ascontiguousarray(fac_idx[greedy])
        g_cli = np.ascontiguousarray(cli_idx[greedy])
        g_cost = np.ascontiguousarray(cost[greedy])
        fac_ptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(g_fac, minlength=m), out=fac_ptr[1:])
        # Client order within each facility segment: (facility, client).
        byc = np.lexsort((g_cli, g_fac))
        byc_cli = np.ascontiguousarray(g_cli[byc])
        byc_cost = np.ascontiguousarray(g_cost[byc])
        # Client side: (client, facility), with the permutation back into
        # greedy edge indices (the gather side of the columnar inbox).
        cli_order = np.lexsort((g_fac, g_cli))
        cli_fac = np.ascontiguousarray(g_fac[cli_order])
        cli_cost = np.ascontiguousarray(g_cost[cli_order])
        cli_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(g_cli, minlength=n), out=cli_ptr[1:])
        return cls(
            m=m,
            n=n,
            opening=opening,
            fac_ptr=fac_ptr,
            g_fac=g_fac,
            g_cli=g_cli,
            g_cost=g_cost,
            byc_cli=byc_cli,
            byc_cost=byc_cost,
            cli_ptr=cli_ptr,
            cli_fac=cli_fac,
            cli_cost=cli_cost,
            cli_edge=np.ascontiguousarray(cli_order, dtype=np.int64),
            name=str(name),
        )

    @classmethod
    def from_instance(cls, instance: FacilityLocationInstance) -> "ColumnarInstance":
        """Convert a dense instance (finite entries become edges)."""
        costs = instance.connection_costs
        fac_idx, cli_idx = np.nonzero(np.isfinite(costs))
        return cls.from_edges(
            np.asarray(instance.opening_costs, dtype=np.float64),
            fac_idx,
            cli_idx,
            costs[fac_idx, cli_idx],
            num_clients=instance.num_clients,
            name=instance.name,
        )

    @classmethod
    def generate_sparse(
        cls,
        num_facilities: int,
        num_clients: int,
        seed: int,
        client_degree: int = 3,
        opening_scale: float = 2.0,
    ) -> "ColumnarInstance":
        """Sparse bipartite instance generated natively on the edge plane.

        Same flavor as the dense ``sparse`` family (each client connects
        to ``client_degree`` distinct facilities with uniform(0.1, 1.0)
        costs, opening costs uniform(0.5, 1.5) times ``opening_scale``)
        but sampled with batched numpy draws so a million-node instance
        materializes in edge space — never as an ``(m, n)`` matrix.
        """
        m, n = int(num_facilities), int(num_clients)
        d = min(int(client_degree), m)
        if m < 1 or n < 1 or d < 1:
            raise AlgorithmError("sparse columnar instance needs m, n, degree >= 1")
        rng = np.random.default_rng(seed)
        neighbors = rng.integers(0, m, size=(n, d), dtype=np.int64)
        while True:
            # Re-sample rows with duplicate facilities; expected a handful
            # of passes since collision probability is ~d^2/m per client.
            ordered = np.sort(neighbors, axis=1)
            bad = (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
            if not bad.any():
                break
            neighbors[bad] = rng.integers(0, m, size=(int(bad.sum()), d))
        costs = rng.uniform(0.1, 1.0, size=(n, d))
        opening = rng.uniform(0.5, 1.5, size=m) * float(opening_scale)
        cli_idx = np.repeat(np.arange(n, dtype=np.int64), d)
        return cls.from_edges(
            opening,
            neighbors.ravel(),
            cli_idx,
            costs.ravel(),
            num_clients=n,
            name=f"sparse-columnar(m={m},n={n},d={d},seed={seed})",
        )

    def to_instance(self) -> FacilityLocationInstance:
        """Materialize the dense inf-padded instance (oracle-size only)."""
        dense = np.full((self.m, self.n), np.inf)
        dense[self.g_fac, self.g_cli] = self.g_cost
        return FacilityLocationInstance(self.opening, dense, name=self.name)

    def padded(self, f0: int, f1: int) -> "_PaddedSlice":
        """Degree-padded 2-D edge views for the facility slice ``[f0, f1)``."""
        ptr = self.fac_ptr
        deg = ptr[f0 + 1 : f1 + 1] - ptr[f0:f1]
        width = int(deg.max()) if deg.size else 0
        idx = ptr[f0:f1, None] + np.arange(width, dtype=np.int64)[None, :]
        valid = np.arange(width)[None, :] < deg[:, None]
        safe = np.minimum(idx, max(self.num_edges - 1, 0))
        return _PaddedSlice(
            valid=valid,
            g_cost=np.where(valid, self.g_cost[safe], 0.0),
            g_cli=np.where(valid, self.g_cli[safe], 0),
            byc_cost=np.where(valid, self.byc_cost[safe], 0.0),
            byc_cli=np.where(valid, self.byc_cli[safe], 0),
            degrees=deg,
        )


@dataclass(frozen=True)
class _PaddedSlice:
    """Per-facility-slice padded 2-D edge arrays (one row per facility)."""

    valid: np.ndarray  # (ms, D) bool — real-edge slots
    g_cost: np.ndarray  # (ms, D) greedy-order costs, 0.0 padded
    g_cli: np.ndarray  # (ms, D) greedy-order client ids, 0 padded
    byc_cost: np.ndarray  # (ms, D) client-order costs, 0.0 padded
    byc_cli: np.ndarray  # (ms, D) client-order client ids, 0 padded
    degrees: np.ndarray  # (ms,) real degrees


# ----------------------------------------------------------------------
# Parameters on the edge plane
# ----------------------------------------------------------------------


def columnar_efficiency_range(cinst: ColumnarInstance) -> tuple[float, float]:
    """Star-efficiency range, bit-identical to the dense computation.

    The dense :func:`~repro.core.parameters.efficiency_range` cumsums each
    facility's sorted finite costs; the greedy edge order is that same
    ascending cost sequence, so the padded-2-D cumsum reproduces every
    prefix value exactly (identical float multiset in identical order),
    and min/max are order-independent.
    """
    pad = cinst.padded(0, cinst.m)
    if not pad.valid.any():
        raise AlgorithmError("instance has no facility-client edge")
    prefix = np.cumsum(np.where(pad.valid, pad.g_cost, 0.0), axis=1)
    sizes = np.arange(1, pad.valid.shape[1] + 1)
    ratios = (cinst.opening[:, None] + prefix) / sizes
    eff_min = float(ratios[pad.valid].min())
    has_edges = pad.degrees > 0
    rows = np.flatnonzero(has_edges)
    last = pad.g_cost[rows, pad.degrees[rows] - 1]
    eff_max = float((cinst.opening[rows] + last).max())
    eff_max = max(eff_max, eff_min, 1e-300)
    eff_min = max(eff_min, eff_max * 1e-12)
    return eff_min, eff_max


def columnar_parameters(
    cinst: ColumnarInstance, k: int, variant: Variant | str = Variant.GREEDY
) -> TradeoffParameters:
    """Schedule for ``k`` computed on the edge plane.

    Same arithmetic as :meth:`TradeoffParameters.from_instance` (greedy)
    / :meth:`~TradeoffParameters.linear` (dual ascent), fed by
    :func:`columnar_efficiency_range` — so parameters agree bit for bit
    with what the dense engines derive from the equivalent instance.
    """
    if k < 1:
        raise AlgorithmError(f"trade-off parameter k must be >= 1, got {k}")
    eff_min, eff_max = columnar_efficiency_range(cinst)
    ratio = max(1.0, eff_max / eff_min)
    if Variant(variant) is Variant.GREEDY:
        num_scales = max(1, math.ceil(math.sqrt(k)))
        num_settle = max(1, math.ceil(k / num_scales))
    else:
        num_scales, num_settle = k, 1
    return TradeoffParameters(
        k=k,
        num_scales=num_scales,
        num_settle=num_settle,
        base=ratio ** (1.0 / num_scales),
        eff_min=eff_min,
        eff_max=eff_max,
        num_nodes=cinst.num_nodes,
    )


# ----------------------------------------------------------------------
# Slice-parametric round kernels
#
# Every kernel touches shared state in a fixed pattern: it may *read* any
# array, but *writes* only its own facility/client slice (the force/join
# apply kernels additionally scatter idempotent True bytes into
# ``is_open``). Between kernels sits a barrier in sharded mode; the
# in-process driver simply calls them back to back with full slices.
# ----------------------------------------------------------------------


def _client_segments(cinst: ColumnarInstance, c0: int, c1: int):
    """Edge window and reduceat offsets for the client slice ``[c0, c1)``."""
    lo = int(cinst.cli_ptr[c0])
    hi = int(cinst.cli_ptr[c1])
    starts = cinst.cli_ptr[c0:c1] - lo
    lengths = np.diff(cinst.cli_ptr[c0 : c1 + 1])
    return lo, hi, starts, lengths


def _segment_min_with_id(values, fac_ids, starts, lengths, sentinel):
    """Per-segment (min value, smallest facility id attaining it).

    Mirrors a dense first-extremum ``argmin`` over the facility axis:
    equal-value ties resolve to the smallest facility id.
    """
    best = np.minimum.reduceat(values, starts)
    attain = values == np.repeat(best, lengths)
    ids = np.minimum.reduceat(np.where(attain, fac_ids, sentinel), starts)
    return best, ids


def _greedy_facility_phase(
    cinst, pad, params, scale, rngs, f0, f1, *, active, is_open, priorities, best_size, member
) -> None:
    """Star search + proposal coins for the facility slice ``[f0, f1)``."""
    if f1 <= f0:
        return
    act = active[pad.g_cli] & pad.valid
    fees = np.where(is_open[f0:f1], 0.0, cinst.opening[f0:f1])
    if act.shape[1]:
        vals = np.where(act, pad.g_cost, 0.0)
        totals = np.cumsum(np.concatenate([fees[:, None], vals], axis=1), axis=1)[:, 1:]
        sizes = np.cumsum(act, axis=1)
        eff = totals / np.maximum(sizes, 1)
        qual = params.qualifies_many(eff, scale) & act
        best = np.max(np.where(qual, sizes, 0), axis=1)
    else:
        best = np.zeros(f1 - f0, dtype=np.int64)
    best_size[f0:f1] = best
    proposers = best > 0
    priorities[f0:f1] = -1.0
    for local in np.flatnonzero(proposers):
        priorities[f0 + local] = rngs[local].random()
    if act.shape[1]:
        member2d = act & (np.cumsum(act, axis=1) <= best[:, None]) & proposers[:, None]
        member[cinst.fac_ptr[f0] : cinst.fac_ptr[f1]] = member2d[pad.valid]


def _greedy_client_offer_phase(
    cinst, c0, c1, *, member, priorities, best_fac, has_offer
) -> np.ndarray:
    """Offer resolution for ``[c0, c1)``; returns partial accept counts."""
    if c1 <= c0:
        return np.zeros(cinst.m, dtype=np.int64)
    lo, hi, starts, lengths = _client_segments(cinst, c0, c1)
    e_fac = cinst.cli_fac[lo:hi]
    e_member = member[cinst.cli_edge[lo:hi]]
    key = np.where(e_member, priorities[e_fac], -1.0)
    best = np.maximum.reduceat(key, starts)
    offered = best >= 0.0
    # Highest priority wins; equal priorities resolve to the smallest
    # facility id, exactly like the dense engine's first-maximum argmax.
    attain = e_member & (key == np.repeat(best, lengths))
    chosen = np.minimum.reduceat(np.where(attain, e_fac, cinst.m), starts)
    best_fac[c0:c1] = np.where(offered, chosen, 0)
    has_offer[c0:c1] = offered
    return np.bincount(chosen[offered], minlength=cinst.m)


def _greedy_facility_open_phase(
    cinst, accepted, open_fraction, f0, f1, *, is_open, best_size, success
) -> None:
    """Opening rule for ``[f0, f1)`` given full accept counts."""
    if f1 <= f0:
        return
    best = best_size[f0:f1]
    proposers = best > 0
    got = accepted[f0:f1]
    needed = np.where(is_open[f0:f1], 1, np.maximum(1, np.ceil(best * open_fraction)))
    won = proposers & (got >= needed) & (got >= 1)
    success[f0:f1] = won
    is_open[f0:f1] |= won


def _greedy_client_serve_phase(
    c0, c1, *, success, best_fac, has_offer, assignment, active
) -> int:
    """Serve accepted clients of ``[c0, c1)``; returns the served count."""
    if c1 <= c0:
        return 0
    offered = has_offer[c0:c1]
    chosen = best_fac[c0:c1]
    served = offered & success[chosen]
    segment = assignment[c0:c1]
    segment[served] = chosen[served]
    active[c0:c1] &= ~served
    return int(served.sum())


def _greedy_force_compute_phase(
    cinst, c0, c1, *, is_open, active, assignment, forced_mask, forced_target
) -> None:
    """Join-or-force decisions for ``[c0, c1)`` against the pre-force open set."""
    if c1 <= c0:
        return
    lo, hi, starts, lengths = _client_segments(cinst, c0, c1)
    e_fac = cinst.cli_fac[lo:hi]
    e_cost = cinst.cli_cost[lo:hi]
    open_edge = is_open[e_fac]
    open_cost, join_target = _segment_min_with_id(
        np.where(open_edge, e_cost, np.inf), e_fac, starts, lengths, cinst.m
    )
    _, cheapest = _segment_min_with_id(e_cost, e_fac, starts, lengths, cinst.m)
    has_open = np.isfinite(open_cost)
    target = np.where(has_open, join_target, cheapest)
    act = active[c0:c1]
    segment = assignment[c0:c1]
    segment[act] = target[act]
    forcing = act & ~has_open
    forced_mask[c0:c1] = forcing
    forced_target[c0:c1] = np.where(forcing, cheapest, 0)


def _greedy_force_apply_phase(c0, c1, *, is_open, forced_mask, forced_target) -> None:
    """Apply forced openings for ``[c0, c1)`` (idempotent True scatters)."""
    if c1 <= c0:
        return
    forcing = forced_mask[c0:c1]
    is_open[forced_target[c0:c1][forcing]] = True


def _dual_client_alpha_phase(c0, c1, threshold, hook, level, *, alphas, frozen, gamma) -> None:
    """Alpha raises for the client slice ``[c0, c1)``."""
    if c1 <= c0:
        return
    raised = np.maximum(gamma[c0:c1], threshold)
    if hook is not None:
        fr = frozen[c0:c1]
        for local in range(c1 - c0):
            if not fr[local]:
                raised[local] = hook(level, c0 + local, float(raised[local]))
    alphas[c0:c1] = np.where(frozen[c0:c1], alphas[c0:c1], raised)


def _dual_facility_phase(cinst, pad, slack, f0, f1, *, alphas, tight, witness) -> None:
    """Payments, tightness, and witness-edge flags for ``[f0, f1)``."""
    if f1 <= f0:
        return
    if pad.valid.shape[1]:
        contrib = np.where(
            pad.valid, np.maximum(0.0, alphas[pad.byc_cli] - pad.byc_cost), 0.0
        )
        payment = np.cumsum(contrib, axis=1)[:, -1]
    else:
        payment = np.zeros(f1 - f0)
    tight[f0:f1] |= payment >= cinst.opening[f0:f1] - slack[f0:f1]
    lo, hi = int(cinst.fac_ptr[f0]), int(cinst.fac_ptr[f1])
    edge_tight = tight[cinst.g_fac[lo:hi]]
    witness[lo:hi] |= edge_tight & (
        cinst.g_cost[lo:hi] <= alphas[cinst.g_cli[lo:hi]] * (1 + 1e-12)
    )


def _dual_client_freeze_phase(cinst, c0, c1, *, witness, frozen) -> None:
    """Freeze clients of ``[c0, c1)`` that gained a witness."""
    if c1 <= c0:
        return
    lo, hi, starts, _ = _client_segments(cinst, c0, c1)
    flags = witness[cinst.cli_edge[lo:hi]].view(np.uint8)
    frozen[c0:c1] = np.maximum.reduceat(flags, starts).astype(bool)


def _dual_client_select_phase(cinst, c0, c1, *, witness, target) -> None:
    """Cheapest-witness selection for ``[c0, c1)``."""
    if c1 <= c0:
        return
    lo, hi, starts, lengths = _client_segments(cinst, c0, c1)
    e_fac = cinst.cli_fac[lo:hi]
    flags = witness[cinst.cli_edge[lo:hi]]
    cost = np.where(flags, cinst.cli_cost[lo:hi], np.inf)
    _, chosen = _segment_min_with_id(cost, e_fac, starts, lengths, cinst.m)
    target[c0:c1] = chosen


def _dual_facility_round_phase(
    cinst, pad, params, policy, rngs, f0, f1, *, alphas, target, is_open
) -> None:
    """Rounding coin flips for ``[f0, f1)`` given full selections."""
    if f1 <= f0:
        return
    fac_ids = np.arange(f0, f1, dtype=np.int64)[:, None]
    selected = pad.valid & (target[pad.byc_cli] == fac_ids)
    has_selectors = selected.any(axis=1)
    if policy.mode == "select_all":
        is_open[f0:f1] |= has_selectors
        return
    if selected.shape[1]:
        contrib = np.where(
            selected, np.maximum(0.0, alphas[pad.byc_cli] - pad.byc_cost), 0.0
        )
        mass = np.cumsum(contrib, axis=1)[:, -1]
    else:
        mass = np.zeros(f1 - f0)
    factor = policy.c_round * math.log(max(params.num_nodes, 2))
    for local in np.flatnonzero(has_selectors):
        probability = min(
            1.0,
            factor * float(mass[local]) / max(float(cinst.opening[f0 + local]), 1e-300),
        )
        if rngs[local].random() < probability:
            is_open[f0 + local] = True


def _dual_join_compute_phase(
    cinst, c0, c1, *, witness, is_open, target, assignment, forced_mask
) -> None:
    """Join decisions for ``[c0, c1)`` against the coin-opened set only."""
    if c1 <= c0:
        return
    lo, hi, starts, lengths = _client_segments(cinst, c0, c1)
    e_fac = cinst.cli_fac[lo:hi]
    flags = witness[cinst.cli_edge[lo:hi]] & is_open[e_fac]
    cost = np.where(flags, cinst.cli_cost[lo:hi], np.inf)
    open_cost, join_target = _segment_min_with_id(cost, e_fac, starts, lengths, cinst.m)
    has_open = np.isfinite(open_cost)
    assignment[c0:c1] = np.where(has_open, join_target, target[c0:c1])
    forced_mask[c0:c1] = ~has_open


def _dual_join_apply_phase(c0, c1, *, forced_mask, target, is_open) -> None:
    """Force leftover clients' cheapest witnesses open (True scatters)."""
    if c1 <= c0:
        return
    forcing = forced_mask[c0:c1]
    is_open[target[c0:c1][forcing]] = True


# ----------------------------------------------------------------------
# Recorder checkpoints (parent-side in sharded mode)
# ----------------------------------------------------------------------


def _record_greedy_checkpoint(recorder, label, is_open, assignment) -> None:
    recorder.observe(
        label,
        {
            "open": {f"facility:{i}": bool(v) for i, v in enumerate(is_open)},
            "assignment": {f"client:{j}": int(v) for j, v in enumerate(assignment)},
        },
    )


def _record_dual_level_checkpoint(
    recorder, level, cinst, alphas, frozen, witness, tight
) -> None:
    witness_lists: dict[str, list[int]] = {}
    flags = witness[cinst.cli_edge]
    for j in range(cinst.n):
        lo, hi = int(cinst.cli_ptr[j]), int(cinst.cli_ptr[j + 1])
        seg = flags[lo:hi]
        # cli_* sorts by facility id within a client, so this list is
        # ascending — matching the reference engines' sorted sets.
        witness_lists[f"client:{j}"] = [int(f) for f in cinst.cli_fac[lo:hi][seg]]
    recorder.observe(
        f"dual:level:{level}",
        {
            "alpha": {f"client:{j}": float(v) for j, v in enumerate(alphas)},
            "frozen": {f"client:{j}": bool(v) for j, v in enumerate(frozen)},
            "witnesses": witness_lists,
            "tight": {f"facility:{i}": bool(v) for i, v in enumerate(tight)},
        },
    )


def _record_dual_rounding_checkpoint(recorder, is_open) -> None:
    recorder.observe(
        "dual:rounding",
        {"open": {f"facility:{i}": bool(v) for i, v in enumerate(is_open)}},
    )


# ----------------------------------------------------------------------
# In-process drivers (shards == 1)
# ----------------------------------------------------------------------


def _greedy_columnar_arrays(
    cinst: ColumnarInstance,
    params: TradeoffParameters,
    seed: int,
    open_fraction: float,
    recorder,
    ledger,
) -> tuple[np.ndarray, np.ndarray]:
    m, n = cinst.m, cinst.n
    pad = cinst.padded(0, m)
    rngs = spawn_node_rng_range(seed, 0, m)
    client_deg = cinst.client_degrees
    state = {
        "active": np.ones(n, dtype=bool),
        "is_open": np.zeros(m, dtype=bool),
        "assignment": np.full(n, -1, dtype=np.int64),
        "priorities": np.empty(m, dtype=np.float64),
        "best_size": np.zeros(m, dtype=np.int64),
        "success": np.zeros(m, dtype=bool),
        "member": np.zeros(cinst.num_edges, dtype=bool),
        "best_fac": np.zeros(n, dtype=np.int64),
        "has_offer": np.zeros(n, dtype=bool),
        "forced_mask": np.zeros(n, dtype=bool),
        "forced_target": np.zeros(n, dtype=np.int64),
    }
    for iteration in range(1, params.num_iterations + 1):
        label = f"greedy:iter:{iteration}"
        scale = params.scale_of_iteration(iteration)
        if not state["active"].any():
            # No facility observes an active client: no coins, no traffic —
            # identical to the reference engines' skip branch.
            if ledger is not None:
                ledger.greedy_iteration(0, 0, 0, 0, 0)
            if recorder is not None:
                _record_greedy_checkpoint(
                    recorder, label, state["is_open"], state["assignment"]
                )
            continue
        active_edges = int(client_deg[state["active"]].sum()) if ledger is not None else 0
        open_before = int(state["is_open"].sum()) if ledger is not None else 0
        _greedy_facility_phase(
            cinst, pad, params, scale, rngs, 0, m,
            active=state["active"], is_open=state["is_open"],
            priorities=state["priorities"], best_size=state["best_size"],
            member=state["member"],
        )
        accepted = _greedy_client_offer_phase(
            cinst, 0, n,
            member=state["member"], priorities=state["priorities"],
            best_fac=state["best_fac"], has_offer=state["has_offer"],
        )
        _greedy_facility_open_phase(
            cinst, accepted, open_fraction, 0, m,
            is_open=state["is_open"], best_size=state["best_size"],
            success=state["success"],
        )
        served = _greedy_client_serve_phase(
            0, n,
            success=state["success"], best_fac=state["best_fac"],
            has_offer=state["has_offer"], assignment=state["assignment"],
            active=state["active"],
        )
        if ledger is not None:
            ledger.greedy_iteration(
                active_edges,
                int(state["member"].sum()),
                int(state["has_offer"].sum()),
                served,
                int(state["is_open"].sum()) - open_before,
            )
        if recorder is not None:
            _record_greedy_checkpoint(
                recorder, label, state["is_open"], state["assignment"]
            )
    if state["active"].any():
        if ledger is not None:
            ledger.greedy_force(int(state["active"].sum()))
        _greedy_force_compute_phase(
            cinst, 0, n,
            is_open=state["is_open"], active=state["active"],
            assignment=state["assignment"], forced_mask=state["forced_mask"],
            forced_target=state["forced_target"],
        )
        _greedy_force_apply_phase(
            0, n,
            is_open=state["is_open"], forced_mask=state["forced_mask"],
            forced_target=state["forced_target"],
        )
    return state["is_open"], state["assignment"]


def _dual_columnar_arrays(
    cinst: ColumnarInstance,
    params: TradeoffParameters,
    seed: int,
    policy: RoundingPolicy,
    recorder,
    ledger,
) -> tuple[np.ndarray, np.ndarray]:
    m, n = cinst.m, cinst.n
    pad = cinst.padded(0, m)
    rngs = spawn_node_rng_range(seed, 0, m)
    hook = _TEST_COLUMNAR_DUAL_ALPHA_RAISE_HOOK
    lo, hi, starts, lengths = _client_segments(cinst, 0, n)
    gamma = np.minimum.reduceat(cinst.cli_cost, starts)
    slack = 1e-12 * np.maximum(cinst.opening, params.eff_max)
    alphas = np.zeros(n, dtype=np.float64)
    frozen = np.zeros(n, dtype=bool)
    tight = np.zeros(m, dtype=bool)
    witness = np.zeros(cinst.num_edges, dtype=bool)
    target = np.zeros(n, dtype=np.int64)
    is_open = np.zeros(m, dtype=bool)
    assignment = np.zeros(n, dtype=np.int64)
    forced_mask = np.zeros(n, dtype=bool)
    client_deg = cinst.client_degrees
    for level in range(1, params.num_scales + 1):
        unfrozen = int((~frozen).sum()) if ledger is not None else 0
        unfrozen_edges = int(client_deg[~frozen].sum()) if ledger is not None else 0
        tight_before = int(tight.sum()) if ledger is not None else 0
        _dual_client_alpha_phase(
            0, n, params.threshold(level), hook, level,
            alphas=alphas, frozen=frozen, gamma=gamma,
        )
        _dual_facility_phase(
            cinst, pad, slack, 0, m, alphas=alphas, tight=tight, witness=witness
        )
        frozen_before = int(frozen.sum()) if ledger is not None else 0
        _dual_client_freeze_phase(cinst, 0, n, witness=witness, frozen=frozen)
        if ledger is not None:
            ledger.dual_level(
                unfrozen,
                unfrozen_edges,
                int(tight.sum()) - tight_before,
                int(frozen.sum()) - frozen_before,
            )
        if recorder is not None:
            _record_dual_level_checkpoint(
                recorder, level, cinst, alphas, frozen, witness, tight
            )
    if not frozen.all():
        j = int(np.flatnonzero(~frozen)[0])
        raise AlgorithmError(
            f"client {j} has no witness after the final level; "
            "this contradicts the ladder's terminal property"
        )
    _dual_client_select_phase(cinst, 0, n, witness=witness, target=target)
    _dual_facility_round_phase(
        cinst, pad, params, policy, rngs, 0, m,
        alphas=alphas, target=target, is_open=is_open,
    )
    if recorder is not None:
        _record_dual_rounding_checkpoint(recorder, is_open)
    _dual_join_compute_phase(
        cinst, 0, n,
        witness=witness, is_open=is_open, target=target,
        assignment=assignment, forced_mask=forced_mask,
    )
    _dual_join_apply_phase(
        0, n, forced_mask=forced_mask, target=target, is_open=is_open
    )
    if ledger is not None:
        ledger.dual_rounding(
            n, int(np.diff(cinst.fac_ptr)[is_open].sum()), n
        )
    return is_open, assignment


# ----------------------------------------------------------------------
# Sharded execution over shared memory
# ----------------------------------------------------------------------

_ALIGN = 64


def _shared_specs(m: int, n: int, num_edges: int, variant: Variant, shards: int):
    """Name -> (shape, dtype) for every shared array of one run."""
    specs: dict[str, tuple[tuple[int, ...], str]] = {
        "opening": ((m,), "f8"),
        "fac_ptr": ((m + 1,), "i8"),
        "g_fac": ((num_edges,), "i8"),
        "g_cli": ((num_edges,), "i8"),
        "g_cost": ((num_edges,), "f8"),
        "byc_cli": ((num_edges,), "i8"),
        "byc_cost": ((num_edges,), "f8"),
        "cli_ptr": ((n + 1,), "i8"),
        "cli_fac": ((num_edges,), "i8"),
        "cli_cost": ((num_edges,), "f8"),
        "cli_edge": ((num_edges,), "i8"),
        "is_open": ((m,), "?"),
    }
    if variant is Variant.GREEDY:
        specs.update(
            {
                "active": ((n,), "?"),
                "assignment": ((n,), "i8"),
                "priorities": ((m,), "f8"),
                "best_size": ((m,), "i8"),
                "success": ((m,), "?"),
                "member": ((num_edges,), "?"),
                "best_fac": ((n,), "i8"),
                "has_offer": ((n,), "?"),
                "forced_mask": ((n,), "?"),
                "forced_target": ((n,), "i8"),
                "accepted_partial": ((shards, m), "i8"),
            }
        )
    else:
        specs.update(
            {
                "alphas": ((n,), "f8"),
                "frozen": ((n,), "?"),
                "tight": ((m,), "?"),
                "witness": ((num_edges,), "?"),
                "target": ((n,), "i8"),
                "assignment": ((n,), "i8"),
                "forced_mask": ((n,), "?"),
                "gamma": ((n,), "f8"),
            }
        )
    return specs


def _plane_layout(specs):
    """Byte offsets (aligned) and total size for one shared-memory block."""
    offsets: dict[str, int] = {}
    cursor = 0
    for name, (shape, dtype) in specs.items():
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        offsets[name] = cursor
        cursor += (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
    return offsets, max(cursor, 1)


def _plane_views(shm, specs, offsets):
    return {
        name: np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offsets[name])
        for name, (shape, dtype) in specs.items()
    }


def _split_ranges(total: int, shards: int) -> list[tuple[int, int]]:
    bounds = np.linspace(0, total, shards + 1).astype(np.int64)
    return [(int(bounds[s]), int(bounds[s + 1])) for s in range(shards)]


def _shard_instance(arrays, m: int, n: int, name: str) -> ColumnarInstance:
    """A :class:`ColumnarInstance` whose columns are shared-memory views."""
    return ColumnarInstance(
        m=m,
        n=n,
        opening=arrays["opening"],
        fac_ptr=arrays["fac_ptr"],
        g_fac=arrays["g_fac"],
        g_cli=arrays["g_cli"],
        g_cost=arrays["g_cost"],
        byc_cli=arrays["byc_cli"],
        byc_cost=arrays["byc_cost"],
        cli_ptr=arrays["cli_ptr"],
        cli_fac=arrays["cli_fac"],
        cli_cost=arrays["cli_cost"],
        cli_edge=arrays["cli_edge"],
        name=name,
    )


def _shard_worker(
    shm_name, specs, offsets, dims, variant_value, params, seed, policy,
    open_fraction, shard, ranges_f, ranges_c, barrier, errors,
) -> None:
    """One shard: runs the kernel schedule against the shared plane.

    The phase/barrier schedule here MUST mirror the parent's wait loop in
    :func:`_run_sharded` barrier for barrier — a mismatch deadlocks (and
    surfaces as a barrier timeout, not silent corruption).
    """
    shm = None
    try:
        m, n, num_edges = dims
        variant = Variant(variant_value)
        shm = shared_memory.SharedMemory(name=shm_name)
        arrays = _plane_views(shm, specs, offsets)
        cinst = _shard_instance(arrays, m, n, "shard")
        f0, f1 = ranges_f[shard]
        c0, c1 = ranges_c[shard]
        pad = cinst.padded(f0, f1)
        rngs = spawn_node_rng_range(seed, f0, f1)
        if variant is Variant.GREEDY:
            for iteration in range(1, params.num_iterations + 1):
                scale = params.scale_of_iteration(iteration)
                busy = arrays["active"].any()
                if busy:
                    _greedy_facility_phase(
                        cinst, pad, params, scale, rngs, f0, f1,
                        active=arrays["active"], is_open=arrays["is_open"],
                        priorities=arrays["priorities"],
                        best_size=arrays["best_size"], member=arrays["member"],
                    )
                barrier.wait(_BARRIER_TIMEOUT_S)
                if busy:
                    arrays["accepted_partial"][shard] = _greedy_client_offer_phase(
                        cinst, c0, c1,
                        member=arrays["member"], priorities=arrays["priorities"],
                        best_fac=arrays["best_fac"], has_offer=arrays["has_offer"],
                    )
                barrier.wait(_BARRIER_TIMEOUT_S)
                if busy:
                    accepted = arrays["accepted_partial"].sum(axis=0)
                    _greedy_facility_open_phase(
                        cinst, accepted, open_fraction, f0, f1,
                        is_open=arrays["is_open"], best_size=arrays["best_size"],
                        success=arrays["success"],
                    )
                barrier.wait(_BARRIER_TIMEOUT_S)
                if busy:
                    _greedy_client_serve_phase(
                        c0, c1,
                        success=arrays["success"], best_fac=arrays["best_fac"],
                        has_offer=arrays["has_offer"],
                        assignment=arrays["assignment"], active=arrays["active"],
                    )
                barrier.wait(_BARRIER_TIMEOUT_S)
                # Snapshot barrier: the parent reads iteration state (bit
                # ledger, flight-recorder checkpoint) between the barrier
                # above and this one, so the next iteration's writes to
                # ``member``/``priorities``/``best_size`` must not start
                # until every party passes here.
                barrier.wait(_BARRIER_TIMEOUT_S)
            if arrays["active"].any():
                _greedy_force_compute_phase(
                    cinst, c0, c1,
                    is_open=arrays["is_open"], active=arrays["active"],
                    assignment=arrays["assignment"],
                    forced_mask=arrays["forced_mask"],
                    forced_target=arrays["forced_target"],
                )
                barrier.wait(_BARRIER_TIMEOUT_S)
                _greedy_force_apply_phase(
                    c0, c1,
                    is_open=arrays["is_open"], forced_mask=arrays["forced_mask"],
                    forced_target=arrays["forced_target"],
                )
            else:
                barrier.wait(_BARRIER_TIMEOUT_S)
            barrier.wait(_BARRIER_TIMEOUT_S)
        else:
            slack = 1e-12 * np.maximum(cinst.opening, params.eff_max)
            for level in range(1, params.num_scales + 1):
                _dual_client_alpha_phase(
                    c0, c1, params.threshold(level), None, level,
                    alphas=arrays["alphas"], frozen=arrays["frozen"],
                    gamma=arrays["gamma"],
                )
                barrier.wait(_BARRIER_TIMEOUT_S)
                _dual_facility_phase(
                    cinst, pad, slack, f0, f1,
                    alphas=arrays["alphas"], tight=arrays["tight"],
                    witness=arrays["witness"],
                )
                barrier.wait(_BARRIER_TIMEOUT_S)
                _dual_client_freeze_phase(
                    cinst, c0, c1, witness=arrays["witness"], frozen=arrays["frozen"]
                )
                barrier.wait(_BARRIER_TIMEOUT_S)
                # Snapshot barrier: the parent reads level state (ledger
                # counts, ``dual:level:{l}`` checkpoint) between the
                # barrier above and this one, so the next level's alpha
                # writes must not start until every party passes here.
                barrier.wait(_BARRIER_TIMEOUT_S)
            # The parent validates the terminal ladder property between
            # these barriers and aborts the barrier on violation.
            barrier.wait(_BARRIER_TIMEOUT_S)
            _dual_client_select_phase(
                cinst, c0, c1, witness=arrays["witness"], target=arrays["target"]
            )
            barrier.wait(_BARRIER_TIMEOUT_S)
            _dual_facility_round_phase(
                cinst, pad, params, policy, rngs, f0, f1,
                alphas=arrays["alphas"], target=arrays["target"],
                is_open=arrays["is_open"],
            )
            barrier.wait(_BARRIER_TIMEOUT_S)
            _dual_join_compute_phase(
                cinst, c0, c1,
                witness=arrays["witness"], is_open=arrays["is_open"],
                target=arrays["target"], assignment=arrays["assignment"],
                forced_mask=arrays["forced_mask"],
            )
            barrier.wait(_BARRIER_TIMEOUT_S)
            _dual_join_apply_phase(
                c0, c1,
                forced_mask=arrays["forced_mask"], target=arrays["target"],
                is_open=arrays["is_open"],
            )
            barrier.wait(_BARRIER_TIMEOUT_S)
    except threading.BrokenBarrierError:
        # A peer shard (or the parent) aborted the barrier after queueing
        # its own error report; nothing useful to add from this side.
        pass
    except Exception as error:  # noqa: BLE001 — shipped to the parent
        import traceback

        try:
            errors.put((shard, f"{type(error).__name__}: {error}", traceback.format_exc()))
        finally:
            try:
                barrier.abort()
            except Exception:  # noqa: BLE001 — already broken is fine
                pass
    finally:
        if shm is not None:
            shm.close()


def _run_sharded(
    cinst: ColumnarInstance,
    variant: Variant,
    params: TradeoffParameters,
    seed: int,
    *,
    shards: int,
    open_fraction: float = 0.5,
    policy: RoundingPolicy | None = None,
    recorder=None,
    ledger=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Drive ``shards`` worker processes over one shared state plane.

    The parent participates in every barrier as a passive party. Each
    greedy iteration / dual level ends with an extra *snapshot* barrier:
    the parent reads the shared state for the flight recorder and the
    bit ledger between the last phase barrier and the snapshot barrier,
    while every worker is still parked — so recordings are taken at
    exactly the same protocol points as the in-process path and never
    overlap the next phase's writes.
    """
    m, n = cinst.m, cinst.n
    specs = _shared_specs(m, n, cinst.num_edges, variant, shards)
    offsets, total = _plane_layout(specs)
    shm = shared_memory.SharedMemory(create=True, size=total)
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    barrier = ctx.Barrier(shards + 1)
    errors = ctx.Queue()
    workers: list[Any] = []
    try:
        arrays = _plane_views(shm, specs, offsets)
        for name in (
            "opening", "fac_ptr", "g_fac", "g_cli", "g_cost", "byc_cli",
            "byc_cost", "cli_ptr", "cli_fac", "cli_cost", "cli_edge",
        ):
            arrays[name][...] = getattr(cinst, name)
        lo, hi, starts, _ = _client_segments(cinst, 0, n)
        if variant is Variant.GREEDY:
            arrays["active"][...] = True
            arrays["assignment"][...] = -1
        else:
            arrays["gamma"][...] = np.minimum.reduceat(cinst.cli_cost, starts)
        ranges_f = _split_ranges(m, shards)
        ranges_c = _split_ranges(n, shards)
        workers = [
            ctx.Process(
                target=_shard_worker,
                args=(
                    shm.name, specs, offsets, (m, n, cinst.num_edges),
                    variant.value, params, seed, policy, open_fraction,
                    shard, ranges_f, ranges_c, barrier, errors,
                ),
                daemon=True,
            )
            for shard in range(shards)
        ]
        for worker in workers:
            worker.start()
        client_deg = cinst.client_degrees

        def wait() -> None:
            barrier.wait(_BARRIER_TIMEOUT_S)

        if variant is Variant.GREEDY:
            active_remaining = n
            for iteration in range(1, params.num_iterations + 1):
                if ledger is not None:
                    busy = bool(arrays["active"].any())
                    active_edges = (
                        int(client_deg[arrays["active"]].sum()) if busy else 0
                    )
                    open_before = int(arrays["is_open"].sum())
                    assigned_before = int((arrays["assignment"] >= 0).sum())
                wait()
                wait()
                wait()
                wait()
                # Snapshot window: workers are parked at the iteration's
                # snapshot barrier, so the reads below cannot overlap the
                # next facility phase's writes.
                if ledger is not None:
                    if busy:
                        ledger.greedy_iteration(
                            active_edges,
                            int(arrays["member"].sum()),
                            int(arrays["has_offer"].sum()),
                            int((arrays["assignment"] >= 0).sum()) - assigned_before,
                            int(arrays["is_open"].sum()) - open_before,
                        )
                    else:
                        ledger.greedy_iteration(0, 0, 0, 0, 0)
                if recorder is not None:
                    _record_greedy_checkpoint(
                        recorder,
                        f"greedy:iter:{iteration}",
                        arrays["is_open"],
                        arrays["assignment"],
                    )
                active_remaining = int(arrays["active"].sum())
                wait()
            if ledger is not None and active_remaining:
                ledger.greedy_force(active_remaining)
            wait()
            wait()
        else:
            for level in range(1, params.num_scales + 1):
                if ledger is not None:
                    unfrozen = int((~arrays["frozen"]).sum())
                    unfrozen_edges = int(client_deg[~arrays["frozen"]].sum())
                    tight_before = int(arrays["tight"].sum())
                    frozen_before = int(arrays["frozen"].sum())
                wait()
                wait()
                wait()
                # Snapshot window: workers are parked at the level's
                # snapshot barrier, so the reads below cannot overlap the
                # next level's alpha-phase writes.
                if ledger is not None:
                    ledger.dual_level(
                        unfrozen,
                        unfrozen_edges,
                        int(arrays["tight"].sum()) - tight_before,
                        int(arrays["frozen"].sum()) - frozen_before,
                    )
                if recorder is not None:
                    _record_dual_level_checkpoint(
                        recorder, level, cinst,
                        arrays["alphas"], arrays["frozen"],
                        arrays["witness"], arrays["tight"],
                    )
                wait()
            if not arrays["frozen"].all():
                j = int(np.flatnonzero(~arrays["frozen"])[0])
                barrier.abort()
                raise AlgorithmError(
                    f"client {j} has no witness after the final level; "
                    "this contradicts the ladder's terminal property"
                )
            wait()
            wait()
            wait()
            if recorder is not None:
                _record_dual_rounding_checkpoint(recorder, arrays["is_open"])
            wait()
            wait()
            if ledger is not None:
                ledger.dual_rounding(
                    n,
                    int(np.diff(arrays["fac_ptr"])[arrays["is_open"]].sum()),
                    n,
                )
        for worker in workers:
            worker.join(timeout=_BARRIER_TIMEOUT_S)
        is_open = arrays["is_open"].copy()
        assignment = arrays["assignment"].copy()
        return is_open, assignment
    except (threading.BrokenBarrierError, multiprocessing.context.ProcessError) as broken:
        failures = []
        try:
            # A failing shard queues its report *before* aborting the
            # barrier, but the queue feeder thread may lag the abort —
            # allow a short grace period so details are not lost.
            while True:
                failures.append(errors.get(timeout=1.0))
        except Exception:  # noqa: BLE001 — best-effort drain
            pass
        detail = "; ".join(f"shard {s}: {msg}" for s, msg, _tb in failures)
        raise AlgorithmError(
            "sharded columnar run failed: " + (detail or "barrier broken")
        ) from broken
    finally:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        for worker in workers:
            worker.join(timeout=5)
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def _as_columnar(instance) -> ColumnarInstance:
    if isinstance(instance, ColumnarInstance):
        return instance
    return ColumnarInstance.from_instance(instance)


def emulate_greedy_columnar(
    instance,
    params: TradeoffParameters,
    seed: int,
    open_fraction: float = 0.5,
    recorder=None,
    *,
    shards: int = 1,
    ledger=None,
) -> tuple[set[int], dict[int, int]]:
    """Columnar scaled-parallel-greedy emulation (drop-in for the dense one).

    ``instance`` may be a dense :class:`FacilityLocationInstance` (it is
    converted) or a :class:`ColumnarInstance`. ``shards > 1`` runs the
    sharded shared-memory path; results are identical at every count.
    """
    cinst = _as_columnar(instance)
    if shards <= 1:
        is_open, assignment = _greedy_columnar_arrays(
            cinst, params, seed, open_fraction, recorder, ledger
        )
    else:
        is_open, assignment = _run_sharded(
            cinst, Variant.GREEDY, params, seed,
            shards=shards, open_fraction=open_fraction,
            recorder=recorder, ledger=ledger,
        )
    open_set = {int(i) for i in np.flatnonzero(is_open)}
    connected = {int(j): int(assignment[j]) for j in range(cinst.n)}
    return open_set, connected


def emulate_dual_columnar(
    instance,
    params: TradeoffParameters,
    seed: int,
    policy: RoundingPolicy,
    recorder=None,
    *,
    shards: int = 1,
    ledger=None,
) -> tuple[set[int], dict[int, int]]:
    """Columnar dual-ascent emulation (drop-in for the dense one)."""
    cinst = _as_columnar(instance)
    if shards <= 1:
        is_open, assignment = _dual_columnar_arrays(
            cinst, params, seed, policy, recorder, ledger
        )
    else:
        is_open, assignment = _run_sharded(
            cinst, Variant.DUAL_ASCENT, params, seed,
            shards=shards, policy=policy, recorder=recorder, ledger=ledger,
        )
    open_set = {int(i) for i in np.flatnonzero(is_open)}
    connected = {int(j): int(assignment[j]) for j in range(cinst.n)}
    return open_set, connected


@dataclass(frozen=True)
class ColumnarSolveResult:
    """Array-native outcome of one columnar solve (no per-client dicts).

    Built by :func:`solve_columnar` for instances far past what the dense
    result types can hold; ``cost``/``feasible`` are computed with
    vectorized reductions over the edge plane.
    """

    instance: ColumnarInstance
    params: TradeoffParameters
    variant: Variant
    open_mask: np.ndarray  # (m,) bool
    assignment: np.ndarray  # (n,) int64 — facility id per client
    cost: float
    wall_seconds: float = 0.0
    shards: int = 1
    metrics: Any = None  # NetworkMetrics from the bit ledger, if kept
    timeline: Any = None  # RoundTimeline from the bit ledger, if kept

    @property
    def open_facilities(self) -> frozenset[int]:
        """Open facility ids as a set (cheap: open sets are small)."""
        return frozenset(int(i) for i in np.flatnonzero(self.open_mask))

    @property
    def feasible(self) -> bool:
        """Whether every client is assigned to an open neighboring facility."""
        return bool(
            (self.assignment >= 0).all() and self.open_mask[self.assignment].all()
        )


def solve_columnar(
    instance,
    k: int,
    variant: Variant | str = Variant.GREEDY,
    seed: int = 0,
    rounding: RoundingPolicy | None = None,
    open_fraction: float = 0.5,
    shards: int = 1,
    recorder=None,
    with_ledger: bool = True,
) -> ColumnarSolveResult:
    """End-to-end columnar solve on the edge plane (million-node entry).

    Unlike :func:`~repro.core.sequential_sim.run_sequential` this never
    materializes dense matrices or per-client Python dicts: parameters
    come from :func:`columnar_parameters`, the solution stays in arrays,
    and the cost/feasibility checks are vectorized gathers. The modeled
    CONGEST traffic (``metrics``/``timeline``) comes from a
    :class:`repro.net.columnar.ColumnarBitLedger` unless disabled.
    """
    import time

    cinst = _as_columnar(instance)
    variant = Variant(variant)
    params = columnar_parameters(cinst, k, variant)
    ledger = None
    if with_ledger:
        from repro.net.columnar import ColumnarBitLedger

        ledger = ColumnarBitLedger(cinst.m, cinst.n, cinst.num_edges)
    start = time.perf_counter()
    if variant is Variant.GREEDY:
        if shards <= 1:
            is_open, assignment = _greedy_columnar_arrays(
                cinst, params, seed, open_fraction, recorder, ledger
            )
        else:
            is_open, assignment = _run_sharded(
                cinst, variant, params, seed,
                shards=shards, open_fraction=open_fraction,
                recorder=recorder, ledger=ledger,
            )
    else:
        policy = rounding or RoundingPolicy()
        if shards <= 1:
            is_open, assignment = _dual_columnar_arrays(
                cinst, params, seed, policy, recorder, ledger
            )
        else:
            is_open, assignment = _run_sharded(
                cinst, variant, params, seed,
                shards=shards, policy=policy, recorder=recorder, ledger=ledger,
            )
    wall = time.perf_counter() - start
    if recorder is not None:
        recorder.observe_final(
            {int(i) for i in np.flatnonzero(is_open)},
            {int(j): int(assignment[j]) for j in range(cinst.n)},
            cinst.m,
            cinst.n,
        )
    cost = _solution_cost(cinst, is_open, assignment)
    return ColumnarSolveResult(
        instance=cinst,
        params=params,
        variant=variant,
        open_mask=is_open,
        assignment=assignment,
        cost=cost,
        wall_seconds=wall,
        shards=max(1, int(shards)),
        metrics=ledger.to_metrics() if ledger is not None else None,
        timeline=ledger.to_timeline(cinst.num_nodes) if ledger is not None else None,
    )


def _solution_cost(cinst: ColumnarInstance, is_open, assignment) -> float:
    """Opening plus connection cost, via an edge-plane gather.

    Raises when a client is assigned to a facility it has no edge to —
    the same validation the dense solution type performs element-wise.
    """
    if (assignment < 0).any():
        j = int(np.flatnonzero(assignment < 0)[0])
        raise AlgorithmError(f"client {j} left unassigned by columnar solve")
    if not is_open[assignment].all():
        j = int(np.flatnonzero(~is_open[assignment])[0])
        raise AlgorithmError(
            f"client {j} assigned to closed facility {int(assignment[j])}"
        )
    # Find each client's edge to its assigned facility by binary search
    # within its (facility-sorted) client segment.
    lo = cinst.cli_ptr[:-1]
    hi = cinst.cli_ptr[1:]
    positions = np.empty(cinst.n, dtype=np.int64)
    for j in range(0, cinst.n, 1 << 20):
        stop = min(j + (1 << 20), cinst.n)
        block = slice(j, stop)
        # searchsorted per segment, vectorized over one block at a time to
        # bound the temporary: offsets into the global edge array.
        seg_lo = lo[block]
        seg_hi = hi[block]
        found = np.full(stop - j, -1, dtype=np.int64)
        width = int((seg_hi - seg_lo).max()) if stop > j else 0
        for slot in range(width):
            pos = seg_lo + slot
            in_range = pos < seg_hi
            match = in_range & (cinst.cli_fac[np.minimum(pos, cinst.num_edges - 1)] == assignment[block])
            found = np.where((found < 0) & match, pos, found)
        if (found < 0).any():
            bad = int(np.flatnonzero(found < 0)[0]) + j
            raise AlgorithmError(
                f"client {bad} assigned to non-neighbor facility "
                f"{int(assignment[bad])}"
            )
        positions[block] = found
    connection = float(np.sum(cinst.cli_cost[positions]))
    opening = float(np.sum(cinst.opening[is_open]))
    return opening + connection
