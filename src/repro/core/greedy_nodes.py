"""Node logic of the flagship trade-off algorithm (scaled parallel greedy).

The protocol realizes the PODC 2005 round/approximation trade-off as a
parallel greedy over *star efficiencies*, discretized into
``num_scales = ceil(sqrt(k))`` geometric thresholds with
``num_settle = ceil(k / num_scales)`` conflict-resolution iterations per
threshold (see :mod:`repro.core.parameters` and DESIGN.md).

Timeline
--------
Each proposal iteration ``t`` occupies four simulator rounds:

1. **ACTIVE** — every still-unconnected client broadcasts ``active`` to its
   neighbor facilities (and processes ``serve`` confirmations from the
   previous iteration).
2. **PROPOSE** — every facility computes, over the clients that announced
   themselves active, its largest star whose efficiency qualifies at the
   current threshold (for an already-open facility the opening cost is
   sunk, so only connection costs count). Qualifying facilities draw a
   random priority and send ``propose(priority)`` to their star clients.
3. **ACCEPT** — every active client accepts the highest-priority proposal
   it received (``accept``), ignoring the rest. The random priorities
   implement the classic parallel-greedy symmetry breaking: competing
   facilities win a random subset of the contested clients.
4. **DECIDE** — a closed facility opens when at least half of its star
   accepted (opening for fewer would blow its efficiency past the
   threshold); an open facility absorbs every accepter. Serving facilities
   confirm with ``serve``.

After all iterations a constant-round *force phase* guarantees
feasibility: leftover clients probe for open neighbors, join the cheapest
one, and failing that force their cheapest neighbor facility open. By the
last scale the threshold equals the maximum single-client star cost, so a
forced opening never exceeds what the final threshold already permits.

Every message carries at most one float plus a constant-size tag —
``O(log N)`` bits for polynomially-bounded costs.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.healing import (
    SelfHealingClientMixin,
    SelfHealingPolicy,
    answer_heal_messages,
)
from repro.core.parameters import TradeoffParameters
from repro.net.message import Message
from repro.net.node import Node, RoundContext

__all__ = [
    "GreedyFacilityNode",
    "GreedyClientNode",
    "schedule_length",
    "phase_of_round",
]

# Message kinds (constant-size protocol alphabet).
ACTIVE = "act"
PROPOSE = "prp"
ACCEPT = "acc"
SERVE = "srv"
PROBE = "prb"
OPEN_AD = "oad"
JOIN = "join"
FORCE = "frc"

_ROUNDS_PER_ITERATION = 4
_FORCE_PHASE_ROUNDS = 5


def schedule_length(params: TradeoffParameters) -> int:
    """Total simulator rounds the protocol runs for a given schedule."""
    return _ROUNDS_PER_ITERATION * params.num_iterations + _FORCE_PHASE_ROUNDS


def phase_of_round(params: TradeoffParameters, round_number: int) -> tuple[str, int]:
    """Map a simulator round to ``(phase_name, iteration)``.

    Phases are ``"active" | "propose" | "accept" | "decide"`` during the
    proposal iterations (with the 1-based iteration index) and
    ``"force1" .. "force5"`` afterwards (iteration 0). Rounds past the end
    of the schedule map to ``("done", 0)``.
    """
    iterations_end = _ROUNDS_PER_ITERATION * params.num_iterations
    if round_number <= iterations_end:
        iteration = 1 + (round_number - 1) // _ROUNDS_PER_ITERATION
        offset = (round_number - 1) % _ROUNDS_PER_ITERATION
        return ("active", "propose", "accept", "decide")[offset], iteration
    force_offset = round_number - iterations_end
    if force_offset <= _FORCE_PHASE_ROUNDS:
        return f"force{force_offset}", 0
    return "done", 0


class GreedyFacilityNode(Node):
    """A facility in the scaled parallel greedy protocol.

    Parameters
    ----------
    node_id:
        Simulator identifier (equal to the facility index).
    opening_cost:
        The facility's opening cost ``f_i``.
    client_costs:
        Mapping from *client node id* to connection cost ``c_ij`` — the
        facility's local input (it knows its incident edges, nothing else).
    params:
        The globally known schedule.
    """

    #: Fraction of the proposed star that must accept before a closed
    #: facility opens. 0.5 is the analyzed rule (opening on fewer would
    #: push the realized per-client cost past 2x the threshold); ablation
    #: E16 sweeps this knob from "open on any accept" (0) to "demand the
    #: full star" (1).
    open_fraction: float = 0.5

    def __init__(
        self,
        node_id: int,
        opening_cost: float,
        client_costs: Mapping[int, float],
        params: TradeoffParameters,
        open_fraction: float = 0.5,
    ) -> None:
        super().__init__(node_id)
        self.opening_cost = float(opening_cost)
        self.client_costs = dict(client_costs)
        self.params = params
        self.open_fraction = float(open_fraction)
        self.is_open = False
        self.opened_at_round: int | None = None
        self.was_forced = False
        self.was_healed = False
        self.served_clients: set[int] = set()
        self._proposed_star: tuple[int, ...] = ()

    def on_recover(self, ctx: RoundContext) -> None:
        """Volatile reset: the in-flight proposal did not survive the crash.

        Durable state — ``is_open``, ``served_clients`` — is journaled and
        kept; a recovered open facility still serves late joiners.
        """
        self._proposed_star = ()

    # -- protocol ------------------------------------------------------

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        phase, iteration = phase_of_round(self.params, ctx.round_number)
        if phase == "propose":
            self._propose(ctx, inbox, iteration)
        elif phase == "decide":
            self._decide(ctx, inbox)
        elif phase == "force2":
            self._answer_probes(ctx, inbox)
        elif phase == "force4":
            self._handle_join_and_force(ctx, inbox)
            self.finished = True
        elif phase in ("force5", "done"):
            # Under faults, retransmitted JOIN/FORCE can arrive late and
            # healing clients may escalate; keep answering both forever.
            self._handle_join_and_force(ctx, inbox)
            answer_heal_messages(self, ctx, inbox)
            self.finished = True
        # "active", "accept", "force1", "force3" are client-talk rounds.

    def _propose(
        self, ctx: RoundContext, inbox: list[Message], iteration: int
    ) -> None:
        """PROPOSE: find the largest qualifying star over active clients."""
        active = sorted(
            msg.sender for msg in inbox if msg.kind == ACTIVE
        )
        self._proposed_star = ()
        if not active:
            return
        scale = self.params.scale_of_iteration(iteration)
        star = self._best_star(active, scale)
        if not star:
            return
        self._proposed_star = star
        priority = float(self.rng.random())
        ctx.log("propose", scale=scale, size=len(star), priority=priority)
        ctx.count("protocol_proposals_total", variant="greedy")
        for client in star:
            ctx.send(client, PROPOSE, priority=priority)

    def _best_star(self, active: list[int], scale: int) -> tuple[int, ...]:
        """Largest prefix star qualifying at ``scale`` (empty if none).

        Clients are ordered by connection cost (node id as tie-break, so
        the computation is deterministic); for an open facility the opening
        cost is sunk and only the marginal connection costs count.
        """
        fee = 0.0 if self.is_open else self.opening_cost
        ordered = sorted(active, key=lambda j: (self.client_costs[j], j))
        total = fee
        best_size = 0
        for size, client in enumerate(ordered, start=1):
            total += self.client_costs[client]
            if self.params.qualifies(total / size, scale):
                best_size = size
        return tuple(ordered[:best_size])

    def _decide(self, ctx: RoundContext, inbox: list[Message]) -> None:
        """DECIDE: open when enough of the star accepted; confirm service."""
        accepted = sorted(
            msg.sender
            for msg in inbox
            if msg.kind == ACCEPT and msg.sender in set(self._proposed_star)
        )
        if not accepted:
            return
        if not self.is_open:
            needed = max(1, math.ceil(len(self._proposed_star) * self.open_fraction))
            if len(accepted) < needed:
                ctx.log("underfilled", got=len(accepted), needed=needed)
                return
            self.is_open = True
            self.opened_at_round = ctx.round_number
            ctx.log("open", accepted=len(accepted))
            ctx.count("protocol_opens_total", variant="greedy")
        for client in accepted:
            self.served_clients.add(client)
            ctx.send(client, SERVE)

    def _answer_probes(self, ctx: RoundContext, inbox: list[Message]) -> None:
        """FORCE phase: tell probing clients whether this facility is open."""
        if not self.is_open:
            return
        for msg in inbox:
            if msg.kind == PROBE:
                ctx.send(msg.sender, OPEN_AD)

    def _handle_join_and_force(self, ctx: RoundContext, inbox: list[Message]) -> None:
        """FORCE phase: serve joiners; open unconditionally when forced."""
        for msg in inbox:
            if msg.kind == JOIN and self.is_open:
                self.served_clients.add(msg.sender)
                ctx.send(msg.sender, SERVE)
            elif msg.kind == FORCE:
                if not self.is_open:
                    self.is_open = True
                    self.opened_at_round = ctx.round_number
                    self.was_forced = True
                    ctx.log("forced_open", by=msg.sender)
                    ctx.count("protocol_forced_opens_total", variant="greedy")
                self.served_clients.add(msg.sender)
                ctx.send(msg.sender, SERVE)


class GreedyClientNode(SelfHealingClientMixin, Node):
    """A client in the scaled parallel greedy protocol.

    Parameters
    ----------
    node_id:
        Simulator identifier (``num_facilities + client index``).
    facility_costs:
        Mapping from *facility node id* to connection cost — the client's
        local input.
    params:
        The globally known schedule.
    healing:
        Optional :class:`~repro.core.healing.SelfHealingPolicy`; when set,
        an unserved client keeps running past the schedule and escalates
        to its cheapest responsive facility instead of finishing unserved.
    """

    def __init__(
        self,
        node_id: int,
        facility_costs: Mapping[int, float],
        params: TradeoffParameters,
        healing: SelfHealingPolicy | None = None,
    ) -> None:
        super().__init__(node_id)
        self.facility_costs = dict(facility_costs)
        self.params = params
        self.connected_to: int | None = None
        self.connected_at_round: int | None = None
        self.failed_accepts = 0
        self.used_force = False
        self._accepted: int | None = None
        self._init_healing(healing)

    def on_recover(self, ctx: RoundContext) -> None:
        """Volatile reset: a pending accept did not survive the crash."""
        self._accepted = None

    @property
    def connected(self) -> bool:
        """Whether the client has a confirmed serving facility."""
        return self.connected_to is not None

    # -- protocol ------------------------------------------------------

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        phase, _iteration = phase_of_round(self.params, ctx.round_number)
        self._absorb_serves(ctx, inbox, phase)
        if self.connected:
            self.finished = True
            return
        if phase == "active":
            ctx.broadcast(ACTIVE)
        elif phase == "accept":
            self._accept_best(ctx, inbox)
        elif phase == "force1":
            ctx.broadcast(PROBE)
        elif phase == "force3":
            self._join_or_force(ctx, inbox)
        elif phase in ("force5", "done"):
            if self.healing is not None:
                # Self-healing: stay alive past the schedule and escalate
                # until served or out of attempts.
                self._heal_tick(ctx, inbox)
            else:
                # A lost SERVE (fault injection) can leave a client
                # unserved; it still terminates so the run can end and
                # report the gap.
                self.finished = True

    # A SERVE confirmation is due exactly two rounds after the client sent
    # ACCEPT (or JOIN/FORCE): at the next "active" round, at "force1" after
    # the last decide, or at "force5" after the force-phase handshake.
    _SERVE_DUE_PHASES = frozenset({"active", "force1", "force5"})

    def _absorb_serves(
        self, ctx: RoundContext, inbox: list[Message], phase: str
    ) -> None:
        """Process service confirmations; also count failed accepts."""
        serves = [msg.sender for msg in inbox if msg.kind == SERVE]
        if serves and not self.connected:
            # Multiple serves can only happen under faults; keep cheapest.
            best = min(serves, key=lambda i: (self.facility_costs[i], i))
            self.connected_to = best
            self.connected_at_round = ctx.round_number
            ctx.log("connected", facility=best)
            ctx.count("protocol_connects_total", variant="greedy")
        if phase in self._SERVE_DUE_PHASES:
            if not serves and self._accepted is not None:
                self.failed_accepts += 1
            self._accepted = None

    def _accept_best(self, ctx: RoundContext, inbox: list[Message]) -> None:
        """ACCEPT: take the highest-priority proposal, if any."""
        proposals = [msg for msg in inbox if msg.kind == PROPOSE]
        if not proposals:
            return
        best = max(proposals, key=lambda msg: (msg["priority"], -msg.sender))
        self._accepted = best.sender
        ctx.log("accept", facility=best.sender, offers=len(proposals))
        ctx.send(best.sender, ACCEPT)

    def _join_or_force(self, ctx: RoundContext, inbox: list[Message]) -> None:
        """FORCE phase: join the cheapest open neighbor, else force one open."""
        open_neighbors = [msg.sender for msg in inbox if msg.kind == OPEN_AD]
        if open_neighbors:
            target = min(open_neighbors, key=lambda i: (self.facility_costs[i], i))
            ctx.send(target, JOIN)
            ctx.log("join", facility=target)
        else:
            target = min(
                self.facility_costs, key=lambda i: (self.facility_costs[i], i)
            )
            self.used_force = True
            ctx.send(target, FORCE)
            ctx.log("force", facility=target)
        self._accepted = target
