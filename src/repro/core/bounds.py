"""Analytic guarantee formulas of the paper, as measurable envelopes.

The paper proves three complexity statements; each function here renders
one of them as a concrete curve that experiments compare measurements
against. Absolute constants are *not* specified by asymptotic bounds, so
each envelope takes an explicit constant that EXPERIMENTS.md pins down
empirically (a reproduction can check the *shape* — growth in ``k``, ``N``
and ``rho`` — not the constants of a theory paper).
"""

from __future__ import annotations

import math

from repro.exceptions import AlgorithmError

__all__ = [
    "approximation_envelope",
    "round_budget",
    "message_bits_envelope",
    "best_k_for_target_ratio",
]


def approximation_envelope(
    k: int,
    num_facilities: int,
    num_clients: int,
    rho: float,
    constant: float = 1.0,
) -> float:
    """The paper's ratio bound ``C * sqrt(k) * (m rho)^(1/sqrt k) * log(m+n)``.

    Parameters mirror the theorem statement; ``constant`` is the ``C``
    calibrated by experiment E1. The ``log`` is natural; any base change is
    absorbed into ``C``.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    if num_facilities < 1 or num_clients < 1:
        raise AlgorithmError("network must contain facilities and clients")
    if rho < 1:
        raise AlgorithmError(f"rho must be >= 1, got {rho}")
    n_total = num_facilities + num_clients
    sqrt_k = math.sqrt(k)
    spread = max(2.0, num_facilities * rho)
    return constant * sqrt_k * spread ** (1.0 / sqrt_k) * math.log(max(n_total, 2))


def round_budget(k: int, constant: float = 4.0, additive: float = 8.0) -> float:
    """The round-complexity bound ``c1 * k + c2``.

    The reconstruction uses 4 simulator rounds per proposal iteration and a
    constant-round finish, hence the defaults; experiment E3 verifies the
    measured rounds stay under this line for every ``k``.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    return constant * k + additive


def message_bits_envelope(num_nodes: int, constant: float = 16.0) -> float:
    """The CONGEST bound ``c * log2(N)`` bits per message.

    The default constant accommodates one 64-bit float plus tags for
    moderate ``N`` (a float models a polynomially-bounded cost, i.e.
    ``O(log N)`` bits in the theory model; DESIGN.md, message encoding
    note). Experiment E4 checks measured ``max_message_bits`` against this
    line as ``N`` grows.
    """
    if num_nodes < 2:
        raise AlgorithmError(f"need at least 2 nodes, got {num_nodes}")
    return constant * math.log2(num_nodes)


def best_k_for_target_ratio(
    target_ratio: float,
    num_facilities: int,
    num_clients: int,
    rho: float,
    constant: float = 1.0,
    k_max: int = 10_000,
) -> int:
    """Smallest ``k`` whose envelope is below ``target_ratio``.

    Utility for users who think in terms of "how many rounds do I need for
    a ratio of at most X". Returns ``k_max`` when even that does not reach
    the target (the envelope flattens at ``~ sqrt(k) log N``, so very small
    targets are unattainable; the function is monotone only down to the
    envelope's minimum and searches exhaustively for robustness).
    """
    if target_ratio <= 0:
        raise AlgorithmError(f"target ratio must be positive, got {target_ratio}")
    best = k_max
    best_value = math.inf
    for k in range(1, k_max + 1):
        value = approximation_envelope(
            k, num_facilities, num_clients, rho, constant=constant
        )
        if value < best_value:
            best_value = value
            best = k
        if value <= target_ratio:
            return k
    return best
