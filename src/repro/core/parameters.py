"""Derivation of the trade-off parameters from ``k``.

The paper's single knob is an integer ``k >= 1``: the algorithm must finish
in ``O(k)`` communication rounds and in exchange guarantees an
``O(sqrt(k) * (m rho)^(1/sqrt k) * log(m+n))`` approximation. This module
fixes how ``k`` is split between the two nested loops of the protocol:

* ``num_scales  = ceil(sqrt(k))`` — the efficiency thresholds form a
  geometric ladder with this many levels spanning the instance's whole
  *star-efficiency* range,
* ``num_settle  = ceil(k / num_scales)`` — how many proposal/accept
  iterations run inside each scale (conflict resolution between facilities
  competing for the same clients needs repetition),
* ``base = (eff_max / eff_min) ** (1 / num_scales)`` — the multiplicative
  gap between consecutive thresholds; this is the ``(m rho)^(1/sqrt k)``
  term of the bound (the star-efficiency spread is polynomially related to
  ``m * rho``; see :func:`efficiency_range`).

Every node can compute the whole schedule locally from ``k`` and the
instance-level coefficients (``eff_min``, ``eff_max``, ``N``), which the
paper assumes are known (knowledge of ``rho``; fidelity note 4 in
DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance

__all__ = ["TradeoffParameters", "efficiency_range"]

#: Relative tolerance for threshold comparisons: a star qualifies at a
#: threshold ``t`` when its efficiency is ``<= t * (1 + _THRESHOLD_RTOL)``.
#: Keeps the schedule robust to float rounding at scale boundaries.
_THRESHOLD_RTOL = 1e-9


def efficiency_range(instance: FacilityLocationInstance) -> tuple[float, float]:
    """Exact range ``(eff_min, eff_max)`` of star efficiencies.

    A *star* is a facility ``i`` together with a non-empty subset ``S`` of
    its adjacent clients; its efficiency is ``(f_i + sum_{j in S} c_ij) /
    |S|``. For a fixed facility the minimizing subset is always a prefix of
    its clients sorted by connection cost, so both extremes are computable
    in ``O(m n log n)``:

    * ``eff_min`` — the best efficiency of any star when every client is
      available (efficiencies only degrade as clients get covered),
    * ``eff_max`` — the worst single-client star ``f_i + c_ij`` (any larger
      star has efficiency at most this; see instance docs).

    ``eff_min`` is clamped to a tiny positive multiple of ``eff_max`` so the
    geometric ladder is well defined even when a zero-cost star exists
    (e.g. a free facility with free edges).
    """
    eff_min = math.inf
    eff_max = 0.0
    c = instance.connection_costs
    for i in range(instance.num_facilities):
        row = c[i]
        finite = row[np.isfinite(row)]
        if finite.size == 0:
            continue
        ordered = np.sort(finite)
        prefix = np.cumsum(ordered)
        sizes = np.arange(1, ordered.size + 1)
        ratios = (instance.opening_cost(i) + prefix) / sizes
        eff_min = min(eff_min, float(ratios.min()))
        eff_max = max(eff_max, float(instance.opening_cost(i) + ordered[-1]))
    if not math.isfinite(eff_min):
        raise AlgorithmError("instance has no facility-client edge")
    eff_max = max(eff_max, eff_min, 1e-300)
    eff_min = max(eff_min, eff_max * 1e-12)
    return eff_min, eff_max


@dataclass(frozen=True)
class TradeoffParameters:
    """The full schedule derived from ``k`` and the instance coefficients.

    Construct through :meth:`from_instance`. Instances of this class are
    shared, read-only, by every node of a run (they represent the globally
    known quantities of the model).
    """

    k: int
    num_scales: int
    num_settle: int
    base: float
    eff_min: float
    eff_max: float
    num_nodes: int

    @classmethod
    def from_instance(
        cls, instance: FacilityLocationInstance, k: int
    ) -> "TradeoffParameters":
        """Derive the schedule for trade-off parameter ``k`` on ``instance``."""
        if k < 1:
            raise AlgorithmError(f"trade-off parameter k must be >= 1, got {k}")
        eff_min, eff_max = efficiency_range(instance)
        num_scales = max(1, math.ceil(math.sqrt(k)))
        num_settle = max(1, math.ceil(k / num_scales))
        ratio = max(1.0, eff_max / eff_min)
        base = ratio ** (1.0 / num_scales)
        return cls(
            k=k,
            num_scales=num_scales,
            num_settle=num_settle,
            base=base,
            eff_min=eff_min,
            eff_max=eff_max,
            num_nodes=instance.num_nodes,
        )

    @classmethod
    def linear(
        cls, instance: FacilityLocationInstance, k: int
    ) -> "TradeoffParameters":
        """Alternative split used by the dual-ascent variant: ``k`` scales,
        one settle iteration each.

        The dual-ascent protocol has no intra-scale conflict resolution to
        repeat, so it spends the whole round budget on a finer threshold
        ladder (base ``(eff_max/eff_min)^(1/k)`` instead of ``^(1/sqrt k)``).
        """
        if k < 1:
            raise AlgorithmError(f"trade-off parameter k must be >= 1, got {k}")
        eff_min, eff_max = efficiency_range(instance)
        ratio = max(1.0, eff_max / eff_min)
        return cls(
            k=k,
            num_scales=k,
            num_settle=1,
            base=ratio ** (1.0 / k),
            eff_min=eff_min,
            eff_max=eff_max,
            num_nodes=instance.num_nodes,
        )

    @classmethod
    def custom(
        cls,
        instance: FacilityLocationInstance,
        num_scales: int,
        num_settle: int,
    ) -> "TradeoffParameters":
        """Pinned schedule for ablation experiments.

        Builds the ladder for an explicit scales/settle split instead of
        deriving it from ``k``; the recorded ``k`` is the total iteration
        count ``num_scales * num_settle``.
        """
        if num_scales < 1 or num_settle < 1:
            raise AlgorithmError(
                f"scales and settle must be >= 1, got {num_scales}x{num_settle}"
            )
        eff_min, eff_max = efficiency_range(instance)
        ratio = max(1.0, eff_max / eff_min)
        return cls(
            k=num_scales * num_settle,
            num_scales=num_scales,
            num_settle=num_settle,
            base=ratio ** (1.0 / num_scales),
            eff_min=eff_min,
            eff_max=eff_max,
            num_nodes=instance.num_nodes,
        )

    # ------------------------------------------------------------------
    # Schedule queries (all local, used identically by every node)
    # ------------------------------------------------------------------

    @property
    def num_iterations(self) -> int:
        """Total proposal iterations: ``num_scales * num_settle``."""
        return self.num_scales * self.num_settle

    def threshold(self, scale: int) -> float:
        """Efficiency threshold of scale ``scale`` (1-based).

        ``threshold(num_scales) == eff_max`` exactly, so by the last scale
        every single-client star qualifies — this is what makes the final
        fallback cheap.
        """
        if not 1 <= scale <= self.num_scales:
            raise AlgorithmError(
                f"scale must lie in [1, {self.num_scales}], got {scale}"
            )
        if scale == self.num_scales:
            return self.eff_max
        return self.eff_min * self.base**scale

    def scale_of_iteration(self, iteration: int) -> int:
        """Which scale a (1-based) iteration belongs to."""
        if not 1 <= iteration <= self.num_iterations:
            raise AlgorithmError(
                f"iteration must lie in [1, {self.num_iterations}], got {iteration}"
            )
        return 1 + (iteration - 1) // self.num_settle

    def qualifies(self, efficiency: float, scale: int) -> bool:
        """Threshold test with the schedule's float tolerance."""
        return efficiency <= self.threshold(scale) * (1.0 + _THRESHOLD_RTOL)

    def qualifies_many(self, efficiencies: np.ndarray, scale: int) -> np.ndarray:
        """Vectorized :meth:`qualifies` over an array of efficiencies.

        Elementwise identical to the scalar test (same threshold float,
        same tolerance factor), so batched engines reproduce the scalar
        engines' qualification decisions exactly.
        """
        return efficiencies <= self.threshold(scale) * (1.0 + _THRESHOLD_RTOL)

    def describe(self) -> str:
        """One-line human-readable summary for logs and tables."""
        return (
            f"k={self.k}: {self.num_scales} scales x {self.num_settle} settle, "
            f"base={self.base:.4g}, eff in [{self.eff_min:.4g}, {self.eff_max:.4g}]"
        )
