"""Fast sequential emulation of the distributed protocols.

This module re-implements both protocol variants *without* the message
simulator, drawing randomness from the exact same per-node streams the
simulator would hand out. Two purposes:

* **Cross-validation.** The emulation is an independent implementation of
  the protocol semantics; tests assert that, seed for seed, it produces the
  *identical* open set and assignment as the message-passing run. Agreement
  between two independently-written implementations is strong evidence that
  neither mis-encodes the protocol.
* **Scale.** Experiments that only need solution quality (not network
  metrics) run orders of magnitude faster here, which is what makes the
  scalability sweep E9 feasible in CI.

The emulation is faithful to the synchronous timing of the protocols: a
client served in iteration ``t`` stops being active from iteration ``t+1``
on, exactly as the one-round message delay dictates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.algorithm import Variant
from repro.core.dual_ascent_nodes import RoundingPolicy
from repro.core.parameters import TradeoffParameters
from repro.core.vectorized import (
    emulate_dual_vectorized,
    emulate_greedy_vectorized,
)
from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution
from repro.net.rng import spawn_node_rngs

__all__ = ["ENGINES", "SequentialRunResult", "run_sequential"]

#: Test-only perturbation hook for divergence-bisection coverage: when
#: set to a callable ``(level, client, value) -> value``, every dual
#: alpha raise in the *loop* engine passes through it. Tests monkeypatch
#: it to force a single mis-raise and assert that ``repro divergence``
#: pinpoints exactly that level and client. Never set in production.
_TEST_DUAL_ALPHA_RAISE_HOOK = None


@dataclass(frozen=True)
class SequentialRunResult:
    """Outcome of a sequential emulation run."""

    instance: FacilityLocationInstance
    params: TradeoffParameters
    variant: Variant
    solution: FacilityLocationSolution
    open_facilities: frozenset[int]
    assignment: dict[int, int]

    @property
    def cost(self) -> float:
        """Total cost of the produced solution."""
        return self.solution.cost


#: Available emulation engines: the numpy-batched hot path (default), the
#: pure-Python reference loops it is validated against bit for bit, and
#: the columnar CSR engine (optionally sharded across processes) that
#: scales the same semantics to million-node instances.
ENGINES = ("vectorized", "loop", "columnar")


def run_sequential(
    instance: FacilityLocationInstance,
    k: int,
    variant: Variant | str = Variant.GREEDY,
    seed: int = 0,
    rounding: RoundingPolicy | None = None,
    open_fraction: float = 0.5,
    engine: str = "vectorized",
    recorder=None,
    shards: int = 1,
    ledger=None,
) -> SequentialRunResult:
    """Emulate one protocol run; see module docstring for semantics.

    ``engine`` selects the implementation: ``"vectorized"`` (the default)
    batches every per-iteration update into numpy array operations over
    the instance's dense cost matrix, ``"loop"`` is the original
    pure-Python reference, and ``"columnar"`` runs the CSR edge-plane
    engine from :mod:`repro.core.columnar` (the only engine that honors
    ``shards > 1``, splitting the node range across worker processes over
    shared memory). All three are bit-identical — same open sets, same
    assignments, same coin flips — which the cross-validation tests
    assert on every instance family and both variants; the vectorized
    engine is an order of magnitude faster at scale and the columnar one
    extends that to instances dense matrices cannot hold.

    ``recorder`` (a :class:`repro.obs.recorder.FlightRecorder`) captures
    per-iteration/per-level state digests; in full-record mode the loop
    engine additionally logs the causal provenance DAG. ``None`` (the
    default) records nothing and changes no behavior. ``ledger`` (a
    :class:`repro.net.columnar.ColumnarBitLedger`, columnar engine only)
    accumulates modeled CONGEST traffic.
    """
    if engine not in ENGINES:
        raise AlgorithmError(
            f"unknown sequential engine {engine!r}; expected one of {ENGINES}"
        )
    if shards != 1 and engine != "columnar":
        raise AlgorithmError(
            f"engine {engine!r} does not shard; use engine='columnar' for shards > 1"
        )
    variant = Variant(variant)
    if variant is Variant.GREEDY:
        params = TradeoffParameters.from_instance(instance, k)
        if engine == "columnar":
            from repro.core.columnar import emulate_greedy_columnar

            open_set, assignment = emulate_greedy_columnar(
                instance,
                params,
                seed,
                open_fraction,
                recorder=recorder,
                shards=shards,
                ledger=ledger,
            )
        else:
            emulate = (
                emulate_greedy_vectorized if engine == "vectorized" else _emulate_greedy
            )
            open_set, assignment = emulate(
                instance, params, seed, open_fraction, recorder=recorder
            )
    else:
        params = TradeoffParameters.linear(instance, k)
        if engine == "columnar":
            from repro.core.columnar import emulate_dual_columnar

            open_set, assignment = emulate_dual_columnar(
                instance,
                params,
                seed,
                rounding or RoundingPolicy(),
                recorder=recorder,
                shards=shards,
                ledger=ledger,
            )
        else:
            emulate = (
                emulate_dual_vectorized if engine == "vectorized" else _emulate_dual
            )
            open_set, assignment = emulate(
                instance, params, seed, rounding or RoundingPolicy(), recorder=recorder
            )
    # Canonical (client-sorted) insertion order: solution costs sum the
    # assignment in dict order, so without this the two engines could
    # disagree in the last ulp despite producing the same mapping.
    assignment = dict(sorted(assignment.items()))
    if recorder is not None:
        recorder.observe_final(
            open_set,
            assignment,
            instance.num_facilities,
            instance.num_clients,
        )
    solution = FacilityLocationSolution(
        instance, open_set, assignment, validate=True
    )
    return SequentialRunResult(
        instance=instance,
        params=params,
        variant=variant,
        solution=solution,
        open_facilities=frozenset(open_set),
        assignment=assignment,
    )


# ----------------------------------------------------------------------
# Flagship: scaled parallel greedy
# ----------------------------------------------------------------------


def _record_greedy_state(recorder, label, is_open, connected, m, n) -> None:
    """Digest one end-of-iteration greedy state into ``recorder``."""
    recorder.observe(
        label,
        {
            "open": {f"facility:{i}": is_open[i] for i in range(m)},
            "assignment": {
                f"client:{j}": connected.get(j, -1) for j in range(n)
            },
        },
    )


def _emulate_greedy(
    instance: FacilityLocationInstance,
    params: TradeoffParameters,
    seed: int,
    open_fraction: float = 0.5,
    recorder=None,
) -> tuple[set[int], dict[int, int]]:
    m = instance.num_facilities
    n = instance.num_clients
    prov = recorder.provenance if recorder is not None else None
    opened_event: dict[int, int] = {}  # facility -> its open event id
    rngs = spawn_node_rngs(seed, m + n)  # facility i uses stream i
    opening = instance.opening_costs
    # Per-facility adjacency as (client, cost) sorted by (cost, node id),
    # matching GreedyFacilityNode._best_star ordering (node id = m + j).
    adjacency = [
        sorted(
            ((j, instance.connection_cost(i, j)) for j in instance.clients_of_facility(i)),
            key=lambda pair: (pair[1], m + pair[0]),
        )
        for i in range(m)
    ]
    client_neighbors = [instance.facilities_of_client(j) for j in range(n)]
    is_open = [False] * m
    connected: dict[int, int] = {}

    for iteration in range(1, params.num_iterations + 1):
        label = f"greedy:iter:{iteration}"
        scale = params.scale_of_iteration(iteration)
        active = [j for j in range(n) if j not in connected]
        if not active:
            # Facilities still observe no actives and draw no coins —
            # identical to the message run, where no ACTIVE arrives.
            if recorder is not None:
                _record_greedy_state(recorder, label, is_open, connected, m, n)
            continue
        active_set = set(active)
        proposals: dict[int, tuple[int, ...]] = {}
        priorities: dict[int, float] = {}
        propose_event: dict[int, int] = {}
        for i in range(m):
            star = _best_star(
                adjacency[i], active_set, opening[i], is_open[i], params, scale
            )
            if star:
                proposals[i] = star
                priorities[i] = float(rngs[i].random())
                if prov is not None:
                    propose_event[i] = prov.add(
                        "propose",
                        f"facility:{i}",
                        label,
                        iteration=iteration,
                        scale=scale,
                        star_size=len(star),
                        priority=priorities[i],
                    )
        accepts: dict[int, list[int]] = {i: [] for i in proposals}
        accept_event: dict[int, int] = {}
        for j in active:
            offers = [i for i, star in proposals.items() if j in star]
            if not offers:
                continue
            best = max(offers, key=lambda i: (priorities[i], -i))
            accepts[best].append(j)
            if prov is not None:
                accept_event[j] = prov.add(
                    "accept",
                    f"client:{j}",
                    label,
                    causes=(propose_event.get(best),),
                    facility=best,
                )
        for i, star in proposals.items():
            accepted = accepts[i]
            if not accepted:
                continue
            if not is_open[i]:
                needed = max(1, math.ceil(len(star) * open_fraction))
                if len(accepted) < needed:
                    continue
                is_open[i] = True
                if prov is not None:
                    opened_event[i] = prov.add(
                        "open",
                        f"facility:{i}",
                        label,
                        causes=tuple(accept_event.get(j) for j in accepted),
                        iteration=iteration,
                        accepted=len(accepted),
                    )
            for j in accepted:
                connected[j] = i
                if prov is not None:
                    prov.add(
                        "connect",
                        f"client:{j}",
                        label,
                        causes=(accept_event.get(j), opened_event.get(i)),
                        facility=i,
                    )
        if recorder is not None:
            _record_greedy_state(recorder, label, is_open, connected, m, n)

    # Force phase: leftover clients join the cheapest open neighbor, or
    # force their cheapest neighbor open. Decisions are made against the
    # open set as of the end of the iterations (matching the PROBE round),
    # while forced openings land simultaneously afterwards.
    leftovers = [j for j in range(n) if j not in connected]
    open_before = [i for i in range(m) if is_open[i]]
    open_before_set = set(open_before)
    for j in leftovers:
        open_neighbors = [i for i in client_neighbors[j] if i in open_before_set]
        if open_neighbors:
            target = min(
                open_neighbors,
                key=lambda i: (instance.connection_cost(i, j), i),
            )
            if prov is not None:
                join = prov.add(
                    "join",
                    f"client:{j}",
                    "greedy:force",
                    causes=(opened_event.get(target),),
                    facility=target,
                )
                prov.add(
                    "connect",
                    f"client:{j}",
                    "greedy:force",
                    causes=(join,),
                    facility=target,
                )
        else:
            target = min(
                client_neighbors[j],
                key=lambda i: (instance.connection_cost(i, j), i),
            )
            is_open[target] = True
            if prov is not None:
                force = prov.add(
                    "force", f"client:{j}", "greedy:force", facility=target
                )
                if target not in opened_event:
                    opened_event[target] = prov.add(
                        "forced_open",
                        f"facility:{target}",
                        "greedy:force",
                        causes=(force,),
                    )
                prov.add(
                    "connect",
                    f"client:{j}",
                    "greedy:force",
                    causes=(force, opened_event.get(target)),
                    facility=target,
                )
        connected[j] = target

    open_set = {i for i in range(m) if is_open[i]}
    return open_set, connected


def _best_star(
    adjacency: list[tuple[int, float]],
    active_set: set[int],
    opening_cost: float,
    already_open: bool,
    params: TradeoffParameters,
    scale: int,
) -> tuple[int, ...]:
    """Largest qualifying prefix star (mirrors the facility node logic)."""
    fee = 0.0 if already_open else float(opening_cost)
    total = fee
    best_size = 0
    ordered = [j for j, _cost in adjacency if j in active_set]
    costs = {j: cost for j, cost in adjacency}
    for size, j in enumerate(ordered, start=1):
        total += costs[j]
        if params.qualifies(total / size, scale):
            best_size = size
    return tuple(ordered[:best_size])


# ----------------------------------------------------------------------
# Variant: dual ascent
# ----------------------------------------------------------------------


def _record_dual_level(
    recorder, level, alphas, frozen, witnesses, tight, m, n
) -> None:
    """Digest one end-of-level dual-ascent state into ``recorder``."""
    recorder.observe(
        f"dual:level:{level}",
        {
            "alpha": {f"client:{j}": alphas[j] for j in range(n)},
            "frozen": {f"client:{j}": frozen[j] for j in range(n)},
            "witnesses": {
                f"client:{j}": sorted(witnesses[j]) for j in range(n)
            },
            "tight": {f"facility:{i}": tight[i] for i in range(m)},
        },
    )


def _emulate_dual(
    instance: FacilityLocationInstance,
    params: TradeoffParameters,
    seed: int,
    policy: RoundingPolicy,
    recorder=None,
) -> tuple[set[int], dict[int, int]]:
    m = instance.num_facilities
    n = instance.num_clients
    prov = recorder.provenance if recorder is not None else None
    hook = _TEST_DUAL_ALPHA_RAISE_HOOK
    alpha_event: dict[int, int] = {}  # client -> latest alpha_raise event
    tight_event: dict[int, int] = {}  # facility -> its tight event
    settle_event: dict[int, int] = {}  # client -> its settle event
    rngs = spawn_node_rngs(seed, m + n)
    gamma = [
        min(instance.connection_cost(i, j) for i in instance.facilities_of_client(j))
        for j in range(n)
    ]
    alphas = [0.0] * n
    frozen = [False] * n
    stored: list[dict[int, float]] = [dict() for _ in range(m)]
    tight = [False] * m
    witnesses: list[set[int]] = [set() for _ in range(n)]

    for level in range(1, params.num_scales + 1):
        label = f"dual:level:{level}"
        threshold = params.threshold(level)
        for j in range(n):
            if not frozen[j]:
                value = max(gamma[j], threshold)
                if hook is not None:
                    value = hook(level, j, value)
                if prov is not None and value != alphas[j]:
                    alpha_event[j] = prov.add(
                        "alpha_raise",
                        f"client:{j}",
                        label,
                        causes=(alpha_event.get(j),),
                        level=level,
                        alpha=value,
                    )
                alphas[j] = value
                for i in instance.facilities_of_client(j):
                    stored[i][j] = alphas[j]
        for i in range(m):
            if tight[i]:
                continue
            payment = sum(
                max(0.0, a - instance.connection_cost(i, j))
                for j, a in stored[i].items()
            )
            # Same ladder-scaled tolerance as DualFacilityNode (see its
            # comment on float cancellation with tiny opening costs).
            slack = 1e-12 * max(instance.opening_cost(i), params.eff_max)
            if payment >= instance.opening_cost(i) - slack:
                tight[i] = True
                if prov is not None:
                    tight_event[i] = prov.add(
                        "tight",
                        f"facility:{i}",
                        label,
                        causes=tuple(
                            alpha_event.get(j)
                            for j, a in stored[i].items()
                            if a > instance.connection_cost(i, j)
                        ),
                        level=level,
                        payment=payment,
                    )
        for j in range(n):
            for i in instance.facilities_of_client(j):
                if tight[i] and instance.connection_cost(i, j) <= alphas[j] * (
                    1 + 1e-12
                ):
                    witnesses[j].add(i)
                    if prov is not None and not frozen[j]:
                        settle_event[j] = prov.add(
                            "settle",
                            f"client:{j}",
                            label,
                            causes=(tight_event.get(i), alpha_event.get(j)),
                            witness=i,
                            level=level,
                        )
                    frozen[j] = True
        if recorder is not None:
            _record_dual_level(
                recorder, level, alphas, frozen, witnesses, tight, m, n
            )

    # Rounding phase.
    selections: dict[int, list[int]] = {}
    select_event: dict[int, int] = {}
    for j in range(n):
        if not witnesses[j]:
            raise AlgorithmError(
                f"client {j} has no witness after the final level; "
                "this contradicts the ladder's terminal property"
            )
        target = min(
            witnesses[j], key=lambda i: (instance.connection_cost(i, j), i)
        )
        selections.setdefault(target, []).append(j)
        if prov is not None:
            select_event[j] = prov.add(
                "select",
                f"client:{j}",
                "dual:rounding",
                causes=(settle_event.get(j),),
                facility=target,
            )

    is_open = [False] * m
    opened_event: dict[int, int] = {}
    for i in sorted(selections):
        selectors = selections[i]
        if policy.mode == "select_all":
            opens = True
        else:
            mass = sum(
                max(0.0, alphas[j] - instance.connection_cost(i, j))
                for j in selectors
            )
            scale = math.log(max(params.num_nodes, 2))
            probability = min(
                1.0,
                policy.c_round * scale * mass / max(instance.opening_cost(i), 1e-300),
            )
            opens = bool(rngs[i].random() < probability)
        if opens:
            is_open[i] = True
            if prov is not None:
                opened_event[i] = prov.add(
                    "open",
                    f"facility:{i}",
                    "dual:rounding",
                    causes=tuple(select_event.get(j) for j in selectors),
                    mode=policy.mode,
                    selectors=len(selectors),
                )
    if recorder is not None:
        recorder.observe(
            "dual:rounding",
            {"open": {f"facility:{i}": is_open[i] for i in range(m)}},
        )

    # Clients join the cheapest witness opened by the rounding coin flips;
    # leftovers force their cheapest witness open (deterministic fallback).
    # Join decisions see only the coin-opened set, matching the OPEN_AD
    # round of the message protocol.
    opened_by_coin = {i for i in range(m) if is_open[i]}
    connected: dict[int, int] = {}
    for j in range(n):
        open_witnesses = witnesses[j] & opened_by_coin
        if open_witnesses:
            target = min(
                open_witnesses, key=lambda i: (instance.connection_cost(i, j), i)
            )
            if prov is not None:
                join = prov.add(
                    "join",
                    f"client:{j}",
                    "dual:join",
                    causes=(settle_event.get(j), opened_event.get(target)),
                    facility=target,
                )
                prov.add(
                    "connect",
                    f"client:{j}",
                    "dual:join",
                    causes=(join,),
                    facility=target,
                )
        else:
            target = min(
                witnesses[j], key=lambda i: (instance.connection_cost(i, j), i)
            )
            is_open[target] = True
            if prov is not None:
                force = prov.add(
                    "force",
                    f"client:{j}",
                    "dual:join",
                    causes=(settle_event.get(j),),
                    facility=target,
                )
                if target not in opened_event:
                    opened_event[target] = prov.add(
                        "forced_open",
                        f"facility:{target}",
                        "dual:join",
                        causes=(force,),
                    )
                prov.add(
                    "connect",
                    f"client:{j}",
                    "dual:join",
                    causes=(force, opened_event.get(target)),
                    facility=target,
                )
        connected[j] = target

    open_set = {i for i in range(m) if is_open[i]}
    return open_set, connected
