"""Fast sequential emulation of the distributed protocols.

This module re-implements both protocol variants *without* the message
simulator, drawing randomness from the exact same per-node streams the
simulator would hand out. Two purposes:

* **Cross-validation.** The emulation is an independent implementation of
  the protocol semantics; tests assert that, seed for seed, it produces the
  *identical* open set and assignment as the message-passing run. Agreement
  between two independently-written implementations is strong evidence that
  neither mis-encodes the protocol.
* **Scale.** Experiments that only need solution quality (not network
  metrics) run orders of magnitude faster here, which is what makes the
  scalability sweep E9 feasible in CI.

The emulation is faithful to the synchronous timing of the protocols: a
client served in iteration ``t`` stops being active from iteration ``t+1``
on, exactly as the one-round message delay dictates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.algorithm import Variant
from repro.core.dual_ascent_nodes import RoundingPolicy
from repro.core.parameters import TradeoffParameters
from repro.core.vectorized import (
    emulate_dual_vectorized,
    emulate_greedy_vectorized,
)
from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution
from repro.net.rng import spawn_node_rngs

__all__ = ["ENGINES", "SequentialRunResult", "run_sequential"]


@dataclass(frozen=True)
class SequentialRunResult:
    """Outcome of a sequential emulation run."""

    instance: FacilityLocationInstance
    params: TradeoffParameters
    variant: Variant
    solution: FacilityLocationSolution
    open_facilities: frozenset[int]
    assignment: dict[int, int]

    @property
    def cost(self) -> float:
        """Total cost of the produced solution."""
        return self.solution.cost


#: Available emulation engines: the numpy-batched hot path (default) and
#: the pure-Python reference loops it is validated against bit for bit.
ENGINES = ("vectorized", "loop")


def run_sequential(
    instance: FacilityLocationInstance,
    k: int,
    variant: Variant | str = Variant.GREEDY,
    seed: int = 0,
    rounding: RoundingPolicy | None = None,
    open_fraction: float = 0.5,
    engine: str = "vectorized",
) -> SequentialRunResult:
    """Emulate one protocol run; see module docstring for semantics.

    ``engine`` selects the implementation: ``"vectorized"`` (the default)
    batches every per-iteration update into numpy array operations over
    the instance's dense cost matrix, ``"loop"`` is the original
    pure-Python reference. The two are bit-identical — same open sets,
    same assignments, same coin flips — which the cross-validation tests
    assert on every instance family and both variants; the vectorized
    engine is simply an order of magnitude faster at scale.
    """
    if engine not in ENGINES:
        raise AlgorithmError(
            f"unknown sequential engine {engine!r}; expected one of {ENGINES}"
        )
    variant = Variant(variant)
    if variant is Variant.GREEDY:
        params = TradeoffParameters.from_instance(instance, k)
        emulate = (
            emulate_greedy_vectorized if engine == "vectorized" else _emulate_greedy
        )
        open_set, assignment = emulate(instance, params, seed, open_fraction)
    else:
        params = TradeoffParameters.linear(instance, k)
        emulate = (
            emulate_dual_vectorized if engine == "vectorized" else _emulate_dual
        )
        open_set, assignment = emulate(
            instance, params, seed, rounding or RoundingPolicy()
        )
    # Canonical (client-sorted) insertion order: solution costs sum the
    # assignment in dict order, so without this the two engines could
    # disagree in the last ulp despite producing the same mapping.
    assignment = dict(sorted(assignment.items()))
    solution = FacilityLocationSolution(
        instance, open_set, assignment, validate=True
    )
    return SequentialRunResult(
        instance=instance,
        params=params,
        variant=variant,
        solution=solution,
        open_facilities=frozenset(open_set),
        assignment=assignment,
    )


# ----------------------------------------------------------------------
# Flagship: scaled parallel greedy
# ----------------------------------------------------------------------


def _emulate_greedy(
    instance: FacilityLocationInstance,
    params: TradeoffParameters,
    seed: int,
    open_fraction: float = 0.5,
) -> tuple[set[int], dict[int, int]]:
    m = instance.num_facilities
    n = instance.num_clients
    rngs = spawn_node_rngs(seed, m + n)  # facility i uses stream i
    opening = instance.opening_costs
    # Per-facility adjacency as (client, cost) sorted by (cost, node id),
    # matching GreedyFacilityNode._best_star ordering (node id = m + j).
    adjacency = [
        sorted(
            ((j, instance.connection_cost(i, j)) for j in instance.clients_of_facility(i)),
            key=lambda pair: (pair[1], m + pair[0]),
        )
        for i in range(m)
    ]
    client_neighbors = [instance.facilities_of_client(j) for j in range(n)]
    is_open = [False] * m
    connected: dict[int, int] = {}

    for iteration in range(1, params.num_iterations + 1):
        scale = params.scale_of_iteration(iteration)
        active = [j for j in range(n) if j not in connected]
        if not active:
            # Facilities still observe no actives and draw no coins —
            # identical to the message run, where no ACTIVE arrives.
            continue
        active_set = set(active)
        proposals: dict[int, tuple[int, ...]] = {}
        priorities: dict[int, float] = {}
        for i in range(m):
            star = _best_star(
                adjacency[i], active_set, opening[i], is_open[i], params, scale
            )
            if star:
                proposals[i] = star
                priorities[i] = float(rngs[i].random())
        accepts: dict[int, list[int]] = {i: [] for i in proposals}
        for j in active:
            offers = [i for i, star in proposals.items() if j in star]
            if not offers:
                continue
            best = max(offers, key=lambda i: (priorities[i], -i))
            accepts[best].append(j)
        for i, star in proposals.items():
            accepted = accepts[i]
            if not accepted:
                continue
            if not is_open[i]:
                needed = max(1, math.ceil(len(star) * open_fraction))
                if len(accepted) < needed:
                    continue
                is_open[i] = True
            for j in accepted:
                connected[j] = i

    # Force phase: leftover clients join the cheapest open neighbor, or
    # force their cheapest neighbor open. Decisions are made against the
    # open set as of the end of the iterations (matching the PROBE round),
    # while forced openings land simultaneously afterwards.
    leftovers = [j for j in range(n) if j not in connected]
    open_before = [i for i in range(m) if is_open[i]]
    open_before_set = set(open_before)
    for j in leftovers:
        open_neighbors = [i for i in client_neighbors[j] if i in open_before_set]
        if open_neighbors:
            target = min(
                open_neighbors,
                key=lambda i: (instance.connection_cost(i, j), i),
            )
        else:
            target = min(
                client_neighbors[j],
                key=lambda i: (instance.connection_cost(i, j), i),
            )
            is_open[target] = True
        connected[j] = target

    open_set = {i for i in range(m) if is_open[i]}
    return open_set, connected


def _best_star(
    adjacency: list[tuple[int, float]],
    active_set: set[int],
    opening_cost: float,
    already_open: bool,
    params: TradeoffParameters,
    scale: int,
) -> tuple[int, ...]:
    """Largest qualifying prefix star (mirrors the facility node logic)."""
    fee = 0.0 if already_open else float(opening_cost)
    total = fee
    best_size = 0
    ordered = [j for j, _cost in adjacency if j in active_set]
    costs = {j: cost for j, cost in adjacency}
    for size, j in enumerate(ordered, start=1):
        total += costs[j]
        if params.qualifies(total / size, scale):
            best_size = size
    return tuple(ordered[:best_size])


# ----------------------------------------------------------------------
# Variant: dual ascent
# ----------------------------------------------------------------------


def _emulate_dual(
    instance: FacilityLocationInstance,
    params: TradeoffParameters,
    seed: int,
    policy: RoundingPolicy,
) -> tuple[set[int], dict[int, int]]:
    m = instance.num_facilities
    n = instance.num_clients
    rngs = spawn_node_rngs(seed, m + n)
    gamma = [
        min(instance.connection_cost(i, j) for i in instance.facilities_of_client(j))
        for j in range(n)
    ]
    alphas = [0.0] * n
    frozen = [False] * n
    stored: list[dict[int, float]] = [dict() for _ in range(m)]
    tight = [False] * m
    witnesses: list[set[int]] = [set() for _ in range(n)]

    for level in range(1, params.num_scales + 1):
        threshold = params.threshold(level)
        for j in range(n):
            if not frozen[j]:
                alphas[j] = max(gamma[j], threshold)
                for i in instance.facilities_of_client(j):
                    stored[i][j] = alphas[j]
        for i in range(m):
            if tight[i]:
                continue
            payment = sum(
                max(0.0, a - instance.connection_cost(i, j))
                for j, a in stored[i].items()
            )
            # Same ladder-scaled tolerance as DualFacilityNode (see its
            # comment on float cancellation with tiny opening costs).
            slack = 1e-12 * max(instance.opening_cost(i), params.eff_max)
            if payment >= instance.opening_cost(i) - slack:
                tight[i] = True
        for j in range(n):
            for i in instance.facilities_of_client(j):
                if tight[i] and instance.connection_cost(i, j) <= alphas[j] * (
                    1 + 1e-12
                ):
                    witnesses[j].add(i)
                    frozen[j] = True

    # Rounding phase.
    selections: dict[int, list[int]] = {}
    for j in range(n):
        if not witnesses[j]:
            raise AlgorithmError(
                f"client {j} has no witness after the final level; "
                "this contradicts the ladder's terminal property"
            )
        target = min(
            witnesses[j], key=lambda i: (instance.connection_cost(i, j), i)
        )
        selections.setdefault(target, []).append(j)

    is_open = [False] * m
    for i in sorted(selections):
        selectors = selections[i]
        if policy.mode == "select_all":
            opens = True
        else:
            mass = sum(
                max(0.0, alphas[j] - instance.connection_cost(i, j))
                for j in selectors
            )
            scale = math.log(max(params.num_nodes, 2))
            probability = min(
                1.0,
                policy.c_round * scale * mass / max(instance.opening_cost(i), 1e-300),
            )
            opens = bool(rngs[i].random() < probability)
        if opens:
            is_open[i] = True

    # Clients join the cheapest witness opened by the rounding coin flips;
    # leftovers force their cheapest witness open (deterministic fallback).
    # Join decisions see only the coin-opened set, matching the OPEN_AD
    # round of the message protocol.
    opened_by_coin = {i for i in range(m) if is_open[i]}
    connected: dict[int, int] = {}
    for j in range(n):
        open_witnesses = witnesses[j] & opened_by_coin
        if open_witnesses:
            target = min(
                open_witnesses, key=lambda i: (instance.connection_cost(i, j), i)
            )
        else:
            target = min(
                witnesses[j], key=lambda i: (instance.connection_cost(i, j), i)
            )
            is_open[target] = True
        connected[j] = target

    open_set = {i for i in range(m) if is_open[i]}
    return open_set, connected
