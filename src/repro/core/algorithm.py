"""Orchestration of the distributed algorithm over the simulator.

:class:`DistributedFacilityLocation` wires an instance into the bipartite
communication topology, instantiates the protocol nodes for the chosen
variant, runs the synchronous simulator, and extracts a checked
:class:`~repro.fl.solution.FacilityLocationSolution` together with the
network metrics the paper's claims are stated in.

Two protocol variants are provided (experiment E10 compares them):

* ``Variant.GREEDY`` — the flagship scaled parallel greedy
  (:mod:`repro.core.greedy_nodes`), `ceil(sqrt(k))` efficiency scales with
  `ceil(k/sqrt(k))` settle iterations each;
* ``Variant.DUAL_ASCENT`` — the primal-dual mirror
  (:mod:`repro.core.dual_ascent_nodes`), ``k`` discrete budget levels plus
  a rounding phase whose policy is configurable (ablation E6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Sequence

from repro.core.dual_ascent_nodes import (
    DualClientNode,
    DualFacilityNode,
    RoundingPolicy,
    dual_schedule_length,
)
from repro.core.greedy_nodes import (
    GreedyClientNode,
    GreedyFacilityNode,
    schedule_length,
)
from repro.core.healing import SelfHealingPolicy, healing_round_budget
from repro.core.parameters import TradeoffParameters
from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution
from repro.net.faults import FaultPlan
from repro.net.metrics import NetworkMetrics
from repro.net.reliability import ReliabilityPolicy
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.net.trace import Trace
from repro.obs.probes import RoundProbe, SolutionQualityProbe
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Tracer
from repro.obs.timeline import RoundTimeline
from repro.obs.watchdogs import Watchdog

__all__ = [
    "Variant",
    "DistributedRunResult",
    "DistributedFacilityLocation",
    "solve_distributed",
]


class Variant(str, Enum):
    """Which protocol realizes the trade-off."""

    GREEDY = "greedy"
    DUAL_ASCENT = "dual_ascent"


@dataclass(frozen=True)
class DistributedRunResult:
    """Everything a run produces.

    ``solution`` is ``None`` only when fault injection left some client
    unserved (``unserved_clients`` lists them); fault-free runs always
    yield a validated feasible solution.

    ``timeline`` is the simulator's per-round telemetry (wall-clock,
    traffic, drops, node counts) and ``wall_seconds`` the total wall-clock
    of the run, so experiment records and manifests can report where time
    went without re-running.
    """

    instance: FacilityLocationInstance
    params: TradeoffParameters
    variant: Variant
    solution: FacilityLocationSolution | None
    open_facilities: frozenset[int]
    unserved_clients: tuple[int, ...]
    metrics: NetworkMetrics
    timeline: RoundTimeline = field(default_factory=RoundTimeline)
    wall_seconds: float = 0.0
    diagnostics: Mapping[str, Any] = field(default_factory=dict)

    @property
    def cost(self) -> float:
        """Solution cost; raises when the run left clients unserved."""
        if self.solution is None:
            raise AlgorithmError(
                f"run left {len(self.unserved_clients)} clients unserved "
                "(fault injection); no cost is defined"
            )
        return self.solution.cost

    @property
    def feasible(self) -> bool:
        """Whether the run produced a complete feasible solution."""
        return self.solution is not None

    def repaired_solution(self) -> FacilityLocationSolution:
        """Best-effort repair for faulty runs.

        Reassigns every client to its cheapest *open* facility; raises
        :class:`~repro.exceptions.InfeasibleSolutionError` when some client
        has no open neighbor at all (e.g. every neighbor crashed). Used by
        the fault experiment E11 to quantify repair cost.
        """
        if self.solution is not None:
            return self.solution
        return FacilityLocationSolution.from_open_set(
            self.instance, self.open_facilities
        )


class DistributedFacilityLocation:
    """Configured runner for the distributed trade-off algorithm.

    Parameters
    ----------
    instance:
        The facility-location instance to solve.
    k:
        Trade-off parameter: the protocol uses ``Theta(k)`` rounds.
    variant:
        Protocol variant (default: the flagship scaled parallel greedy).
    seed:
        Experiment seed; all node coin flips derive from it.
    rounding:
        Rounding policy (dual-ascent variant only).
    fault_plan:
        Optional fault injection.
    reliability:
        Optional :class:`~repro.net.reliability.ReliabilityPolicy` turning
        on the ACK/retransmit sublayer (zero overhead when no fault
        fires); see :mod:`repro.net.reliability`.
    healing:
        Optional :class:`~repro.core.healing.SelfHealingPolicy` letting
        unserved clients escalate to their cheapest responsive facility
        instead of finishing unserved; see :mod:`repro.core.healing`.
        The round budget grows by :func:`~repro.core.healing.healing_round_budget`.
    max_message_bits:
        Optional hard per-message bit budget (``None`` = measure only).
    trace:
        Optional event trace.
    params:
        Explicit schedule override (ablation experiments use this to pin
        non-standard scales/settle splits); when given, ``k`` is ignored.
    open_fraction:
        Opening rule of the flagship variant: fraction of a proposed star
        that must accept before a closed facility opens (default 0.5, the
        analyzed half-star rule; ablation E16).
    probes:
        Round probes forwarded to the simulator (see
        :mod:`repro.obs.probes`). ``probe_quality=True`` is the shorthand
        that attaches a :class:`~repro.obs.probes.SolutionQualityProbe`
        for this instance.
    watchdogs:
        Invariant watchdogs forwarded to the simulator (see
        :mod:`repro.obs.watchdogs`).
    registry:
        Optional metrics registry shared by the simulator and the nodes.
    probe_quality:
        Convenience flag: attach a quality probe (per-round dual sum,
        induced primal cost, anytime ratio against ``lower_bound``).
    lower_bound:
        Lower bound on the optimum (typically the LP value) used by the
        quality probe's ``ratio_vs_bound``.
    tracer:
        Optional :class:`~repro.obs.spans.Tracer` shared with the
        simulator; the run becomes an ``algo.run`` span with per-round
        children. Purely observational — never changes the output.
    recorder:
        Optional :class:`~repro.obs.recorder.FlightRecorder` shared with
        the simulator: every round is digested (node state + message
        plane), emulation-aligned checkpoints are emitted at the protocol
        alignment points, and the final open set/assignment is recorded.
        Purely observational — never changes the output.
    """

    def __init__(
        self,
        instance: FacilityLocationInstance,
        k: int,
        variant: Variant | str = Variant.GREEDY,
        seed: int = 0,
        rounding: RoundingPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        reliability: ReliabilityPolicy | None = None,
        healing: SelfHealingPolicy | None = None,
        max_message_bits: int | None = None,
        trace: Trace | None = None,
        params: TradeoffParameters | None = None,
        open_fraction: float = 0.5,
        probes: Sequence[RoundProbe] = (),
        watchdogs: Sequence[Watchdog] = (),
        registry: MetricsRegistry | None = None,
        probe_quality: bool = False,
        lower_bound: float | None = None,
        tracer: Tracer | None = None,
        recorder=None,
    ) -> None:
        self.instance = instance
        self.variant = Variant(variant)
        self.seed = int(seed)
        self.rounding = rounding or RoundingPolicy()
        self.fault_plan = fault_plan
        self.reliability = reliability
        self.healing = healing
        self.max_message_bits = max_message_bits
        self.trace = trace
        self.open_fraction = float(open_fraction)
        self.probes: tuple[RoundProbe, ...] = tuple(probes)
        if probe_quality:
            self.probes += (
                SolutionQualityProbe(instance, lower_bound=lower_bound),
            )
        self.watchdogs: tuple[Watchdog, ...] = tuple(watchdogs)
        self.registry = registry
        self.tracer = tracer
        if params is not None:
            self.params = params
        elif self.variant is Variant.GREEDY:
            self.params = TradeoffParameters.from_instance(instance, k)
        else:
            self.params = TradeoffParameters.linear(instance, k)
        self.recorder = recorder
        if recorder is not None:
            recorder.bind_simulator_phases(
                self.variant.value,
                self.params,
                instance.num_facilities,
                instance.num_clients,
            )

    # ------------------------------------------------------------------

    def build_simulator(self) -> Simulator:
        """Construct (but do not run) the simulator for this configuration."""
        instance = self.instance
        m = instance.num_facilities
        topology = Topology.from_instance(instance)
        nodes: list = []
        for i in range(m):
            client_costs = {
                m + j: instance.connection_cost(i, j)
                for j in instance.clients_of_facility(i)
            }
            if self.variant is Variant.GREEDY:
                nodes.append(
                    GreedyFacilityNode(
                        i,
                        instance.opening_cost(i),
                        client_costs,
                        self.params,
                        open_fraction=self.open_fraction,
                    )
                )
            else:
                nodes.append(
                    DualFacilityNode(
                        i,
                        instance.opening_cost(i),
                        client_costs,
                        self.params,
                        self.rounding,
                    )
                )
        for j in range(instance.num_clients):
            facility_costs = {
                i: instance.connection_cost(i, j)
                for i in instance.facilities_of_client(j)
            }
            if self.variant is Variant.GREEDY:
                nodes.append(
                    GreedyClientNode(
                        m + j, facility_costs, self.params, healing=self.healing
                    )
                )
            else:
                nodes.append(
                    DualClientNode(
                        m + j, facility_costs, self.params, healing=self.healing
                    )
                )
        return Simulator(
            topology,
            nodes,
            seed=self.seed,
            fault_plan=self.fault_plan,
            reliability=self.reliability,
            max_message_bits=self.max_message_bits,
            trace=self.trace,
            probes=self.probes,
            watchdogs=self.watchdogs,
            registry=self.registry,
            tracer=self.tracer,
            recorder=self.recorder,
        )

    def schedule_rounds(self) -> int:
        """Deterministic round budget of the configured protocol."""
        if self.variant is Variant.GREEDY:
            return schedule_length(self.params)
        return dual_schedule_length(self.params)

    def round_budget(self) -> int:
        """Total simulator round limit including resilience tails.

        The protocol schedule plus two rounds of delivery slack, plus the
        self-healing tail (probe/connect attempts) and the worst-case
        retransmission backoff chain when the respective policy is on.
        """
        budget = self.schedule_rounds() + 2
        if self.healing is not None:
            budget += healing_round_budget(self.healing)
        if self.reliability is not None:
            r = self.reliability
            budget += r.backoff * r.max_retries * (r.max_retries + 1) // 2 + 2
        return budget

    def run(self) -> DistributedRunResult:
        """Execute the protocol and extract the solution and metrics.

        With a tracer attached the whole execution becomes an
        ``algo.run`` span (variant/k/rounds annotated) whose children are
        the simulator's per-round ``sim.round`` spans.
        """
        simulator = self.build_simulator()
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                "algo.run",
                attributes={"variant": self.variant.value, "k": self.params.k},
            )
        start = time.perf_counter()
        try:
            metrics = simulator.run(max_rounds=self.round_budget())
        except Exception:
            if span is not None:
                span.end(status="error")
            raise
        wall_seconds = time.perf_counter() - start
        if span is not None:
            span.annotate(rounds=int(metrics.rounds)).end()
        return self._extract(simulator, metrics, wall_seconds)

    def run_truncated(self, max_rounds: int) -> DistributedRunResult:
        """Execute at most ``max_rounds`` rounds and extract the partial state.

        Models a network that stops early (anytime behaviour, experiment
        E14): the run is cut mid-schedule, so clients that had not yet
        received a SERVE confirmation are reported in
        ``unserved_clients`` and ``solution`` is ``None`` unless the cut
        happened after the force phase completed. Use
        :meth:`DistributedRunResult.repaired_solution` to quantify the
        quality of the partial open set (it raises while no open facility
        covers every client).
        """
        simulator = self.build_simulator()
        budget = min(max_rounds, self.round_budget())
        start = time.perf_counter()
        metrics = simulator.run(max_rounds=budget, allow_truncation=True)
        wall_seconds = time.perf_counter() - start
        return self._extract(simulator, metrics, wall_seconds)

    # ------------------------------------------------------------------

    def _extract(
        self, simulator: Simulator, metrics: NetworkMetrics, wall_seconds: float = 0.0
    ) -> DistributedRunResult:
        m = self.instance.num_facilities
        facilities = simulator.nodes[:m]
        clients = simulator.nodes[m:]
        open_set = frozenset(
            node.node_id
            for node in facilities
            if node.is_open and not node.crashed
        )
        assignment: dict[int, int] = {}
        unserved: list[int] = []
        for node in clients:
            j = node.node_id - m
            target = node.connected_to
            if target is None or target not in open_set:
                unserved.append(j)
            else:
                assignment[j] = target
        if self.recorder is not None:
            self.recorder.observe_final(
                open_set, assignment, m, self.instance.num_clients
            )
        solution: FacilityLocationSolution | None = None
        if not unserved:
            solution = FacilityLocationSolution(
                self.instance, open_set, assignment, validate=True
            )
        diagnostics = self._diagnostics(facilities, clients)
        if self.watchdogs:
            diagnostics["invariant_violations"] = sum(
                len(w.violations) for w in self.watchdogs
            )
        if self.healing is not None:
            diagnostics["num_healed_clients"] = sum(
                1
                for c in clients
                if getattr(c, "used_heal", False) and c.connected_to is not None
            )
            diagnostics["num_heal_gave_up"] = sum(
                1 for c in clients if getattr(c, "heal_gave_up", False)
            )
            diagnostics["num_healed_opens"] = sum(
                1 for f in facilities if getattr(f, "was_healed", False)
            )
        if self.reliability is not None:
            diagnostics["reliability"] = simulator.reliability_stats.summary()
        if simulator.fault_warnings:
            diagnostics["fault_plan_warnings"] = list(simulator.fault_warnings)
        return DistributedRunResult(
            instance=self.instance,
            params=self.params,
            variant=self.variant,
            solution=solution,
            open_facilities=open_set,
            unserved_clients=tuple(unserved),
            metrics=metrics,
            timeline=simulator.timeline,
            wall_seconds=wall_seconds,
            diagnostics=diagnostics,
        )

    def _diagnostics(self, facilities, clients) -> dict[str, Any]:
        """Protocol-level counters used by tests and experiment tables."""
        diagnostics: dict[str, Any] = {
            "num_open": sum(1 for f in facilities if f.is_open),
            "num_forced_opens": sum(
                1 for f in facilities if getattr(f, "was_forced", False)
            ),
            "num_forced_clients": sum(
                1 for c in clients if getattr(c, "used_force", False)
            ),
        }
        if self.variant is Variant.GREEDY:
            diagnostics["total_failed_accepts"] = sum(
                c.failed_accepts for c in clients
            )
        else:
            diagnostics["num_tight"] = sum(1 for f in facilities if f.is_tight)
            diagnostics["mean_witnesses"] = (
                sum(len(c.witnesses) for c in clients) / max(len(clients), 1)
            )
        return diagnostics


def solve_distributed(
    instance: FacilityLocationInstance,
    k: int,
    variant: Variant | str = Variant.GREEDY,
    seed: int = 0,
    **kwargs: Any,
) -> DistributedRunResult:
    """One-call convenience wrapper around :class:`DistributedFacilityLocation`."""
    return DistributedFacilityLocation(
        instance, k, variant=variant, seed=seed, **kwargs
    ).run()
