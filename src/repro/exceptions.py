"""Exception hierarchy for the repro package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to distinguish the precise failure
mode when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class InvalidInstanceError(ReproError):
    """A facility-location instance violates a structural invariant.

    Examples: negative opening cost, connection-cost matrix of the wrong
    shape, a client with no reachable facility, or non-finite cost values.
    """


class InfeasibleSolutionError(ReproError):
    """A solution fails feasibility validation.

    Raised when a client is assigned to a closed facility, assigned to a
    facility it has no edge to, or left unassigned.
    """


class SimulationError(ReproError):
    """The distributed simulator reached an inconsistent state.

    Examples: a node sending to a non-neighbor, a message exceeding the
    configured bit budget when strict accounting is enabled, or the round
    limit being exhausted before the protocol terminated.
    """


class MessageSizeError(SimulationError):
    """A message exceeded the simulator's per-message bit budget."""


class NotANeighborError(SimulationError):
    """A node attempted to send a message to a node it has no link to."""


class RoundLimitExceededError(SimulationError):
    """The protocol did not terminate within the allowed number of rounds."""


class InvariantViolationError(SimulationError):
    """A runtime invariant watchdog detected a protocol violation.

    Raised only by *strict* watchdogs (see :mod:`repro.obs.watchdogs`);
    non-strict watchdogs record structured ``invariant_violation`` trace
    events instead of raising.
    """


class AlgorithmError(ReproError):
    """An algorithm received parameters outside its supported domain.

    Examples: a non-positive trade-off parameter ``k``, or running a
    metric-only baseline on a non-metric instance with checking enabled.
    """


class SolverError(ReproError):
    """An underlying numerical solver (e.g. the LP solver) failed."""
