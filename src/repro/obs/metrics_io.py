"""Shared file serialization of registry snapshots.

One schema, two producers: ``repro solve --metrics-out FILE`` dumps the
solve's registry without any service running, and the service's
``metrics`` wire op (``{"type": "metrics", "full": true}``) returns the
same payload over the socket — so ``repro top`` and offline tooling read
a single format regardless of where the numbers came from.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ReproError
from repro.obs.registry import MetricsRegistry

__all__ = [
    "SNAPSHOT_SCHEMA",
    "histogram_quantile",
    "snapshot_payload",
    "write_snapshot",
    "load_snapshot",
]

#: Schema tag stamped into every snapshot payload.
SNAPSHOT_SCHEMA = "repro.metrics.snapshot/v1"


def snapshot_payload(
    registry: MetricsRegistry, meta: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """Self-describing JSON payload of a registry's full state.

    ``meta`` (source command, instance name, ...) is merged under the
    ``"meta"`` key; the instrument dump is exactly
    :meth:`~repro.obs.registry.MetricsRegistry.snapshot`.
    """
    return {
        "schema": SNAPSHOT_SCHEMA,
        "generated_unix": time.time(),
        "meta": dict(meta or {}),
        "metrics": registry.snapshot(),
    }


def write_snapshot(
    registry: MetricsRegistry,
    path: str | Path,
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Write :func:`snapshot_payload` as pretty-printed JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(snapshot_payload(registry, meta), indent=2, sort_keys=True)
        + "\n"
    )
    return target


def histogram_quantile(
    histogram: Mapping[str, Any],
    q: float,
    labels: Mapping[str, Any] | None = None,
) -> float:
    """Re-derive a quantile offline from a snapshot's histogram dump.

    ``histogram`` is one instrument entry of a snapshot's ``"metrics"``
    mapping (``type == "histogram"``). The estimation mirrors
    :meth:`repro.obs.registry.Histogram.quantile` exactly — same linear
    interpolation inside the rank's bucket, same clamp to the observed
    ``[min, max]``, same overflow-to-max rule — so the offline answer
    equals what the live registry would have reported. Snapshots carry
    both bucket boundaries and raw per-bucket counts precisely to make
    this possible without the original process.
    """
    if not 0.0 < q <= 1.0:
        raise ReproError(f"quantile must be in (0, 1], got {q}")
    if histogram.get("type") != "histogram":
        raise ReproError(
            f"not a histogram dump (type={histogram.get('type')!r})"
        )
    bounds = [b for b in histogram.get("buckets", ()) if isinstance(b, (int, float))]
    wanted = {str(k): str(v) for k, v in (labels or {}).items()}
    series = next(
        (s for s in histogram.get("values", ()) if s.get("labels", {}) == wanted),
        None,
    )
    if series is None or not series.get("count"):
        return 0.0
    counts = series.get("bucket_counts")
    if counts is None:
        # Older snapshots: recover raw counts from the cumulative view.
        cumulative = series.get("cumulative_buckets", [])
        counts = [
            c - (cumulative[i - 1] if i else 0) for i, c in enumerate(cumulative)
        ]
    total = series["count"]
    minimum = series.get("min")
    maximum = series.get("max")
    rank = q * total
    running = 0
    for index, count in enumerate(counts):
        running += count
        if running >= rank:
            if index >= len(bounds):
                return float(maximum)
            upper = bounds[index]
            lower = bounds[index - 1] if index > 0 else 0.0
            fraction = (rank - (running - count)) / count if count else 0.0
            estimate = lower + (upper - lower) * fraction
            return float(min(max(estimate, minimum), maximum))
    return float(maximum)


def load_snapshot(path: str | Path) -> dict[str, Any]:
    """Read a snapshot file back, validating the schema tag."""
    source = Path(path)
    if not source.exists():
        raise ReproError(f"metrics snapshot not found: {source}")
    payload = json.loads(source.read_text())
    if not isinstance(payload, dict) or payload.get("schema") != SNAPSHOT_SCHEMA:
        raise ReproError(
            f"{source} is not a {SNAPSHOT_SCHEMA} snapshot "
            f"(schema={payload.get('schema') if isinstance(payload, dict) else None!r})"
        )
    return payload
