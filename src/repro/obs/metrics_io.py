"""Shared file serialization of registry snapshots.

One schema, two producers: ``repro solve --metrics-out FILE`` dumps the
solve's registry without any service running, and the service's
``metrics`` wire op (``{"type": "metrics", "full": true}``) returns the
same payload over the socket — so ``repro top`` and offline tooling read
a single format regardless of where the numbers came from.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ReproError
from repro.obs.registry import MetricsRegistry

__all__ = ["SNAPSHOT_SCHEMA", "snapshot_payload", "write_snapshot", "load_snapshot"]

#: Schema tag stamped into every snapshot payload.
SNAPSHOT_SCHEMA = "repro.metrics.snapshot/v1"


def snapshot_payload(
    registry: MetricsRegistry, meta: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """Self-describing JSON payload of a registry's full state.

    ``meta`` (source command, instance name, ...) is merged under the
    ``"meta"`` key; the instrument dump is exactly
    :meth:`~repro.obs.registry.MetricsRegistry.snapshot`.
    """
    return {
        "schema": SNAPSHOT_SCHEMA,
        "generated_unix": time.time(),
        "meta": dict(meta or {}),
        "metrics": registry.snapshot(),
    }


def write_snapshot(
    registry: MetricsRegistry,
    path: str | Path,
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Write :func:`snapshot_payload` as pretty-printed JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(snapshot_payload(registry, meta), indent=2, sort_keys=True)
        + "\n"
    )
    return target


def load_snapshot(path: str | Path) -> dict[str, Any]:
    """Read a snapshot file back, validating the schema tag."""
    source = Path(path)
    if not source.exists():
        raise ReproError(f"metrics snapshot not found: {source}")
    payload = json.loads(source.read_text())
    if not isinstance(payload, dict) or payload.get("schema") != SNAPSHOT_SCHEMA:
        raise ReproError(
            f"{source} is not a {SNAPSHOT_SCHEMA} snapshot "
            f"(schema={payload.get('schema') if isinstance(payload, dict) else None!r})"
        )
    return payload
