"""Trace sinks: where protocol events go when they must leave the process.

All sinks satisfy the :class:`repro.net.trace.Trace` interface, so any of
them can be handed to :class:`repro.net.simulator.Simulator` unchanged:

* :class:`JsonlTraceSink` — streams every event as one JSON line to a file
  (or any writer), flushing at each round boundary so a crashed or killed
  run still leaves a usable prefix on disk. This is the artifact format
  ``repro inspect`` reads back.
* :class:`RingBufferTrace` — keeps only the last ``capacity`` events, for
  long runs where an unbounded in-memory log would dominate memory.
* :class:`MultiTrace` — fans every event (and lifecycle hook) out to
  several traces, e.g. stream to disk *and* keep a ring buffer for
  post-run assertions.

JSONL line schema (one object per line, discriminated by ``type``):

``{"type": "event", "round": r, "node": n, "event": name, "data": {...}}``
    One protocol trace event.
``{"type": "round", "round_number": r, "wall_ms": ..., ...}``
    One :class:`repro.obs.timeline.RoundTimelineEntry`.
``{"type": "manifest", ...}``
    The :class:`repro.obs.manifest.RunRecord`, appended at end of run.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import Any, Iterator, Mapping, TextIO

from repro.exceptions import ReproError
from repro.net.trace import Trace, TraceEvent
from repro.obs.timeline import RoundTimelineEntry

__all__ = ["JsonlTraceSink", "RingBufferTrace", "MultiTrace", "event_to_dict"]


def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    """The JSONL representation of one trace event."""
    return {
        "type": "event",
        "round": event.round_number,
        "node": event.node_id,
        "event": event.event,
        "data": dict(event.data),
    }


class JsonlTraceSink(Trace):
    """Streaming JSONL trace writer.

    Parameters
    ----------
    target:
        A filesystem path (opened for writing, parent directories created)
        or any text writer with ``write``. When a writer is passed in, the
        caller keeps ownership: :meth:`close` flushes but does not close it.
    flush_on_round:
        Flush the underlying stream at every round boundary (default).
        Turn off for maximum throughput when a torn tail line on crash is
        acceptable.

    The sink retains no events in memory — ``len()`` reports the number of
    events written, and ``events()`` is always empty. Pair it with a
    :class:`RingBufferTrace` through :class:`MultiTrace` when both
    streaming output and in-memory assertions are needed.
    """

    def __init__(
        self,
        target: str | Path | TextIO,
        flush_on_round: bool = True,
    ) -> None:
        super().__init__()
        self.flush_on_round = flush_on_round
        self._count = 0
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: TextIO = path.open("w", encoding="utf-8")
            self._owns_stream = True
            self.path: Path | None = path
        else:
            self._stream = target
            self._owns_stream = False
            self.path = None
        self._closed = False

    def record(
        self, round_number: int, node_id: int, event: str, data: Mapping[str, Any]
    ) -> None:
        """Write one event as a JSON line."""
        self.write_json(
            event_to_dict(TraceEvent(round_number, node_id, event, dict(data)))
        )
        self._count += 1

    def write_json(self, obj: Mapping[str, Any]) -> None:
        """Write one arbitrary record as a JSON line (rounds, manifests).

        Raises :class:`~repro.exceptions.ReproError` once the sink is
        closed — a late event (a probe firing after teardown, a reused
        sink object) should fail with a diagnosis, not the underlying
        file object's bare ``ValueError: I/O operation on closed file``.
        """
        if self._closed:
            where = f" {self.path}" if self.path is not None else ""
            raise ReproError(
                f"JsonlTraceSink{where} is closed; events cannot be "
                "recorded after close()"
            )
        self._stream.write(json.dumps(obj, sort_keys=True) + "\n")

    def on_round_end(self, entry: RoundTimelineEntry) -> None:
        """Stream the round's telemetry and flush (flush-on-round)."""
        record = entry.to_dict()
        record["type"] = "round"
        self.write_json(record)
        if self.flush_on_round:
            self.flush()

    def flush(self) -> None:
        """Flush the underlying stream."""
        self._stream.flush()

    def close(self) -> None:
        """Flush (and fsync owned files) then close the stream.

        The fsync makes the artifact durable before the process can
        exit: a trace whose tail lives only in the page cache is exactly
        the trace you need after a crash. Caller-owned writers are only
        flushed — ownership (and durability policy) stays with the
        caller.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._stream.flush()
        except (ValueError, io.UnsupportedOperation):  # already-closed writer
            return
        if self._owns_stream:
            try:
                os.fsync(self._stream.fileno())
            except (OSError, ValueError, io.UnsupportedOperation):
                pass  # not a real file (StringIO wrapped in a path-less sink)
            self._stream.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- Trace interface: nothing is retained --------------------------

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(())

    def events(
        self, event: str | None = None, node_id: int | None = None
    ) -> list[TraceEvent]:
        """Always empty: streamed events are not retained in memory."""
        return []

    def render(self) -> str:
        return f"<JsonlTraceSink: {self._count} events streamed>"


class RingBufferTrace(Trace):
    """Bounded trace keeping only the most recent ``capacity`` events.

    For long runs the full event log is ``O(rounds * nodes)``; the ring
    buffer caps memory while preserving the tail, which is where
    termination bugs live. ``dropped_events`` counts evictions so the
    reader knows the window is partial.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        super().__init__()
        self.capacity = int(capacity)
        self.dropped_events = 0
        self._total = 0

    def record(
        self, round_number: int, node_id: int, event: str, data: Mapping[str, Any]
    ) -> None:
        """Append one event, evicting the oldest beyond capacity."""
        super().record(round_number, node_id, event, data)
        self._total += 1
        if len(self._events) > self.capacity:
            del self._events[0]
            self.dropped_events += 1

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (retained + evicted)."""
        return self._total


class MultiTrace(Trace):
    """Multiplexer: forwards every event and lifecycle hook to all children.

    ``len()``/iteration reflect the first child, which by convention is the
    one tests inspect (e.g. ``MultiTrace(Trace(), JsonlTraceSink(path))``).
    """

    def __init__(self, *children: Trace) -> None:
        if not children:
            raise ValueError("MultiTrace needs at least one child trace")
        super().__init__()
        self.children = tuple(children)

    @property
    def enabled(self) -> bool:
        return any(child.enabled for child in self.children)

    def record(
        self, round_number: int, node_id: int, event: str, data: Mapping[str, Any]
    ) -> None:
        for child in self.children:
            child.record(round_number, node_id, event, data)

    def on_round_end(self, entry: RoundTimelineEntry) -> None:
        for child in self.children:
            child.on_round_end(entry)

    def flush(self) -> None:
        """Flush every child that supports flushing, in child order."""
        for child in self.children:
            flush = getattr(child, "flush", None)
            if callable(flush):
                flush()

    def close(self) -> None:
        """Close every child, in child order.

        A child whose ``close`` raises must not leave later siblings
        unflushed — a streaming sink after a failing one would otherwise
        lose its tail. Every child's ``close`` runs; the first exception
        is re-raised after the sweep.
        """
        first_error: BaseException | None = None
        for child in self.children:
            try:
                child.close()
            except BaseException as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error

    def __len__(self) -> int:
        return len(self.children[0])

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.children[0])

    def events(
        self, event: str | None = None, node_id: int | None = None
    ) -> list[TraceEvent]:
        return self.children[0].events(event=event, node_id=node_id)

    def render(self) -> str:
        return self.children[0].render()
