"""Deterministic flight recorder: Merkle-style digests of execution state.

Three engines claim to run the *same* protocol — the message-passing
:class:`~repro.net.simulator.Simulator`, the loop emulation oracle, and
the vectorized numpy engine — and the repo's correctness story rests on
them agreeing round for round, not just on final bytes. The recorder
turns that claim into an artifact: at every protocol checkpoint it
captures the full execution state (duals, open set, assignments, and for
the simulator the message plane by kind) as *leaves*, hashes them into
per-field digests, and hashes those into one checkpoint digest — a
two-level Merkle tree whose root (:meth:`FlightRecorder.final_digest`)
summarizes the entire run.

Because the tree keeps its leaves, :func:`diff_recordings` can *bisect*
a mismatch: first divergent checkpoint → field → leaf (node or message),
with both values — which is what ``repro divergence`` renders and what
the perf suites and the chaos harness use to localize engine mismatches
automatically.

Checkpoint labels are aligned across engines: the loop and vectorized
engines emit ``greedy:iter:<t>`` / ``dual:level:<l>`` / ``dual:rounding``
/ ``final``, and the simulator emits the *same* labels at the round where
its state provably coincides (end of each DECIDE round for greedy, end
of each FREEZE round and the rounding-decision round for dual ascent —
facility-side state leads the one-round SERVE delivery lag, so it is the
facility view that is compared). The simulator additionally emits
``sim:round:<r>`` checkpoints carrying its full per-round node state and
message plane; labels present in only one recording are reported but are
not divergences, so simulator recordings diff cleanly against emulation
recordings.

Recording is **zero-overhead when off**: every hook is guarded by a
single ``recorder is None`` check, and the service equivalence suite
proves byte-identical output with the flag absent.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.exceptions import ReproError
from repro.obs.provenance import ProvenanceLog

__all__ = [
    "RECORDING_SCHEMA",
    "Checkpoint",
    "DivergenceReport",
    "FlightRecorder",
    "canonical_value",
    "diff_recordings",
    "leaf_sort_key",
    "load_recording",
    "record_run",
    "replay_recording",
]

#: Schema tag of the recording JSON artifact.
RECORDING_SCHEMA = "repro.recording/v1"

#: Engines a recording can come from.
RECORDING_ENGINES = ("loop", "vectorized", "simulator", "columnar")


def canonical_value(value: Any) -> str:
    """Canonical string form of one leaf value.

    Floats go through ``repr``, which round-trips every finite double
    bit-exactly — two states digest equal iff they are equal to the last
    ulp. Numpy scalars are unwrapped via ``.item()`` first (``np.bool_``
    and ``np.int64`` are not JSON types and ``np.float64.__repr__``
    differs across numpy versions). Containers recurse; sets are sorted.
    """
    # Exact-type check, not isinstance: np.float64 *subclasses* float but
    # its repr ("np.float64(0.25)") differs from the plain float's.
    if hasattr(value, "item") and type(value) not in (bool, int, float, str):
        value = value.item()
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (set, frozenset)):
        value = sorted(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical_value(item) for item in value) + "]"
    raise ReproError(
        f"flight recorder cannot canonicalize {type(value).__name__} leaves; "
        "only scalars and containers of scalars are recordable"
    )


def _digest(text: str) -> str:
    """Short content hash (16 hex chars — plenty at checkpoint counts)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


_NATURAL = re.compile(r"(\d+)")


def leaf_sort_key(leaf: str) -> tuple:
    """Numeric-aware ordering so ``client:2`` sorts before ``client:10``."""
    return tuple(
        (0, int(token), "") if token.isdigit() else (1, 0, token)
        for token in _NATURAL.split(leaf)
    )


@dataclass(frozen=True)
class Checkpoint:
    """One digested state snapshot: a two-level Merkle node with leaves.

    ``fields`` maps field name (``"open"``, ``"alpha"``,
    ``"messages:alp"``, ...) to its leaves — leaf name (``"facility:3"``,
    ``"client:7"``, ``"0->12#0"``) to *canonical value string*. The
    leaves are kept so a digest mismatch can be bisected to the exact
    node and value; digests alone would only say "something differs".
    """

    label: str
    fields: Mapping[str, Mapping[str, str]]
    field_digests: Mapping[str, str]
    digest: str

    @classmethod
    def build(cls, label: str, fields: Mapping[str, Mapping[str, Any]]) -> "Checkpoint":
        """Canonicalize raw field/leaf values and hash them bottom-up."""
        canonical = {
            str(name): {
                str(leaf): canonical_value(value)
                for leaf, value in leaves.items()
            }
            for name, leaves in fields.items()
        }
        field_digests, digest = cls._hash(str(label), canonical)
        return cls(
            label=str(label),
            fields=canonical,
            field_digests=field_digests,
            digest=digest,
        )

    @staticmethod
    def _hash(
        label: str, canonical: Mapping[str, Mapping[str, str]]
    ) -> tuple[dict[str, str], str]:
        """Bottom-up digests over already-canonical leaf strings."""
        field_digests = {
            name: _digest(
                "\n".join(
                    f"{leaf}={value}" for leaf, value in sorted(leaves.items())
                )
            )
            for name, leaves in canonical.items()
        }
        digest = _digest(
            label
            + "\n"
            + "\n".join(
                f"{name}:{field_digests[name]}" for name in sorted(field_digests)
            )
        )
        return field_digests, digest

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (digests included for fast diffing)."""
        return {
            "label": self.label,
            "digest": self.digest,
            "field_digests": dict(self.field_digests),
            "fields": {name: dict(leaves) for name, leaves in self.fields.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Checkpoint":
        """Inverse of :meth:`to_dict`.

        Digests are *recomputed* from the stored leaves, never trusted:
        a hand-edited leaf therefore shifts this checkpoint's digest,
        fails the artifact's final-digest check in
        :meth:`FlightRecorder.from_payload`, and is rejected.
        """
        label = str(data.get("label", ""))
        fields = {
            str(name): {str(leaf): str(value) for leaf, value in leaves.items()}
            for name, leaves in data.get("fields", {}).items()
        }
        field_digests, digest = cls._hash(label, fields)
        return cls(
            label=label,
            fields=fields,
            field_digests=field_digests,
            digest=digest,
        )


class FlightRecorder:
    """Collects digested checkpoints (and optionally provenance) of one run.

    Parameters
    ----------
    engine:
        Which engine produced the recording (``"loop"``, ``"vectorized"``
        or ``"simulator"``) — recordings carry their origin so diffs are
        attributable.
    full:
        Also log the causal provenance DAG
        (:class:`~repro.obs.provenance.ProvenanceLog`). Only the loop
        engine populates it — it is the oracle with the global view; the
        digest plane covers every engine either way.
    config:
        Arbitrary JSON-safe run configuration embedded in the artifact;
        :func:`record_run` stores the full solve recipe (including the
        instance), which is what makes ``repro replay`` hermetic.
    """

    def __init__(
        self,
        engine: str,
        full: bool = False,
        config: Mapping[str, Any] | None = None,
    ) -> None:
        self.engine = str(engine)
        self.full = bool(full)
        self.config: dict[str, Any] = dict(config or {})
        self.checkpoints: list[Checkpoint] = []
        self.provenance: ProvenanceLog | None = (
            ProvenanceLog() if self.full else None
        )
        self._phases: tuple[str, Any, int, int] | None = None

    # ------------------------------------------------------------------
    # Observation API (engines call these)
    # ------------------------------------------------------------------

    def observe(self, label: str, fields: Mapping[str, Mapping[str, Any]]) -> None:
        """Digest one state snapshot under ``label``."""
        self.checkpoints.append(Checkpoint.build(label, fields))

    def observe_final(
        self,
        open_facilities: Iterable[int],
        assignment: Mapping[int, int],
        num_facilities: int,
        num_clients: int,
    ) -> None:
        """The canonical end-of-run checkpoint, identical for every engine."""
        open_set = set(open_facilities)
        self.observe(
            "final",
            {
                "open": {
                    f"facility:{i}": i in open_set for i in range(num_facilities)
                },
                "assignment": {
                    f"client:{j}": int(assignment.get(j, -1))
                    for j in range(num_clients)
                },
            },
        )

    def final_digest(self) -> str:
        """Merkle root over every checkpoint digest, in recording order."""
        return _digest(
            "\n".join(f"{c.label}:{c.digest}" for c in self.checkpoints)
        )

    # ------------------------------------------------------------------
    # Simulator integration
    # ------------------------------------------------------------------

    def bind_simulator_phases(
        self, variant: str, params: Any, num_facilities: int, num_clients: int
    ) -> None:
        """Teach the recorder the run's round schedule.

        Called by :class:`~repro.core.algorithm.DistributedFacilityLocation`
        before the run; without it :meth:`on_simulator_round` records only
        the raw ``sim:round:<r>`` plane, not the emulation-aligned labels.
        """
        self._phases = (str(variant), params, int(num_facilities), int(num_clients))

    def on_simulator_round(self, simulator: Any, round_number: int) -> None:
        """Record one simulator round: message plane + aligned state.

        The ``sim:round:<r>`` checkpoint carries the full per-round node
        state and every message submitted this round, keyed by kind —
        two simulator recordings bisect down to the first divergent
        message. When the round is a protocol alignment point (greedy
        DECIDE, dual FREEZE / rounding decision), the matching emulation
        label is also emitted so simulator and emulation recordings
        cross-diff.
        """
        fields: dict[str, dict[str, Any]] = {}
        occurrence: dict[tuple[int, int, str], int] = {}
        for message in simulator.pending_messages:
            key = (message.sender, message.receiver, message.kind)
            index = occurrence.get(key, 0)
            occurrence[key] = index + 1
            leaves = fields.setdefault(f"messages:{message.kind}", {})
            leaves[f"{message.sender}->{message.receiver}#{index}"] = [
                [name, message.payload[name]] for name in sorted(message.payload)
            ]
        if self._phases is not None:
            fields.update(self._node_state_fields(simulator.nodes))
        self.observe(f"sim:round:{round_number}", fields)
        if self._phases is None or round_number < 1:
            return
        variant, params, m, n = self._phases
        nodes = simulator.nodes
        if variant == "greedy":
            from repro.core.greedy_nodes import phase_of_round

            phase, iteration = phase_of_round(params, round_number)
            if phase == "decide":
                assignment: dict[int, int] = {}
                for i in range(m):
                    for client in sorted(nodes[i].served_clients):
                        assignment.setdefault(client - m, i)
                self.observe(
                    f"greedy:iter:{iteration}",
                    {
                        "open": {
                            f"facility:{i}": nodes[i].is_open for i in range(m)
                        },
                        "assignment": {
                            f"client:{j}": assignment.get(j, -1) for j in range(n)
                        },
                    },
                )
        else:
            from repro.core.dual_ascent_nodes import dual_phase_of_round

            phase, level = dual_phase_of_round(params, round_number)
            if phase == "freeze":
                self.observe(
                    f"dual:level:{level}",
                    {
                        "alpha": {
                            f"client:{j}": nodes[m + j].alpha for j in range(n)
                        },
                        "frozen": {
                            f"client:{j}": nodes[m + j].frozen for j in range(n)
                        },
                        "witnesses": {
                            f"client:{j}": sorted(nodes[m + j].witnesses)
                            for j in range(n)
                        },
                        "tight": {
                            f"facility:{i}": nodes[i].is_tight for i in range(m)
                        },
                    },
                )
            elif phase == "round2":
                self.observe(
                    "dual:rounding",
                    {
                        "open": {
                            f"facility:{i}": nodes[i].is_open for i in range(m)
                        }
                    },
                )

    def _node_state_fields(self, nodes: Any) -> dict[str, dict[str, Any]]:
        """Per-round node state of the ``sim:round:<r>`` plane."""
        variant, _params, m, n = self._phases  # type: ignore[misc]
        fields: dict[str, dict[str, Any]] = {
            "open": {f"facility:{i}": nodes[i].is_open for i in range(m)},
            "assignment": {
                f"client:{j}": (
                    -1
                    if nodes[m + j].connected_to is None
                    else nodes[m + j].connected_to
                )
                for j in range(n)
            },
        }
        if variant != "greedy":
            fields["alpha"] = {f"client:{j}": nodes[m + j].alpha for j in range(n)}
            fields["frozen"] = {
                f"client:{j}": nodes[m + j].frozen for j in range(n)
            }
            fields["tight"] = {
                f"facility:{i}": nodes[i].is_tight for i in range(m)
            }
        return fields

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe artifact: schema tag, config, checkpoints, provenance."""
        payload: dict[str, Any] = {
            "schema": RECORDING_SCHEMA,
            "engine": self.engine,
            "full": self.full,
            "config": dict(self.config),
            "final_digest": self.final_digest(),
            "checkpoints": [c.to_dict() for c in self.checkpoints],
        }
        if self.provenance is not None:
            payload["provenance"] = self.provenance.to_payload()
        return payload

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "FlightRecorder":
        """Inverse of :meth:`to_payload`; validates schema and Merkle root."""
        if data.get("schema") != RECORDING_SCHEMA:
            raise ReproError(
                f"not a flight recording (schema {data.get('schema')!r}, "
                f"expected {RECORDING_SCHEMA!r})"
            )
        recorder = cls(
            engine=str(data.get("engine", "?")),
            full=bool(data.get("full", False)),
            config=data.get("config", {}),
        )
        recorder.checkpoints = [
            Checkpoint.from_dict(item) for item in data.get("checkpoints", ())
        ]
        if recorder.provenance is not None:
            recorder.provenance = ProvenanceLog.from_payload(
                data.get("provenance", ())
            )
        stored = data.get("final_digest")
        if stored is not None and stored != recorder.final_digest():
            raise ReproError(
                "recording failed its Merkle-root check: stored final digest "
                f"{stored} != recomputed {recorder.final_digest()} "
                "(artifact corrupted or hand-edited)"
            )
        return recorder

    def write_json(self, path: str | Path) -> Path:
        """Write the recording artifact as pretty-printed JSON."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"
        )
        return target


def load_recording(path: str | Path) -> FlightRecorder:
    """Read a recording written by :meth:`FlightRecorder.write_json`."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot read recording {path}: {error}") from error
    if not isinstance(data, Mapping):
        raise ReproError(f"recording {path} is not a JSON object")
    return FlightRecorder.from_payload(data)


# ----------------------------------------------------------------------
# Diffing / divergence bisection
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DivergenceReport:
    """Outcome of :func:`diff_recordings`: identical, or bisected to a leaf.

    ``label``/``field``/``leaf`` name the *first* divergent checkpoint,
    the first differing field inside it, and the first differing leaf
    (numeric-aware order, so ``client:2`` is checked before
    ``client:10``); ``left_value``/``right_value`` are the canonical
    value strings on each side (``None`` = leaf absent on that side).
    Labels present in only one recording are inventoried in
    ``left_only``/``right_only`` but are not divergences — a simulator
    recording legitimately carries ``sim:round:*`` labels an emulation
    recording lacks.
    """

    identical: bool
    left_engine: str
    right_engine: str
    compared: int
    label: str | None = None
    field: str | None = None
    leaf: str | None = None
    left_value: str | None = None
    right_value: str | None = None
    left_only: tuple[str, ...] = ()
    right_only: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (``repro divergence --json``)."""
        return {
            "identical": self.identical,
            "left_engine": self.left_engine,
            "right_engine": self.right_engine,
            "compared": self.compared,
            "label": self.label,
            "field": self.field,
            "leaf": self.leaf,
            "left_value": self.left_value,
            "right_value": self.right_value,
            "left_only": list(self.left_only),
            "right_only": list(self.right_only),
        }

    def render(self) -> str:
        """Human-readable report (what ``repro divergence`` prints)."""
        if self.identical:
            lines = [
                f"recordings are digest-identical over {self.compared} "
                f"shared checkpoint(s) ({self.left_engine} vs {self.right_engine})"
            ]
        else:
            lines = [
                f"recordings DIVERGE ({self.left_engine} vs {self.right_engine}):",
                f"  first divergent checkpoint: {self.label}",
                f"  field: {self.field}",
                f"  leaf:  {self.leaf}",
                f"  left  ({self.left_engine}): "
                f"{'<absent>' if self.left_value is None else self.left_value}",
                f"  right ({self.right_engine}): "
                f"{'<absent>' if self.right_value is None else self.right_value}",
            ]
        if self.left_only:
            lines.append(
                f"  (left-only checkpoints: {len(self.left_only)}, "
                f"first: {self.left_only[0]})"
            )
        if self.right_only:
            lines.append(
                f"  (right-only checkpoints: {len(self.right_only)}, "
                f"first: {self.right_only[0]})"
            )
        return "\n".join(lines)


def diff_recordings(
    left: FlightRecorder, right: FlightRecorder
) -> DivergenceReport:
    """Compare two recordings; bisect the first mismatch to a single leaf.

    Shared labels are compared in the left recording's order (protocol
    order), so the reported divergence is the *earliest* protocol point
    at which the executions differ — everything after it is fallout.
    """
    right_by_label = {c.label: c for c in right.checkpoints}
    left_labels = {c.label for c in left.checkpoints}
    left_only = tuple(
        c.label for c in left.checkpoints if c.label not in right_by_label
    )
    right_only = tuple(
        c.label for c in right.checkpoints if c.label not in left_labels
    )
    compared = 0
    for checkpoint in left.checkpoints:
        other = right_by_label.get(checkpoint.label)
        if other is None:
            continue
        compared += 1
        if checkpoint.digest == other.digest:
            continue
        field_name, leaf, left_value, right_value = _bisect_checkpoint(
            checkpoint, other
        )
        return DivergenceReport(
            identical=False,
            left_engine=left.engine,
            right_engine=right.engine,
            compared=compared,
            label=checkpoint.label,
            field=field_name,
            leaf=leaf,
            left_value=left_value,
            right_value=right_value,
            left_only=left_only,
            right_only=right_only,
        )
    return DivergenceReport(
        identical=True,
        left_engine=left.engine,
        right_engine=right.engine,
        compared=compared,
        left_only=left_only,
        right_only=right_only,
    )


def _bisect_checkpoint(
    left: Checkpoint, right: Checkpoint
) -> tuple[str | None, str | None, str | None, str | None]:
    """Locate the first differing (field, leaf, value, value) of a mismatch."""
    for name in sorted(set(left.field_digests) | set(right.field_digests)):
        if left.field_digests.get(name) == right.field_digests.get(name):
            continue
        left_leaves = left.fields.get(name, {})
        right_leaves = right.fields.get(name, {})
        for leaf in sorted(
            set(left_leaves) | set(right_leaves), key=leaf_sort_key
        ):
            left_value = left_leaves.get(leaf)
            right_value = right_leaves.get(leaf)
            if left_value != right_value:
                return name, leaf, left_value, right_value
        return name, None, None, None
    return None, None, None, None


# ----------------------------------------------------------------------
# Recording / replaying whole runs
# ----------------------------------------------------------------------


def record_run(
    instance: Any,
    *,
    engine: str,
    k: int,
    variant: str = "greedy",
    seed: int = 0,
    rounding: str = "select_all",
    c_round: float = 1.0,
    open_fraction: float = 0.5,
    full: bool = False,
    shards: int = 1,
) -> FlightRecorder:
    """Run one solve under a flight recorder and return the recording.

    The full solve recipe — including the instance itself — is embedded
    in the recording's ``config``, which is what makes
    :func:`replay_recording` hermetic: the artifact alone suffices to
    re-run and digest-check the execution on any machine. ``shards``
    applies to the columnar engine only (and, by the sharding determinism
    contract, never changes the resulting digests — which replaying a
    ``shards=4`` recording at ``shards=1`` verifies for free).
    """
    from repro.core.dual_ascent_nodes import RoundingPolicy
    from repro.fl.io import instance_to_dict

    if engine not in RECORDING_ENGINES:
        raise ReproError(
            f"unknown recording engine {engine!r}; "
            f"expected one of {RECORDING_ENGINES}"
        )
    if full and engine != "loop":
        raise ReproError(
            "full-record mode (causal provenance) requires the loop engine; "
            f"got engine={engine!r}"
        )
    variant = str(getattr(variant, "value", variant))
    config = {
        "engine": engine,
        "k": int(k),
        "variant": variant,
        "seed": int(seed),
        "rounding": rounding,
        "c_round": float(c_round),
        "open_fraction": float(open_fraction),
        "full": bool(full),
        "instance": instance_to_dict(instance),
    }
    if int(shards) != 1:
        config["shards"] = int(shards)
    recorder = FlightRecorder(engine=engine, full=full, config=config)
    policy = RoundingPolicy(mode=rounding, c_round=c_round)
    if engine == "simulator":
        from repro.core.algorithm import solve_distributed

        solve_distributed(
            instance,
            k=k,
            variant=variant,
            seed=seed,
            rounding=policy,
            open_fraction=open_fraction,
            recorder=recorder,
        )
    else:
        from repro.core.sequential_sim import run_sequential

        run_sequential(
            instance,
            k=k,
            variant=variant,
            seed=seed,
            rounding=policy,
            open_fraction=open_fraction,
            engine=engine,
            recorder=recorder,
            shards=int(shards) if engine == "columnar" else 1,
        )
    return recorder


def replay_recording(
    recording: FlightRecorder, engine: str | None = None
) -> FlightRecorder:
    """Re-run a recording's embedded solve recipe; returns the new recording.

    ``engine`` overrides the recorded engine (the cross-engine check:
    replay a loop recording on the vectorized engine and diff). Raises
    :class:`~repro.exceptions.ReproError` when the recording embeds no
    instance (e.g. one produced through the service's ``record`` flag —
    re-request it instead).
    """
    config = recording.config
    if "instance" not in config:
        raise ReproError(
            "recording embeds no instance; it cannot be replayed hermetically"
        )
    from repro.fl.io import instance_from_dict

    instance = instance_from_dict(config["instance"])
    return record_run(
        instance,
        engine=engine or str(config.get("engine", recording.engine)),
        k=int(config.get("k", 9)),
        variant=str(config.get("variant", "greedy")),
        seed=int(config.get("seed", 0)),
        rounding=str(config.get("rounding", "select_all")),
        c_round=float(config.get("c_round", 1.0)),
        open_fraction=float(config.get("open_fraction", 0.5)),
        full=bool(config.get("full", False)),
        shards=int(config.get("shards", 1)),
    )
