"""Per-round telemetry: where the rounds, messages and wall-clock went.

:class:`repro.net.simulator.Simulator` appends one
:class:`RoundTimelineEntry` per executed round (plus an explicit round-0
entry for messages submitted during ``setup()``, which per-round
accounting would otherwise never see). The timeline serializes to plain
JSON dicts — the same objects the JSONL trace sink streams as
``{"type": "round", ...}`` lines — and renders as a fixed-width table for
terminals and docs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Iterator, Mapping

from repro.analysis.tables import render_table

__all__ = ["RoundTimelineEntry", "RoundTimeline"]


@dataclass(frozen=True)
class RoundTimelineEntry:
    """Telemetry for one synchronous round.

    ``round_number`` 0 is the setup phase: messages submitted from
    ``on_setup`` hooks are accounted there, with zero wall-clock attributed
    to message delivery (none happens before round 1).

    ``probe`` holds per-round convergence observations (dual sum, induced
    primal cost, anytime ratio, ...) when :class:`~repro.obs.probes.
    RoundProbe` instances are attached to the simulator; it is ``None`` —
    and absent from the JSONL representation — for unprobed runs.

    ``engine`` names the engine that produced the round (``"simulator"``,
    ``"loop"``, ``"vectorized"``) so traces from different engines stay
    attributable when diffed; like ``probe`` it is omitted from the JSONL
    representation when ``None``, keeping pre-existing traces byte-stable.
    """

    round_number: int
    wall_ms: float
    messages: int
    bits: int
    drops: int
    alive: int
    finished: int
    probe: Mapping[str, Any] | None = None
    engine: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (used by the JSONL trace format).

        ``probe`` and ``engine`` are omitted when ``None`` so traces
        without them keep the original schema byte-for-byte.
        """
        record = asdict(self)
        if record["probe"] is None:
            del record["probe"]
        if record["engine"] is None:
            del record["engine"]
        return record

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RoundTimelineEntry":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        probe = data.get("probe")
        engine = data.get("engine")
        return cls(
            round_number=int(data["round_number"]),
            wall_ms=float(data["wall_ms"]),
            messages=int(data["messages"]),
            bits=int(data["bits"]),
            drops=int(data["drops"]),
            alive=int(data["alive"]),
            finished=int(data["finished"]),
            probe=dict(probe) if probe is not None else None,
            engine=str(engine) if engine is not None else None,
        )


class RoundTimeline:
    """Append-only sequence of per-round telemetry entries."""

    def __init__(self, entries: list[RoundTimelineEntry] | None = None) -> None:
        self._entries: list[RoundTimelineEntry] = list(entries or [])

    def append(self, entry: RoundTimelineEntry) -> None:
        """Record one round's telemetry."""
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RoundTimelineEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> RoundTimelineEntry:
        return self._entries[index]

    @property
    def total_wall_ms(self) -> float:
        """Total wall-clock across all recorded rounds."""
        return sum(e.wall_ms for e in self._entries)

    @property
    def total_messages(self) -> int:
        """Total messages across all recorded rounds (including setup)."""
        return sum(e.messages for e in self._entries)

    def slowest(self, count: int = 5) -> list[RoundTimelineEntry]:
        """The ``count`` slowest rounds by wall-clock, slowest first."""
        return sorted(self._entries, key=lambda e: -e.wall_ms)[:count]

    def to_json(self) -> list[dict[str, Any]]:
        """JSON-serializable list of per-round dicts."""
        return [e.to_dict() for e in self._entries]

    @classmethod
    def from_json(cls, data: list[Mapping[str, Any]]) -> "RoundTimeline":
        """Rebuild a timeline from :meth:`to_json` output."""
        return cls([RoundTimelineEntry.from_dict(d) for d in data])

    def probe_fields(self) -> tuple[str, ...]:
        """Probe keys present in at least one entry, in canonical order.

        Canonically-known fields (:data:`repro.obs.probes.PROBE_FIELDS`)
        come first; any extra fields follow alphabetically.
        """
        from repro.obs.probes import PROBE_FIELDS

        seen: set[str] = set()
        for entry in self._entries:
            if entry.probe:
                seen.update(entry.probe)
        ordered = [f for f in PROBE_FIELDS if f in seen]
        ordered.extend(sorted(seen.difference(PROBE_FIELDS)))
        return tuple(ordered)

    def render(self, title: str = "per-round timeline") -> str:
        """Fixed-width table of the whole timeline.

        When convergence probes were attached, their fields (dual sum,
        induced primal cost, anytime ratio, ...) appear as extra columns.
        """
        probe_fields = self.probe_fields()
        headers = (
            "round", "wall_ms", "messages", "bits", "drops", "alive", "finished",
        ) + probe_fields
        rows = []
        for e in self._entries:
            row = [
                e.round_number, e.wall_ms, e.messages, e.bits, e.drops,
                e.alive, e.finished,
            ]
            probe = e.probe or {}
            for field in probe_fields:
                value = probe.get(field)
                row.append("-" if value is None else value)
            rows.append(tuple(row))
        return render_table(headers, rows, title=title)
