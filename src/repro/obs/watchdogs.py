"""Invariant watchdogs: runtime checks of what the protocol must never do.

A :class:`Watchdog` is attached to the simulator alongside probes and is
called at every round boundary. Unlike probes (which *measure*), watchdogs
*assert*: each one encodes an invariant of the algorithm or of the CONGEST
model, and on violation either records a structured
``invariant_violation`` trace event (default) or raises
:class:`~repro.exceptions.InvariantViolationError` (``strict=True`` —
useful in tests and CI, where a violated invariant should fail loudly).

Shipped watchdogs:

* :class:`FeasibilityWatchdog` — every *settled* client (one holding a
  SERVE confirmation) must point at a facility that is currently open,
  alive, and adjacent to it. Catches extraction/fault bugs where a client
  believes in a facility that never opened or crashed after confirming.
* :class:`DualMonotonicityWatchdog` — client dual budgets ``alpha_j`` may
  never decrease between rounds (the dual ascent only climbs). A decrease
  means the ladder arithmetic or the freeze logic broke.
* :class:`CongestWatchdog` — the largest message observed so far must stay
  under the ``O(log N)`` envelope of
  :func:`repro.core.bounds.message_bits_envelope`. Reports once per run
  (the first round in which the envelope is pierced).
* :class:`ServiceGuaranteeWatchdog` — a *finished*, alive client must not
  sit unserved while an alive facility is adjacent to it. Clients are
  legitimately unconnected mid-protocol, so the check only fires once a
  client has declared itself done, and a grace window after fault
  activity avoids blaming the protocol for a loss it is still healing
  from; the end-of-run :meth:`Watchdog.finalize` pass ignores the grace.


Like probes, watchdogs are strictly opt-in: a simulator constructed
without watchdogs never executes any watchdog code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.bounds import message_bits_envelope
from repro.exceptions import InvariantViolationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.simulator import Simulator
    from repro.obs.timeline import RoundTimelineEntry

__all__ = [
    "Watchdog",
    "FeasibilityWatchdog",
    "DualMonotonicityWatchdog",
    "CongestWatchdog",
    "ServiceGuaranteeWatchdog",
    "default_watchdogs",
]


class Watchdog:
    """Base class for round-boundary invariant checks.

    Subclasses override :meth:`check` and call :meth:`report` for every
    violation found. Violations accumulate in :attr:`violations` (plain
    dicts) regardless of strictness, so callers can assert on them after a
    run even without a trace attached.
    """

    #: Short machine-readable identifier used in violation records.
    name = "watchdog"

    def __init__(self, strict: bool = False) -> None:
        self.strict = bool(strict)
        self.violations: list[dict[str, Any]] = []

    def check(self, simulator: "Simulator", entry: "RoundTimelineEntry") -> None:
        """Inspect the simulator state after a round; report violations."""
        raise NotImplementedError

    def finalize(self, simulator: "Simulator") -> None:
        """End-of-run hook, called once on clean termination.

        Most invariants are per-round and need nothing here; override for
        checks that are only meaningful once the protocol has fully
        stopped (e.g. "no client may *end* the run unserved"). Not called
        on truncated runs — a cut-short protocol legitimately violates
        end-state invariants.
        """

    def report(
        self,
        simulator: "Simulator",
        round_number: int,
        node_id: int = -1,
        **data: Any,
    ) -> None:
        """Record one violation (trace event + local log; raise if strict)."""
        record = {
            "watchdog": self.name,
            "round": round_number,
            "node_id": node_id,
            **data,
        }
        self.violations.append(record)
        trace = simulator.trace
        if trace.enabled:
            trace.record(
                round_number,
                node_id,
                "invariant_violation",
                {"watchdog": self.name, **data},
            )
        if self.strict:
            detail = " ".join(f"{k}={v}" for k, v in data.items())
            raise InvariantViolationError(
                f"invariant {self.name!r} violated in round {round_number}: {detail}"
            )


class FeasibilityWatchdog(Watchdog):
    """Settled assignments must point at open, alive, adjacent facilities."""

    name = "feasibility"

    def check(self, simulator: "Simulator", entry: "RoundTimelineEntry") -> None:
        nodes = simulator.nodes
        for client in nodes:
            target = getattr(client, "connected_to", None)
            if target is None:
                continue
            facility = nodes[target]
            if not getattr(facility, "is_open", False):
                self.report(
                    simulator,
                    entry.round_number,
                    node_id=client.node_id,
                    reason="assigned_facility_not_open",
                    facility=target,
                )
            elif facility.crashed:
                self.report(
                    simulator,
                    entry.round_number,
                    node_id=client.node_id,
                    reason="assigned_facility_crashed",
                    facility=target,
                )
            elif target not in client.neighbors:
                self.report(
                    simulator,
                    entry.round_number,
                    node_id=client.node_id,
                    reason="assigned_facility_not_adjacent",
                    facility=target,
                )


class DualMonotonicityWatchdog(Watchdog):
    """Client dual budgets ``alpha_j`` may only go up."""

    name = "dual_monotonicity"

    #: Absolute slack for float noise in budget updates.
    tolerance = 1e-12

    def __init__(self, strict: bool = False) -> None:
        super().__init__(strict)
        self._last_alpha: dict[int, float] = {}

    def check(self, simulator: "Simulator", entry: "RoundTimelineEntry") -> None:
        for node in simulator.nodes:
            alpha = getattr(node, "alpha", None)
            if alpha is None:
                continue
            previous = self._last_alpha.get(node.node_id)
            if previous is not None and alpha < previous - self.tolerance:
                self.report(
                    simulator,
                    entry.round_number,
                    node_id=node.node_id,
                    reason="dual_budget_decreased",
                    previous=previous,
                    current=alpha,
                )
            self._last_alpha[node.node_id] = alpha


class CongestWatchdog(Watchdog):
    """``max_message_bits`` must stay under the ``O(log N)`` envelope.

    The effective budget is ``max(envelope, floor_bits)``: the message
    encoding charges a flat 64 bits per float (see
    :mod:`repro.net.message`), so on tiny networks the pure
    ``constant * log2(N)`` line dips below what a *single* legitimate
    payload costs and would false-positive. ``floor_bits`` (default 96:
    one float, a short kind tag, sign/length overhead) keeps the check
    meaningful at every size while still catching multi-value payloads.
    """

    name = "congest"

    def __init__(
        self,
        constant: float = 16.0,
        floor_bits: int = 96,
        strict: bool = False,
    ) -> None:
        super().__init__(strict)
        self.constant = float(constant)
        self.floor_bits = int(floor_bits)
        self._tripped = False

    def check(self, simulator: "Simulator", entry: "RoundTimelineEntry") -> None:
        if self._tripped:
            return
        budget = max(
            message_bits_envelope(
                max(simulator.topology.num_nodes, 2), constant=self.constant
            ),
            float(self.floor_bits),
        )
        observed = simulator.metrics.max_message_bits
        if observed > budget:
            self._tripped = True
            self.report(
                simulator,
                entry.round_number,
                reason="message_bits_over_envelope",
                observed_bits=observed,
                envelope_bits=budget,
            )


class ServiceGuaranteeWatchdog(Watchdog):
    """Finished, alive clients with a reachable facility must be served.

    ``grace`` rounds after the most recent fault activity (a drop, crash
    or recovery) the check stays quiet: reliable delivery and self-healing
    need a few rounds to repair a loss, and flagging mid-repair states
    would make every faulty run noisy. :meth:`finalize` re-runs the check
    without the grace, so a client that *ends* the run unserved is always
    reported. Strictness is per-instance as usual, but note that
    :func:`default_watchdogs` keeps this one non-strict even in strict
    mode: under heavy fault plans an unserved client is an expected
    outcome to *measure*, not an algorithm bug to crash on.
    """

    name = "service_guarantee"

    def __init__(self, grace: int = 8, strict: bool = False) -> None:
        super().__init__(strict)
        self.grace = int(grace)
        self._last_fault_round = -(10**9)

    def _unserved(self, simulator: "Simulator") -> list[int]:
        nodes = simulator.nodes
        flagged: list[int] = []
        for client in nodes:
            if not hasattr(client, "connected_to"):
                continue  # not a client node
            if client.crashed or not client.finished:
                continue
            if client.connected_to is not None:
                continue
            if getattr(client, "heal_gave_up", False):
                continue  # healing exhausted its attempts: recorded elsewhere
            has_candidate = any(
                getattr(nodes[f], "opening_cost", None) is not None
                and not nodes[f].crashed
                for f in client.neighbors
            )
            if has_candidate:
                flagged.append(client.node_id)
        return flagged

    def check(self, simulator: "Simulator", entry: "RoundTimelineEntry") -> None:
        if entry.drops or entry.alive < len(simulator.nodes):
            self._last_fault_round = entry.round_number
        if entry.round_number - self._last_fault_round < self.grace:
            return
        for node_id in self._unserved(simulator):
            self.report(
                simulator,
                entry.round_number,
                node_id=node_id,
                reason="finished_client_unserved",
            )

    def finalize(self, simulator: "Simulator") -> None:
        reported = {v.get("node_id") for v in self.violations}
        for node_id in self._unserved(simulator):
            if node_id in reported:
                continue
            self.report(
                simulator,
                simulator.current_round,
                node_id=node_id,
                reason="run_ended_with_client_unserved",
            )


def default_watchdogs(strict: bool = False) -> tuple[Watchdog, ...]:
    """The standard watchdog set.

    Feasibility, dual monotonicity and CONGEST honor ``strict``; the
    service guarantee stays report-only (see its docstring).
    """
    return (
        FeasibilityWatchdog(strict=strict),
        DualMonotonicityWatchdog(strict=strict),
        CongestWatchdog(strict=strict),
        ServiceGuaranteeWatchdog(strict=False),
    )
