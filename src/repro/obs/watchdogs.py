"""Invariant watchdogs: runtime checks of what the protocol must never do.

A :class:`Watchdog` is attached to the simulator alongside probes and is
called at every round boundary. Unlike probes (which *measure*), watchdogs
*assert*: each one encodes an invariant of the algorithm or of the CONGEST
model, and on violation either records a structured
``invariant_violation`` trace event (default) or raises
:class:`~repro.exceptions.InvariantViolationError` (``strict=True`` —
useful in tests and CI, where a violated invariant should fail loudly).

Shipped watchdogs:

* :class:`FeasibilityWatchdog` — every *settled* client (one holding a
  SERVE confirmation) must point at a facility that is currently open,
  alive, and adjacent to it. Catches extraction/fault bugs where a client
  believes in a facility that never opened or crashed after confirming.
* :class:`DualMonotonicityWatchdog` — client dual budgets ``alpha_j`` may
  never decrease between rounds (the dual ascent only climbs). A decrease
  means the ladder arithmetic or the freeze logic broke.
* :class:`CongestWatchdog` — the largest message observed so far must stay
  under the ``O(log N)`` envelope of
  :func:`repro.core.bounds.message_bits_envelope`. Reports once per run
  (the first round in which the envelope is pierced).

Like probes, watchdogs are strictly opt-in: a simulator constructed
without watchdogs never executes any watchdog code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.bounds import message_bits_envelope
from repro.exceptions import InvariantViolationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.simulator import Simulator
    from repro.obs.timeline import RoundTimelineEntry

__all__ = [
    "Watchdog",
    "FeasibilityWatchdog",
    "DualMonotonicityWatchdog",
    "CongestWatchdog",
    "default_watchdogs",
]


class Watchdog:
    """Base class for round-boundary invariant checks.

    Subclasses override :meth:`check` and call :meth:`report` for every
    violation found. Violations accumulate in :attr:`violations` (plain
    dicts) regardless of strictness, so callers can assert on them after a
    run even without a trace attached.
    """

    #: Short machine-readable identifier used in violation records.
    name = "watchdog"

    def __init__(self, strict: bool = False) -> None:
        self.strict = bool(strict)
        self.violations: list[dict[str, Any]] = []

    def check(self, simulator: "Simulator", entry: "RoundTimelineEntry") -> None:
        """Inspect the simulator state after a round; report violations."""
        raise NotImplementedError

    def report(
        self,
        simulator: "Simulator",
        round_number: int,
        node_id: int = -1,
        **data: Any,
    ) -> None:
        """Record one violation (trace event + local log; raise if strict)."""
        record = {"watchdog": self.name, "round": round_number, **data}
        self.violations.append(record)
        trace = simulator.trace
        if trace.enabled:
            trace.record(
                round_number,
                node_id,
                "invariant_violation",
                {"watchdog": self.name, **data},
            )
        if self.strict:
            detail = " ".join(f"{k}={v}" for k, v in data.items())
            raise InvariantViolationError(
                f"invariant {self.name!r} violated in round {round_number}: {detail}"
            )


class FeasibilityWatchdog(Watchdog):
    """Settled assignments must point at open, alive, adjacent facilities."""

    name = "feasibility"

    def check(self, simulator: "Simulator", entry: "RoundTimelineEntry") -> None:
        nodes = simulator.nodes
        for client in nodes:
            target = getattr(client, "connected_to", None)
            if target is None:
                continue
            facility = nodes[target]
            if not getattr(facility, "is_open", False):
                self.report(
                    simulator,
                    entry.round_number,
                    node_id=client.node_id,
                    reason="assigned_facility_not_open",
                    facility=target,
                )
            elif facility.crashed:
                self.report(
                    simulator,
                    entry.round_number,
                    node_id=client.node_id,
                    reason="assigned_facility_crashed",
                    facility=target,
                )
            elif target not in client.neighbors:
                self.report(
                    simulator,
                    entry.round_number,
                    node_id=client.node_id,
                    reason="assigned_facility_not_adjacent",
                    facility=target,
                )


class DualMonotonicityWatchdog(Watchdog):
    """Client dual budgets ``alpha_j`` may only go up."""

    name = "dual_monotonicity"

    #: Absolute slack for float noise in budget updates.
    tolerance = 1e-12

    def __init__(self, strict: bool = False) -> None:
        super().__init__(strict)
        self._last_alpha: dict[int, float] = {}

    def check(self, simulator: "Simulator", entry: "RoundTimelineEntry") -> None:
        for node in simulator.nodes:
            alpha = getattr(node, "alpha", None)
            if alpha is None:
                continue
            previous = self._last_alpha.get(node.node_id)
            if previous is not None and alpha < previous - self.tolerance:
                self.report(
                    simulator,
                    entry.round_number,
                    node_id=node.node_id,
                    reason="dual_budget_decreased",
                    previous=previous,
                    current=alpha,
                )
            self._last_alpha[node.node_id] = alpha


class CongestWatchdog(Watchdog):
    """``max_message_bits`` must stay under the ``O(log N)`` envelope.

    The effective budget is ``max(envelope, floor_bits)``: the message
    encoding charges a flat 64 bits per float (see
    :mod:`repro.net.message`), so on tiny networks the pure
    ``constant * log2(N)`` line dips below what a *single* legitimate
    payload costs and would false-positive. ``floor_bits`` (default 96:
    one float, a short kind tag, sign/length overhead) keeps the check
    meaningful at every size while still catching multi-value payloads.
    """

    name = "congest"

    def __init__(
        self,
        constant: float = 16.0,
        floor_bits: int = 96,
        strict: bool = False,
    ) -> None:
        super().__init__(strict)
        self.constant = float(constant)
        self.floor_bits = int(floor_bits)
        self._tripped = False

    def check(self, simulator: "Simulator", entry: "RoundTimelineEntry") -> None:
        if self._tripped:
            return
        budget = max(
            message_bits_envelope(
                max(simulator.topology.num_nodes, 2), constant=self.constant
            ),
            float(self.floor_bits),
        )
        observed = simulator.metrics.max_message_bits
        if observed > budget:
            self._tripped = True
            self.report(
                simulator,
                entry.round_number,
                reason="message_bits_over_envelope",
                observed_bits=observed,
                envelope_bits=budget,
            )


def default_watchdogs(strict: bool = False) -> tuple[Watchdog, ...]:
    """The standard watchdog set (feasibility, dual monotonicity, CONGEST)."""
    return (
        FeasibilityWatchdog(strict=strict),
        DualMonotonicityWatchdog(strict=strict),
        CongestWatchdog(strict=strict),
    )
