"""Causal message provenance: why did this facility open, this client connect?

A :class:`ProvenanceLog` is an append-only DAG of protocol decisions.
Every node is a :class:`ProvenanceEvent` — a settle, select, accept or
open — linked by ``causes`` edges to the earlier events (and thereby the
messages) that triggered it. The log is populated by the loop emulation
engine in full-record mode (``FlightRecorder(full=True)``): the loop
engine is the cross-validated oracle and has the global view needed to
attribute causality exactly, while the digest plane of
:mod:`repro.obs.recorder` covers all engines.

``repro explain facility:3`` walks the DAG backwards from the terminal
event of an actor (the ``open`` of a facility, the ``connect`` of a
client) and renders the causal chain chronologically — the
execution-level answer to "why is this facility in the solution?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.exceptions import ReproError

__all__ = ["ProvenanceEvent", "ProvenanceLog"]

#: Event kinds that terminate an actor's causal story: a facility is in
#: the solution because it (force-)opened, a client because it connected.
TERMINAL_KINDS = ("open", "forced_open", "connect")


@dataclass(frozen=True)
class ProvenanceEvent:
    """One protocol decision in the causal DAG.

    Attributes
    ----------
    event_id:
        Position in the log (events are appended in protocol order, so
        ids are also a valid topological order of the DAG).
    kind:
        Decision type, e.g. ``"propose"``, ``"accept"``, ``"open"``,
        ``"alpha_raise"``, ``"tight"``, ``"settle"``, ``"select"``,
        ``"join"``, ``"force"``, ``"forced_open"``, ``"connect"``.
    actor:
        Who decided: ``"facility:<i>"`` or ``"client:<j>"``.
    label:
        The recorder checkpoint the event belongs to (e.g.
        ``"greedy:iter:2"``), locating it in protocol time.
    causes:
        Event ids of the direct causes (always earlier events).
    attrs:
        Decision payload (scale, priority, alpha, target facility, ...).
    """

    event_id: int
    kind: str
    actor: str
    label: str
    causes: tuple[int, ...] = ()
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation."""
        return {
            "id": self.event_id,
            "kind": self.kind,
            "actor": self.actor,
            "label": self.label,
            "causes": list(self.causes),
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProvenanceEvent":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        return cls(
            event_id=int(data.get("id", 0)),
            kind=str(data.get("kind", "")),
            actor=str(data.get("actor", "")),
            label=str(data.get("label", "")),
            causes=tuple(int(c) for c in data.get("causes", ())),
            attrs=dict(data.get("attrs", {})),
        )

    def render(self) -> str:
        """One human-readable line for causal-chain output."""
        attrs = ", ".join(f"{k}={_fmt(v)}" for k, v in self.attrs.items())
        suffix = f" ({attrs})" if attrs else ""
        caused = (
            " <- #" + ",#".join(str(c) for c in self.causes)
            if self.causes
            else ""
        )
        return f"#{self.event_id} [{self.label}] {self.kind} {self.actor}{suffix}{caused}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class ProvenanceLog:
    """Append-only causal DAG of protocol decisions (see module docstring)."""

    def __init__(self, events: Iterable[ProvenanceEvent] = ()) -> None:
        self.events: list[ProvenanceEvent] = list(events)

    def __len__(self) -> int:
        return len(self.events)

    def add(
        self,
        kind: str,
        actor: str,
        label: str,
        causes: Sequence[int | None] = (),
        **attrs: Any,
    ) -> int:
        """Append one event; returns its id for use as a later cause.

        ``None`` entries in ``causes`` are dropped, so callers can pass
        ``events.get(j)`` lookups without guarding each one.
        """
        event = ProvenanceEvent(
            event_id=len(self.events),
            kind=kind,
            actor=actor,
            label=label,
            causes=tuple(c for c in causes if c is not None),
            attrs=dict(attrs),
        )
        self.events.append(event)
        return event.event_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def events_for(self, actor: str) -> list[ProvenanceEvent]:
        """All events of one actor, in protocol order."""
        return [e for e in self.events if e.actor == actor]

    def terminal_event(self, actor: str) -> ProvenanceEvent:
        """The event that put ``actor`` in the solution.

        The *last* terminal-kind event of the actor (an open facility may
        have served many clients afterwards; the opening itself is what
        explains its presence). Falls back to the actor's last event when
        no terminal kind was logged, and raises
        :class:`~repro.exceptions.ReproError` for unknown actors.
        """
        mine = self.events_for(actor)
        if not mine:
            known = sorted({e.actor for e in self.events})
            raise ReproError(
                f"no provenance events for {actor!r}; "
                f"known actors: {', '.join(known[:8]) or '(none)'}"
            )
        terminal = [e for e in mine if e.kind in TERMINAL_KINDS]
        return terminal[-1] if terminal else mine[-1]

    def ancestry(self, event_id: int) -> list[ProvenanceEvent]:
        """The event plus every transitive cause, in chronological order."""
        if not 0 <= event_id < len(self.events):
            raise ReproError(
                f"provenance event #{event_id} does not exist "
                f"(log has {len(self.events)} events)"
            )
        seen: set[int] = set()
        frontier = [event_id]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.events[current].causes)
        return [self.events[i] for i in sorted(seen)]

    def explain(self, actor: str) -> str:
        """Human-readable causal chain ending at the actor's terminal event."""
        terminal = self.terminal_event(actor)
        chain = self.ancestry(terminal.event_id)
        header = f"why {actor} -> {terminal.kind} ({len(chain)} events):"
        return "\n".join([header] + ["  " + event.render() for event in chain])

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_payload(self) -> list[dict[str, Any]]:
        """JSON-safe list of event dicts."""
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_payload(cls, data: Iterable[Mapping[str, Any]]) -> "ProvenanceLog":
        """Inverse of :meth:`to_payload`."""
        return cls(ProvenanceEvent.from_dict(item) for item in data)
