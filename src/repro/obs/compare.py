"""Cross-run regression comparison (the ``repro compare`` engine).

Every perf or robustness PR needs a checkable before/after. This module
loads two run artifacts — a ``.manifest.json`` sidecar, a JSONL trace, a
``BENCH_<name>.json`` trajectory file, or a whole directory of them —
flattens each into a ``metric name -> number`` mapping, and diffs the two
under per-metric *regression thresholds*.

Threshold semantics: every compared metric is **lower-is-better** (rounds,
bits, cost, ratio, wall-clock — all of the paper's resources point down).
A metric regresses when ``new / old > threshold``; ``threshold=1.0`` means
"must not grow at all", ``1.05`` allows 5% growth. Metrics present on only
one side are reported but never fail the comparison (schema evolution must
not break CI), and metrics without a threshold are checked only when a
``default_threshold`` is supplied (BENCH wall-clock entries use this with
a loose default, since absolute timings are machine-dependent).

``repro compare old new --threshold cost=1.05`` exits non-zero when any
thresholded metric regresses.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.analysis.tables import render_table
from repro.exceptions import ReproError

__all__ = [
    "DEFAULT_THRESHOLDS",
    "MetricDiff",
    "ComparisonReport",
    "parse_threshold",
    "extract_metrics",
    "compare_metrics",
    "compare_paths",
]

#: Default regression thresholds for the canonical run metrics. Rounds and
#: message sizes are deterministic given seed+instance, so any growth is a
#: regression; traffic, cost and ratio get small tolerances; wall-clock is
#: machine-noise and gets a loose one.
DEFAULT_THRESHOLDS: Mapping[str, float] = {
    "rounds": 1.0,
    "max_message_bits": 1.0,
    "total_messages": 1.05,
    "total_bits": 1.05,
    "max_messages_per_round": 1.05,
    "cost": 1.02,
    "ratio_vs_lp": 1.02,
    "ratio_vs_bound": 1.02,
    "wall_seconds": 5.0,
}


def parse_threshold(spec: str) -> tuple[str, float]:
    """Parse one ``NAME=RATIO`` threshold argument."""
    name, sep, value = spec.partition("=")
    if not sep or not name:
        raise ReproError(
            f"bad threshold {spec!r}: expected NAME=RATIO (e.g. cost=1.05)"
        )
    try:
        ratio = float(value)
    except ValueError:
        raise ReproError(f"bad threshold ratio in {spec!r}: {value!r}") from None
    if ratio <= 0:
        raise ReproError(f"threshold ratio must be positive, got {spec!r}")
    return name, ratio


@dataclass(frozen=True)
class MetricDiff:
    """One metric's before/after comparison."""

    name: str
    old: float | None
    new: float | None
    threshold: float | None
    status: str  # "ok" | "regression" | "improved" | "unchecked" | "missing"

    @property
    def ratio(self) -> float | None:
        """``new / old`` (None when either side is missing; inf on 0 -> x)."""
        if self.old is None or self.new is None:
            return None
        if self.old == 0:
            return None if self.new == 0 else math.inf
        return self.new / self.old


@dataclass
class ComparisonReport:
    """Full diff of two runs' metrics."""

    old_label: str
    new_label: str
    diffs: list[MetricDiff] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDiff]:
        """Diffs that exceeded their threshold."""
        return [d for d in self.diffs if d.status == "regression"]

    @property
    def ok(self) -> bool:
        """Whether no thresholded metric regressed."""
        return not self.regressions

    def render(self) -> str:
        """Fixed-width diff table, regressions first."""
        order = {"regression": 0, "improved": 1, "ok": 2, "unchecked": 3, "missing": 4}
        rows = []
        for diff in sorted(self.diffs, key=lambda d: (order[d.status], d.name)):
            ratio = diff.ratio
            rows.append(
                (
                    diff.name,
                    "-" if diff.old is None else diff.old,
                    "-" if diff.new is None else diff.new,
                    "-" if ratio is None else ratio,
                    "-" if diff.threshold is None else diff.threshold,
                    diff.status,
                )
            )
        verdict = "OK" if self.ok else f"{len(self.regressions)} REGRESSION(S)"
        return render_table(
            ("metric", "old", "new", "ratio", "threshold", "status"),
            rows,
            title=f"compare {self.old_label} -> {self.new_label}: {verdict}",
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation."""
        return {
            "old": self.old_label,
            "new": self.new_label,
            "ok": self.ok,
            "metrics": [
                {
                    "name": d.name,
                    "old": d.old,
                    "new": d.new,
                    "ratio": d.ratio if d.ratio != math.inf else "inf",
                    "threshold": d.threshold,
                    "status": d.status,
                }
                for d in self.diffs
            ],
        }


# ----------------------------------------------------------------------
# Metric extraction: one flat dict per artifact, whatever its format
# ----------------------------------------------------------------------

_SCALAR_METRIC_KEYS = (
    "rounds",
    "total_messages",
    "total_bits",
    "max_message_bits",
    "mean_message_bits",
    "max_messages_per_round",
    "dropped_messages",
)


def _manifest_metrics(record: Mapping[str, Any]) -> dict[str, float]:
    """Flatten a manifest dict (``{"type": "manifest", ...}``)."""
    flat: dict[str, float] = {}
    metrics = record.get("metrics") or {}
    for key in _SCALAR_METRIC_KEYS:
        value = metrics.get(key)
        if isinstance(value, (int, float)):
            flat[key] = float(value)
    wall = record.get("wall_seconds")
    if isinstance(wall, (int, float)):
        flat["wall_seconds"] = float(wall)
    outcome = record.get("outcome") or {}
    for key in ("cost", "ratio_vs_lp", "unserved_clients"):
        value = outcome.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[key] = float(value)
    return flat


def _bench_metrics(doc: Mapping[str, Any]) -> dict[str, float]:
    """Flatten a BENCH_<name>.json trajectory document."""
    flat: dict[str, float] = {}
    for record_id, record in sorted((doc.get("records") or {}).items()):
        if not isinstance(record, Mapping):
            continue
        wall = record.get("wall_seconds")
        if isinstance(wall, (int, float)):
            flat[f"{record_id}.wall_seconds"] = float(wall)
        for key, value in sorted((record.get("notes") or {}).items()):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                flat[f"{record_id}.notes.{key}"] = float(value)
        for key, value in sorted((record.get("metrics") or {}).items()):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                flat[f"{record_id}.{key}"] = float(value)
    return flat


def _snapshot_metrics(doc: Mapping[str, Any]) -> dict[str, float]:
    """Flatten a metrics-snapshot payload (``repro.metrics.snapshot/v1``).

    Counters and gauges contribute their labeled values; histograms
    contribute count/sum plus p50/p95 re-derived offline from the
    snapshot's bucket boundaries and counts — the whole point of
    snapshots carrying raw buckets is that ``repro compare`` can gate on
    quantiles without the original process.
    """
    from repro.obs.metrics_io import histogram_quantile

    flat: dict[str, float] = {}
    for name, instrument in sorted((doc.get("metrics") or {}).items()):
        if not isinstance(instrument, Mapping):
            continue
        kind = instrument.get("type")
        for series in instrument.get("values") or ():
            labels = series.get("labels") or {}
            key = _flat_series_name(name, labels)
            if kind in ("counter", "gauge"):
                value = series.get("value")
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    flat[key] = float(value)
            elif kind == "histogram":
                count = series.get("count")
                if not isinstance(count, (int, float)):
                    continue
                flat[f"{key}.count"] = float(count)
                total = series.get("sum")
                if isinstance(total, (int, float)):
                    flat[f"{key}.sum"] = float(total)
                if count:
                    flat[f"{key}.p50"] = histogram_quantile(
                        instrument, 0.5, labels
                    )
                    flat[f"{key}.p95"] = histogram_quantile(
                        instrument, 0.95, labels
                    )
    return flat


def _flat_series_name(name: str, labels: Mapping[str, Any]) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{rendered}}}"


def _trace_metrics(path: Path) -> dict[str, float]:
    """Flatten a JSONL trace: manifest line (or sidecar) plus timeline."""
    from repro.obs.inspect import load_trace_file

    report = load_trace_file(path)
    flat: dict[str, float] = {}
    if report.manifest is not None:
        flat.update(_manifest_metrics(report.manifest.to_dict()))
    timeline = report.timeline
    if len(timeline):
        # Rounds/messages from the timeline back up a manifest-less
        # (killed-run) trace; the manifest values win when both exist.
        flat.setdefault("rounds", float(len(timeline) - 1))
        flat.setdefault("total_messages", float(timeline.total_messages))
        last_probe = None
        for entry in timeline:
            if entry.probe:
                last_probe = entry.probe
        if last_probe:
            for key in ("primal_cost", "ratio_vs_bound", "dual_sum"):
                value = last_probe.get(key)
                if isinstance(value, (int, float)):
                    flat.setdefault(key, float(value))
    return flat


def extract_metrics(path: str | Path) -> dict[str, float]:
    """Load one artifact and flatten it to ``metric name -> number``.

    Recognized formats: JSONL traces (``*.jsonl``), manifest JSON files
    (``{"type": "manifest"}``), BENCH trajectory files (``{"type":
    "bench"}`` or a top-level ``records`` mapping), metrics snapshots
    (``repro.metrics.snapshot/v1`` — histograms contribute offline-derived
    p50/p95), and pytest-benchmark exports (top-level ``benchmarks`` list
    — each entry contributes its mean/stddev seconds).
    """
    target = Path(path)
    if not target.exists():
        raise ReproError(f"run artifact not found: {target}")
    if target.suffix == ".jsonl":
        return _trace_metrics(target)
    try:
        doc = json.loads(target.read_text())
    except json.JSONDecodeError as error:
        raise ReproError(f"{target} is not valid JSON: {error}") from None
    if not isinstance(doc, Mapping):
        raise ReproError(f"{target}: expected a JSON object at top level")
    if doc.get("type") == "manifest":
        return _manifest_metrics(doc)
    if doc.get("schema") == "repro.metrics.snapshot/v1":
        return _snapshot_metrics(doc)
    if doc.get("type") == "bench" or "records" in doc:
        return _bench_metrics(doc)
    if "benchmarks" in doc:  # pytest-benchmark --benchmark-json export
        flat: dict[str, float] = {}
        for bench in doc.get("benchmarks") or []:
            name = str(bench.get("name", "?"))
            stats = bench.get("stats") or {}
            for stat_key in ("mean", "stddev"):
                value = stats.get(stat_key)
                if isinstance(value, (int, float)):
                    flat[f"{name}.{stat_key}"] = float(value)
        return flat
    raise ReproError(
        f"{target}: unrecognized artifact (expected a trace .jsonl, a "
        "manifest, a BENCH_*.json, or a pytest-benchmark export)"
    )


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------

def compare_metrics(
    old: Mapping[str, float],
    new: Mapping[str, float],
    thresholds: Mapping[str, float] | None = None,
    default_threshold: float | None = None,
    old_label: str = "old",
    new_label: str = "new",
) -> ComparisonReport:
    """Diff two flat metric mappings under regression thresholds.

    ``thresholds`` overrides/extends :data:`DEFAULT_THRESHOLDS`;
    ``default_threshold`` applies to every shared metric that has no
    explicit threshold (left unchecked otherwise).
    """
    effective = dict(DEFAULT_THRESHOLDS)
    effective.update(thresholds or {})
    report = ComparisonReport(old_label=old_label, new_label=new_label)
    for name in sorted(set(old) | set(new)):
        old_value = old.get(name)
        new_value = new.get(name)
        threshold = effective.get(name, default_threshold)
        if old_value is None or new_value is None:
            status = "missing"
            threshold = None
        elif threshold is None:
            status = "unchecked"
        else:
            if old_value == 0:
                regressed = new_value > 0
                improved = False
            else:
                ratio = new_value / old_value
                regressed = ratio > threshold
                improved = ratio < 1.0
            status = (
                "regression" if regressed else "improved" if improved else "ok"
            )
        report.diffs.append(
            MetricDiff(
                name=name,
                old=old_value,
                new=new_value,
                threshold=threshold,
                status=status,
            )
        )
    return report


_DIR_PATTERNS = ("BENCH_*.json", "*.manifest.json", "*.jsonl", "*.json")


def _artifact_names(directory: Path) -> dict[str, Path]:
    """Comparable artifacts in a directory, keyed by filename."""
    found: dict[str, Path] = {}
    for pattern in _DIR_PATTERNS:
        for candidate in sorted(directory.glob(pattern)):
            found.setdefault(candidate.name, candidate)
    return found


def compare_paths(
    old: str | Path,
    new: str | Path,
    thresholds: Mapping[str, float] | None = None,
    default_threshold: float | None = None,
) -> list[ComparisonReport]:
    """Compare two artifacts, or two directories of artifacts pairwise.

    Directory mode pairs files by name and compares every common pair;
    names present on only one side are skipped (they cannot regress).
    Raises :class:`~repro.exceptions.ReproError` when a directory pair
    shares no artifact at all, which is always a usage error.
    """
    old_path, new_path = Path(old), Path(new)
    if old_path.is_dir() != new_path.is_dir():
        raise ReproError(
            "compare needs two files or two directories, not a mix: "
            f"{old_path} vs {new_path}"
        )
    if not old_path.is_dir():
        report = compare_metrics(
            extract_metrics(old_path),
            extract_metrics(new_path),
            thresholds=thresholds,
            default_threshold=default_threshold,
            old_label=str(old_path),
            new_label=str(new_path),
        )
        return [report]
    old_artifacts = _artifact_names(old_path)
    new_artifacts = _artifact_names(new_path)
    common = sorted(set(old_artifacts) & set(new_artifacts))
    if not common:
        raise ReproError(
            f"no artifact filename is present in both {old_path} and {new_path}"
        )
    return [
        compare_metrics(
            extract_metrics(old_artifacts[name]),
            extract_metrics(new_artifacts[name]),
            thresholds=thresholds,
            default_threshold=default_threshold,
            old_label=str(old_artifacts[name]),
            new_label=str(new_artifacts[name]),
        )
        for name in common
    ]
