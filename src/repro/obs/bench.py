"""Versioned benchmark trajectory files (the ``repro bench`` engine).

A ``BENCH_<name>.json`` file is a *trajectory point*: one snapshot of a
named benchmark suite's measurable outputs at one package version. The
file is deliberately deterministic for a given set of inputs — no
timestamps, sorted keys — so committing one per release (or per PR, in
CI) yields a diffable history, and :mod:`repro.obs.compare` can diff any
two of them under regression thresholds.

Sources a BENCH file can be built from:

* a directory of benchmark artifacts — the ``*.json`` records that
  ``benchmarks/conftest.save_result`` writes next to each rendered table
  (``{"type": "bench_record"}``), plus any ``*.manifest.json`` run
  manifests found alongside;
* a pytest-benchmark ``--benchmark-json`` export (each timing entry
  becomes one record);
* a single bench record or manifest file.

Document shape::

    {"type": "bench", "schema": 1, "name": ..., "version": ...,
     "records": {<record id>: {"wall_seconds": ..., "metrics": {...},
                               "params": {...}}, ...}}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ReproError

__all__ = ["collect_records", "write_bench", "load_bench", "bench_path_for"]

BENCH_SCHEMA = 1


def bench_path_for(name: str, directory: str | Path) -> Path:
    """Canonical path of the ``BENCH_<name>.json`` file in a directory."""
    safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in name)
    return Path(directory) / f"BENCH_{safe}.json"


def _record_from_manifest(doc: Mapping[str, Any]) -> dict[str, Any]:
    """Condense a run manifest into a trajectory record."""
    from repro.obs.compare import _manifest_metrics

    metrics = _manifest_metrics(doc)
    wall = metrics.pop("wall_seconds", 0.0)
    return {
        "source": "manifest",
        "version": str(doc.get("version", "")),
        "wall_seconds": wall,
        "params": dict(doc.get("parameters", {})),
        "metrics": metrics,
    }


def _record_from_bench_record(doc: Mapping[str, Any]) -> dict[str, Any]:
    """Pass a ``benchmarks/`` JSON record through (drop presentation keys)."""
    return {
        "source": "experiment",
        "version": str(doc.get("version", "")),
        "wall_seconds": float(doc.get("wall_seconds", 0.0)),
        "params": dict(doc.get("params", {})),
        "metrics": dict(doc.get("metrics", {})),
    }


def _records_from_pytest_benchmark(doc: Mapping[str, Any]) -> dict[str, dict[str, Any]]:
    """One record per timing entry of a ``--benchmark-json`` export."""
    records: dict[str, dict[str, Any]] = {}
    for bench in doc.get("benchmarks") or []:
        name = str(bench.get("name", "?"))
        stats = bench.get("stats") or {}
        metrics = {
            stat_key: float(stats[stat_key])
            for stat_key in ("min", "mean", "stddev", "rounds")
            if isinstance(stats.get(stat_key), (int, float))
        }
        records[name] = {
            "source": "pytest-benchmark",
            "version": str((doc.get("commit_info") or {}).get("id", ""))[:12],
            "wall_seconds": metrics.get("mean", 0.0),
            "params": dict(bench.get("params") or {}),
            "metrics": metrics,
        }
    return records


def _absorb_file(path: Path, records: dict[str, dict[str, Any]]) -> None:
    try:
        doc = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return
    if not isinstance(doc, Mapping):
        return
    kind = doc.get("type")
    if kind == "bench_record":
        key = str(doc.get("experiment_id") or path.stem)
        records[key] = _record_from_bench_record(doc)
    elif kind == "manifest":
        key = path.name.removesuffix(".manifest.json") or path.stem
        records[key] = _record_from_manifest(doc)
    elif "benchmarks" in doc:
        records.update(_records_from_pytest_benchmark(doc))
    # BENCH files themselves and unknown JSON are skipped: a directory
    # already holding a previous trajectory point must not fold it in.


def collect_records(source: str | Path) -> dict[str, dict[str, Any]]:
    """Gather trajectory records from a file or a directory of artifacts."""
    root = Path(source)
    if not root.exists():
        raise ReproError(f"benchmark source not found: {root}")
    records: dict[str, dict[str, Any]] = {}
    if root.is_dir():
        for candidate in sorted(root.glob("*.json")):
            if candidate.name.startswith("BENCH_"):
                continue
            _absorb_file(candidate, records)
    else:
        _absorb_file(root, records)
    if not records:
        raise ReproError(
            f"no benchmark records found in {root} (expected bench_record "
            "JSONs, run manifests, or a pytest-benchmark export)"
        )
    return records


def write_bench(
    name: str,
    records: Mapping[str, Mapping[str, Any]],
    out: str | Path,
) -> Path:
    """Write one ``BENCH_<name>.json`` trajectory point.

    ``out`` may be a directory (the canonical filename is used) or an
    explicit file path. Output is deterministic: sorted keys, no
    timestamps — rerunning on the same inputs writes the same bytes.
    """
    from repro import __version__

    target = Path(out)
    if target.is_dir() or not target.suffix:
        target = bench_path_for(name, target)
    document = {
        "type": "bench",
        "schema": BENCH_SCHEMA,
        "name": name,
        "version": __version__,
        "records": {key: dict(value) for key, value in sorted(records.items())},
    }
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return target


def load_bench(path: str | Path) -> dict[str, Any]:
    """Read a BENCH file back, validating the envelope."""
    target = Path(path)
    if not target.exists():
        raise ReproError(f"BENCH file not found: {target}")
    doc = json.loads(target.read_text())
    if not isinstance(doc, Mapping) or doc.get("type") != "bench":
        raise ReproError(f"{target} is not a BENCH trajectory file")
    return dict(doc)
