"""Per-round convergence probes: solution quality as it evolves.

The paper's headline is a trade-off *curve* — rounds against approximation
quality — but network metrics alone only show the cost side. A
:class:`RoundProbe` attached to the simulator observes the *global* state
at every round boundary (the probe is an experimenter's instrument, not
part of the distributed protocol; it may read any node) and contributes a
dict that the simulator embeds in the round's
:class:`~repro.obs.timeline.RoundTimelineEntry` under ``probe`` — so a
JSONL trace of a run carries the full anytime-quality trajectory.

:class:`SolutionQualityProbe` reports, per round:

* ``dual_sum`` — total client dual budget ``sum_j alpha_j`` (dual-ascent
  variant; 0 for protocols without duals),
* ``num_tight`` / ``num_frozen`` — tight facilities and frozen-or-connected
  clients, the protocol's discrete progress measures,
* ``open_cost`` — opening cost of the tentatively-open facilities,
* ``primal_cost`` — cost of the feasible solution *induced* by the current
  open set (every client to its cheapest open neighbor), ``None`` while the
  open set covers no feasible assignment yet,
* ``ratio_vs_bound`` — ``primal_cost`` over the supplied lower bound (the
  LP optimum from :mod:`repro.baselines.lp`, or any bound from
  :mod:`repro.core.bounds`): an anytime approximation-ratio estimate.

Probes are strictly opt-in: a simulator constructed without probes never
executes any probe code (verified by test), so the default path stays as
fast as before this module existed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.fl.instance import FacilityLocationInstance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.simulator import Simulator

__all__ = ["RoundProbe", "SolutionQualityProbe", "PROBE_FIELDS"]

#: Canonical ordering of probe fields in rendered timelines.
PROBE_FIELDS: tuple[str, ...] = (
    "dual_sum",
    "num_tight",
    "num_frozen",
    "open_cost",
    "primal_cost",
    "ratio_vs_bound",
)


class RoundProbe:
    """Base class: observe global simulator state at a round boundary.

    Subclasses override :meth:`observe` and return a JSON-serializable
    mapping; the simulator merges the outputs of all attached probes into
    the round's timeline entry. Returning ``{}`` contributes nothing.
    """

    def observe(
        self, simulator: "Simulator", round_number: int
    ) -> Mapping[str, Any]:
        """Return this probe's fields for the given round."""
        return {}


class SolutionQualityProbe(RoundProbe):
    """Anytime solution-quality probe for both protocol variants.

    Parameters
    ----------
    instance:
        The facility-location instance being solved; probe costs come from
        its cost arrays, not from node-local state.
    lower_bound:
        Optional lower bound on the optimum (typically the LP value). When
        given, every round with a feasible induced solution also reports
        ``ratio_vs_bound``.
    """

    def __init__(
        self,
        instance: FacilityLocationInstance,
        lower_bound: float | None = None,
    ) -> None:
        self.instance = instance
        self.lower_bound = float(lower_bound) if lower_bound is not None else None
        self._num_facilities = instance.num_facilities

    def observe(
        self, simulator: "Simulator", round_number: int
    ) -> dict[str, Any]:
        nodes = simulator.nodes
        facilities = nodes[: self._num_facilities]
        clients = nodes[self._num_facilities:]

        dual_sum = 0.0
        num_frozen = 0
        for client in clients:
            alpha = getattr(client, "alpha", None)
            if alpha is not None:
                dual_sum += alpha
            if getattr(client, "frozen", False) or getattr(client, "connected", False):
                num_frozen += 1
        num_tight = sum(
            1 for f in facilities if getattr(f, "is_tight", False)
        )
        open_ids = [
            f.node_id
            for f in facilities
            if getattr(f, "is_open", False) and not f.crashed
        ]
        open_cost = float(self.instance.opening_costs[open_ids].sum()) if open_ids else 0.0

        data: dict[str, Any] = {
            "dual_sum": dual_sum,
            "num_tight": num_tight,
            "num_frozen": num_frozen,
            "open_cost": open_cost,
            "primal_cost": None,
        }
        primal = self._induced_primal_cost(open_ids, open_cost)
        if primal is not None:
            data["primal_cost"] = primal
            if self.lower_bound is not None:
                data["ratio_vs_bound"] = primal / max(self.lower_bound, 1e-12)
        return data

    def _induced_primal_cost(
        self, open_ids: list[int], open_cost: float
    ) -> float | None:
        """Cost of assigning every client to its cheapest open neighbor.

        ``None`` while some client has no (finite-cost) edge to any open
        facility — the induced solution is not yet feasible.
        """
        if not open_ids:
            return None
        best = np.min(self.instance.connection_costs[open_ids, :], axis=0)
        if not np.all(np.isfinite(best)):
            return None
        return open_cost + float(best.sum())
