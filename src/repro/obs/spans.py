"""Span-based distributed tracing with causal context propagation.

Where the round timeline answers "what did round ``r`` cost?", spans
answer "where did *this request's* 400 ms go?" across the whole serving
pipeline: a client opens a root span, its :class:`SpanContext` rides the
wire inside each :class:`~repro.service.request.SolveRequest`, the
service opens child spans for queueing and batching, the batcher pickles
the per-unit context into each :class:`~repro.service.worker.ServiceCell`,
pool workers build their own subtree (instance materialization, LP
bound, the solve, per-round simulator spans) and ship it back as plain
dicts, and :meth:`Tracer.adopt` re-parents those dicts on the ordered
merge — yielding one connected tree per traced request flow.

Design constraints:

1. **Never perturb the solve.** Spans observe wall-clock, CPU time and
   (opt-in) memory; they touch no RNG and no protocol state, so a traced
   run's outputs are byte-identical to an untraced one (the service
   equivalence suite enforces this).
2. **Cheap when absent.** Every producer guards on ``tracer is None``;
   the un-traced hot path pays a single ``None`` check.
3. **Cross-process safe.** :class:`SpanContext` and span dicts are plain
   picklable data; worker-side span ids are namespaced under the parent
   span id, so merged trees never collide.

Exports cover both artifact formats: a JSONL span log
(:func:`write_spans_jsonl` / :func:`load_spans_jsonl`, read back by
``repro trace``) and the Chrome/Perfetto ``trace_event`` JSON
(:func:`chrome_trace` / :func:`write_chrome_trace`) that loads directly
in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

try:  # pragma: no cover - tracemalloc is stdlib, but stay import-safe
    import tracemalloc
except ImportError:  # pragma: no cover
    tracemalloc = None  # type: ignore[assignment]

from repro.exceptions import ReproError

__all__ = [
    "SpanContext",
    "Span",
    "Tracer",
    "chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
    "load_spans_jsonl",
    "measure_peak_memory",
    "render_span_tree",
    "critical_path",
]


def measure_peak_memory(fn: "Any") -> tuple[Any, float]:
    """Run ``fn()`` under tracemalloc; returns ``(result, mem_peak_kb)``.

    The standalone form of the :class:`Tracer` ``profile_memory`` hook:
    same tracemalloc plane, same ``mem_peak_kb`` unit and rounding, so a
    bench record's peak-memory gauge and a traced span's attribute are
    directly comparable. Numpy buffer allocations are included (numpy
    registers its allocator with tracemalloc), which is what makes this
    a meaningful budget gate for the columnar engine; child processes
    (sharded workers) are *not* — a sharded run's gauge covers the parent,
    i.e. the shared plane plus recorder/ledger overhead. Returns peak
    0.0 when tracemalloc is unavailable. Restores the prior tracing
    state *and* the enclosing profiler's high-water mark, so nesting
    under a profiling tracer is safe.
    """
    if tracemalloc is None:  # pragma: no cover - stdlib always has it
        return fn(), 0.0
    started = not tracemalloc.is_tracing()
    if started:
        tracemalloc.start()
        prior_peak = 0
    else:
        _, prior_peak = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if started:
            tracemalloc.stop()
        elif prior_peak:
            current, post_peak = tracemalloc.get_traced_memory()
            if prior_peak > post_peak:
                # ``reset_peak`` above erased the enclosing profiler's
                # peak and tracemalloc has no way to set it back, so lift
                # traced memory to the pre-call high-water mark with a
                # transient *uninitialized* allocation (numpy registers
                # with tracemalloc; untouched pages cost no real memory
                # beyond a level this process already reached).
                import numpy as _np

                pad = _np.empty(prior_peak - current, dtype=_np.uint8)
                del pad
    return result, round(peak / 1024.0, 3)


@dataclass(frozen=True)
class SpanContext:
    """The portable causal identity of a span: ``(trace_id, span_id)``.

    This is the only thing that crosses process or wire boundaries: a
    request carries its submitter's context, a pickled cell carries its
    work unit's context, and the receiving side parents new spans under
    it. Frozen and hashable, so it is safe inside frozen request or cell
    dataclasses.
    """

    trace_id: str
    span_id: str

    def to_wire(self) -> dict[str, str]:
        """Flat JSON dict for the service wire protocol."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "SpanContext":
        """Inverse of :meth:`to_wire`."""
        return cls(
            trace_id=str(data.get("trace_id", "")),
            span_id=str(data.get("span_id", "")),
        )


@dataclass
class Span:
    """One timed operation in a trace tree.

    ``start_unix`` is wall-clock (comparable across processes);
    ``duration_s`` and ``cpu_s`` are measured with ``perf_counter`` /
    ``process_time`` deltas, so they are monotonic even if the wall clock
    steps. ``attributes`` carries operation-specific annotations (round
    metrics, request ids, batch sizes); ``status`` is ``"ok"`` unless the
    operation reported otherwise (``"error"``, ``"timeout"``, ...).
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start_unix: float = 0.0
    duration_s: float = 0.0
    cpu_s: float = 0.0
    pid: int = 0
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)
    _tracer: "Tracer | None" = field(default=None, repr=False, compare=False)
    _t0: float = field(default=0.0, repr=False, compare=False)
    _cpu0: float = field(default=0.0, repr=False, compare=False)
    _ended: bool = field(default=False, repr=False, compare=False)

    @property
    def context(self) -> SpanContext:
        """This span's portable causal identity."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def end_unix(self) -> float:
        """Wall-clock end time (start plus measured duration)."""
        return self.start_unix + self.duration_s

    def annotate(self, **attributes: Any) -> "Span":
        """Merge ``attributes`` into the span; returns ``self`` for chaining."""
        self.attributes.update(attributes)
        return self

    def end(self, status: str | None = None) -> "Span":
        """Finalize the span: stamp duration/CPU and hand it to the tracer.

        Idempotent — a second ``end()`` (e.g. a context manager unwinding
        after an explicit end) is a no-op, preserving the first
        measurement.
        """
        if self._ended:
            return self
        self._ended = True
        self.duration_s = time.perf_counter() - self._t0
        self.cpu_s = time.process_time() - self._cpu0
        if status is not None:
            self.status = status
        if self._tracer is not None:
            self._tracer._finish(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.end(status="error" if exc_type is not None else None)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (one JSONL line; picklable)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "cpu_s": self.cpu_s,
            "pid": self.pid,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict` (tolerates missing optional keys)."""
        return cls(
            name=str(data.get("name", "")),
            trace_id=str(data.get("trace_id", "")),
            span_id=str(data.get("span_id", "")),
            parent_id=data.get("parent_id"),
            start_unix=float(data.get("start_unix", 0.0)),
            duration_s=float(data.get("duration_s", 0.0)),
            cpu_s=float(data.get("cpu_s", 0.0)),
            pid=int(data.get("pid", 0)),
            status=str(data.get("status", "ok")),
            attributes=dict(data.get("attributes", {})),
        )


class Tracer:
    """Factory and collector of spans for one process (or one worker).

    A tracer keeps a stack of *open* spans (the innermost is the implicit
    parent of the next :meth:`start_span`) and a list of *finished* ones.
    Detached spans — long-lived request or batch spans whose lifetime does
    not nest — skip the stack and are ended explicitly.

    Parameters
    ----------
    trace_id:
        Fixed trace identity; generated when omitted. Worker-side tracers
        inherit the submitting trace's id so the merged tree stays one
        trace.
    id_prefix:
        Namespace for generated span ids. Worker tracers prefix with the
        parent span id (``"s3/"``), guaranteeing merged ids never collide
        with service-side ones.
    profile_memory:
        Opt-in ``tracemalloc`` peak sampling: every *root-level* span
        (started with an empty stack) records the traced-memory peak over
        its lifetime as a ``mem_peak_kb`` attribute. Off by default —
        tracemalloc slows allocation-heavy code measurably.
    """

    def __init__(
        self,
        trace_id: str | None = None,
        id_prefix: str = "",
        profile_memory: bool = False,
    ) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.id_prefix = id_prefix
        self.profile_memory = bool(profile_memory)
        self.finished: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0
        self._own_tracemalloc = False
        if self.profile_memory and tracemalloc is not None:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._own_tracemalloc = True

    # ------------------------------------------------------------------
    # Span lifecycle

    def _new_id(self) -> str:
        self._next_id += 1
        return f"{self.id_prefix}s{self._next_id}"

    def start_span(
        self,
        name: str,
        parent: "Span | SpanContext | None" = None,
        attributes: Mapping[str, Any] | None = None,
        detached: bool = False,
    ) -> Span:
        """Open a new span.

        ``parent`` defaults to the innermost open span on this tracer's
        stack; pass a :class:`SpanContext` to parent under a remote span
        (the propagation case) or a :class:`Span` to parent explicitly.
        ``detached=True`` keeps the span off the stack — use it for
        request/batch spans whose lifetimes interleave instead of nesting.
        """
        parent_id: str | None = None
        if parent is None and self._stack:
            parent_id = self._stack[-1].span_id
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        elif isinstance(parent, SpanContext):
            parent_id = parent.span_id or None
        profile = (
            self.profile_memory
            and tracemalloc is not None
            and not self._stack
            and not detached
        )
        if profile:
            tracemalloc.reset_peak()
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=self._new_id(),
            parent_id=parent_id,
            start_unix=time.time(),
            pid=os.getpid(),
            attributes=dict(attributes or {}),
            _tracer=self,
            _t0=time.perf_counter(),
            _cpu0=time.process_time(),
        )
        if profile:
            span.attributes["_profile_memory"] = True
        if not detached:
            self._stack.append(span)
        return span

    def span(
        self,
        name: str,
        parent: "Span | SpanContext | None" = None,
        **attributes: Any,
    ) -> Span:
        """Context-manager shorthand: ``with tracer.span("lp"): ...``."""
        return self.start_span(name, parent=parent, attributes=attributes)

    def _finish(self, span: Span) -> None:
        """Collect an ended span (internal; called by :meth:`Span.end`)."""
        if span.attributes.pop("_profile_memory", False):
            _, peak = tracemalloc.get_traced_memory()  # type: ignore[union-attr]
            span.attributes["mem_peak_kb"] = round(peak / 1024.0, 3)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # out-of-order end: drop it anyway
            self._stack.remove(span)
        self.finished.append(span)

    def add_span(
        self,
        name: str,
        start_unix: float,
        duration_s: float,
        parent: "Span | SpanContext | None" = None,
        attributes: Mapping[str, Any] | None = None,
        cpu_s: float = 0.0,
        status: str = "ok",
    ) -> Span:
        """Record a span retroactively from already-measured timings.

        The simulator uses this for per-round spans: it already measures
        each round's wall clock, so the span is materialized at the round
        boundary without restructuring the engine loop.
        """
        parent_id: str | None = None
        if parent is None and self._stack:
            parent_id = self._stack[-1].span_id
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        elif isinstance(parent, SpanContext):
            parent_id = parent.span_id or None
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=self._new_id(),
            parent_id=parent_id,
            start_unix=start_unix,
            duration_s=duration_s,
            cpu_s=cpu_s,
            pid=os.getpid(),
            status=status,
            attributes=dict(attributes or {}),
            _ended=True,
        )
        self.finished.append(span)
        return span

    # ------------------------------------------------------------------
    # Introspection and merging

    def current_context(self) -> SpanContext | None:
        """Context of the innermost open span (``None`` outside any span)."""
        if not self._stack:
            return None
        return self._stack[-1].context

    @property
    def open_spans(self) -> tuple[Span, ...]:
        """Currently open (stacked) spans, outermost first."""
        return tuple(self._stack)

    def adopt(self, span_dicts: Iterable[Mapping[str, Any]]) -> list[Span]:
        """Merge externally produced span dicts into this tracer.

        This is the ordered-merge half of cross-process propagation: a
        pool worker returns its subtree as plain dicts (already parented
        under the context it was handed), and the service-side tracer
        adopts them verbatim. Ids are namespaced by the worker tracer's
        prefix, so no rewriting is needed.
        """
        adopted = [Span.from_dict(d) for d in span_dicts]
        self.finished.extend(adopted)
        return adopted

    def export(self) -> list[dict[str, Any]]:
        """Every finished span as a plain dict, in completion order."""
        return [span.to_dict() for span in self.finished]

    def close(self) -> None:
        """End any spans left open (outermost last) and stop profiling."""
        while self._stack:
            self._stack[-1].end()
        if self._own_tracemalloc and tracemalloc is not None:
            tracemalloc.stop()
            self._own_tracemalloc = False


# ----------------------------------------------------------------------
# Exporters


def write_spans_jsonl(
    spans: Iterable[Span | Mapping[str, Any]], path: str | Path
) -> Path:
    """Write spans as one JSON object per line; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as stream:
        for span in spans:
            record = span.to_dict() if isinstance(span, Span) else dict(span)
            stream.write(json.dumps(record, sort_keys=True) + "\n")
    return target


def load_spans_jsonl(path: str | Path) -> list[Span]:
    """Read a span JSONL file back into :class:`Span` objects."""
    source = Path(path)
    if not source.exists():
        raise ReproError(f"span log not found: {source}")
    spans: list[Span] = []
    for line in source.read_text(encoding="utf-8").splitlines():
        if line.strip():
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def chrome_trace(spans: Sequence[Span | Mapping[str, Any]]) -> dict[str, Any]:
    """Spans as Chrome/Perfetto ``trace_event`` JSON (``ph: "X"`` events).

    Timestamps are microseconds relative to the earliest span start, so
    the viewer opens at t=0; each event carries the span/parent ids and
    attributes in ``args`` for drill-down. Load the written file in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    spans = _as_spans(spans)
    t0 = min((s.start_unix for s in spans), default=0.0)
    events: list[dict[str, Any]] = []
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round((span.start_unix - t0) * 1e6, 3),
                "dur": round(max(span.duration_s, 0.0) * 1e6, 3),
                "pid": span.pid,
                "tid": span.pid,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "trace_id": span.trace_id,
                    "status": span.status,
                    **span.attributes,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Sequence[Span | Mapping[str, Any]], path: str | Path
) -> Path:
    """Write :func:`chrome_trace` output as a JSON file; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(chrome_trace(spans), indent=1) + "\n")
    return target


# ----------------------------------------------------------------------
# Tree rendering


def _as_spans(spans: Sequence[Span | Mapping[str, Any]]) -> list[Span]:
    """Normalize a mixed ``Span`` / dict sequence to :class:`Span` objects."""
    return [
        span if isinstance(span, Span) else Span.from_dict(span)
        for span in spans
    ]


def _children_index(spans: Sequence[Span]) -> dict[str | None, list[Span]]:
    """Index spans by parent id, children sorted by start time."""
    by_parent: dict[str | None, list[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)
    for siblings in by_parent.values():
        siblings.sort(key=lambda s: (s.start_unix, s.span_id))
    return by_parent


def critical_path(spans: Sequence[Span | Mapping[str, Any]]) -> list[Span]:
    """The heaviest root-to-leaf chain: at every level, the slowest child.

    This is the chain a latency optimization must shorten — speeding up
    any span off it cannot move the end-to-end time (to first order).
    Returns an empty list when there are no spans.
    """
    if not spans:
        return []
    by_parent = _children_index(_as_spans(spans))
    roots = by_parent.get(None, [])
    if not roots:
        return []
    path: list[Span] = []
    node = max(roots, key=lambda s: s.duration_s)
    while node is not None:
        path.append(node)
        children = by_parent.get(node.span_id, [])
        node = max(children, key=lambda s: s.duration_s) if children else None
    return path


def render_span_tree(
    spans: Sequence[Span | Mapping[str, Any]],
    max_attr_chars: int = 60,
    max_depth: int | None = None,
) -> str:
    """ASCII span tree with durations; critical-path spans are starred.

    One line per span: marker (``*`` on the critical path), indented
    name, wall duration, CPU time when nonzero, status when not ``ok``,
    and a truncated attribute summary. Orphans (parents outside the set,
    e.g. a filtered log) render as extra roots. ``max_depth`` prunes deep
    subtrees (per-round spans) to a summary line.
    """
    spans = _as_spans(spans)
    by_parent = _children_index(spans)
    on_path = {id(span) for span in critical_path(spans)}
    lines: list[str] = []

    def visit(span: Span, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        marker = "*" if id(span) in on_path else " "
        wall = f"{span.duration_s * 1e3:9.2f} ms"
        cpu = f" cpu {span.cpu_s * 1e3:.2f} ms" if span.cpu_s > 0 else ""
        status = "" if span.status == "ok" else f" [{span.status}]"
        attrs = ""
        if span.attributes:
            rendered = " ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items())
            )
            if len(rendered) > max_attr_chars:
                rendered = rendered[: max_attr_chars - 1] + "…"
            attrs = f"  {rendered}"
        lines.append(
            f"{marker} {'  ' * depth}{span.name}  {wall}{cpu}{status}{attrs}"
        )
        children = by_parent.get(span.span_id, [])
        if max_depth is not None and depth + 1 > max_depth and children:
            lines.append(f"  {'  ' * (depth + 1)}… {len(children)} child span(s) pruned")
            return
        for child in children:
            visit(child, depth + 1)

    for root in by_parent.get(None, []):
        visit(root, 0)
    return "\n".join(lines)
