"""Read a JSONL trace back and summarize it (the ``repro inspect`` engine).

A trace file is a sequence of JSON lines tagged ``event`` / ``round`` /
``manifest`` (see :mod:`repro.obs.sinks`). Inspection degrades gracefully:
a file with only events still yields event statistics; a file with only
round lines still yields the timeline table.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.analysis.tables import render_table
from repro.exceptions import ReproError
from repro.obs.manifest import RunRecord, manifest_path_for
from repro.obs.timeline import RoundTimeline, RoundTimelineEntry

__all__ = ["TraceReport", "load_trace_file", "inspect_trace", "inspect_digests"]


@dataclass
class TraceReport:
    """Parsed content of one JSONL trace artifact."""

    path: Path
    timeline: RoundTimeline = field(default_factory=RoundTimeline)
    manifest: RunRecord | None = None
    events_by_name: Counter = field(default_factory=Counter)
    events_by_round: Counter = field(default_factory=Counter)
    num_events: int = 0
    malformed_lines: int = 0

    def render(self, slowest: int = 5) -> str:
        """The full human-readable inspection report."""
        sections: list[str] = [f"trace: {self.path}"]
        if self.manifest is not None:
            sections.append(self._render_manifest())
            kinds = self.manifest.metrics.get("messages_by_kind") or {}
            if kinds:
                sections.append(
                    render_table(
                        ("kind", "messages"),
                        sorted(kinds.items(), key=lambda kv: (-kv[1], kv[0])),
                        title="messages by kind",
                    )
                )
            drops = self.manifest.metrics.get("drops_by_kind") or {}
            if drops:
                sections.append(
                    render_table(
                        ("kind", "dropped"),
                        sorted(drops.items(), key=lambda kv: (-kv[1], kv[0])),
                        title="dropped messages by kind",
                    )
                )
        if len(self.timeline):
            sections.append(self.timeline.render())
            top = self.timeline.slowest(slowest)
            if top:
                sections.append(
                    render_table(
                        ("round", "wall_ms", "messages", "bits"),
                        [
                            (e.round_number, e.wall_ms, e.messages, e.bits)
                            for e in top
                        ],
                        title=f"slowest {len(top)} rounds",
                    )
                )
        if self.num_events:
            sections.append(
                render_table(
                    ("event", "count"),
                    sorted(
                        self.events_by_name.items(), key=lambda kv: (-kv[1], kv[0])
                    ),
                    title=f"trace events ({self.num_events} total)",
                )
            )
        if self.malformed_lines:
            sections.append(f"warning: skipped {self.malformed_lines} malformed lines")
        if len(sections) == 1:
            sections.append("(no rounds, events or manifest found)")
        return "\n\n".join(sections)

    def _render_manifest(self) -> str:
        manifest = self.manifest
        assert manifest is not None
        rows: list[tuple[str, Any]] = [
            ("instance", manifest.instance_name),
            ("instance_hash", manifest.instance_hash),
            ("size", f"{manifest.num_facilities}x{manifest.num_clients}"),
            ("seed", manifest.seed),
            ("version", manifest.version),
            ("wall_seconds", manifest.wall_seconds),
        ]
        rows.extend(sorted(manifest.parameters.items()))
        for key in ("rounds", "total_messages", "total_bits", "max_message_bits"):
            if key in manifest.metrics:
                rows.append((key, manifest.metrics[key]))
        for key, value in sorted(manifest.outcome.items()):
            if key == "open_facilities":
                value = len(value)
                key = "num_open"
            rows.append((key, value))
        return render_table(("field", "value"), rows, title="run manifest")


def _absorb_line(report: TraceReport, record: Mapping[str, Any]) -> None:
    kind = record.get("type")
    if kind == "event":
        report.num_events += 1
        report.events_by_name[str(record.get("event", "?"))] += 1
        report.events_by_round[int(record.get("round", -1))] += 1
    elif kind == "round":
        report.timeline.append(RoundTimelineEntry.from_dict(record))
    elif kind == "manifest":
        report.manifest = RunRecord.from_dict(record)
    else:
        report.malformed_lines += 1


def load_trace_file(path: str | Path) -> TraceReport:
    """Parse one JSONL trace file into a :class:`TraceReport`.

    Also picks up the sidecar ``<trace>.manifest.json`` when the trace
    itself carries no manifest line (e.g. a run killed mid-flight still
    has whatever the flush-on-round discipline persisted).
    """
    trace_path = Path(path)
    if not trace_path.exists():
        raise ReproError(f"trace file not found: {trace_path}")
    report = TraceReport(path=trace_path)
    with trace_path.open("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                report.malformed_lines += 1
                continue
            if not isinstance(record, dict):
                report.malformed_lines += 1
                continue
            _absorb_line(report, record)
    if report.manifest is None:
        sidecar = manifest_path_for(trace_path)
        if sidecar.exists():
            report.manifest = RunRecord.load_json(sidecar)
    return report


def inspect_trace(path: str | Path, slowest: int = 5) -> str:
    """One-call convenience: parse and render the inspection report."""
    return load_trace_file(path).render(slowest=slowest)


def inspect_digests(path: str | Path, other: str | Path | None = None) -> str:
    """Summarize a flight recording's per-round state digests.

    Renders one row per checkpoint (label, digest, field count) plus the
    recording's final Merkle root. With a second recording, the two are
    diffed and the first divergent checkpoint is flagged in the table and
    detailed below it (``repro inspect A --digests B``). Used by
    ``repro inspect --digests``; ``repro divergence`` gives the full
    bisection report.
    """
    from repro.obs.recorder import diff_recordings, load_recording

    recording = load_recording(path)
    report = None
    if other is not None:
        report = diff_recordings(recording, load_recording(other))
    rows = []
    for checkpoint in recording.checkpoints:
        marker = ""
        if report is not None and not report.identical:
            marker = (
                "<- first divergence"
                if checkpoint.label == report.label
                else ""
            )
        rows.append(
            (checkpoint.label, checkpoint.digest, len(checkpoint.fields), marker)
        )
    title = (
        f"state digests: {path} (engine={recording.engine}, "
        f"final={recording.final_digest()})"
    )
    sections = [
        render_table(("checkpoint", "digest", "fields", ""), rows, title=title)
    ]
    if report is not None:
        sections.append(report.render())
    return "\n\n".join(sections)
