"""Run manifests: what was run, with what inputs, at what cost.

A :class:`RunRecord` is the self-describing header of a run artifact. It
pins the instance (name + content hash), the seeds and parameters, the
package version, the wall-clock spent, and the final network metrics —
everything a benchmark trajectory or a CI diff needs to decide whether two
runs are comparable. It is appended to the JSONL trace as a
``{"type": "manifest", ...}`` line and also written as a standalone
``<trace>.manifest.json`` next to the trace output.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.fl.instance import FacilityLocationInstance

__all__ = ["RunRecord", "instance_digest", "manifest_path_for"]


def instance_digest(instance: FacilityLocationInstance) -> str:
    """Short content hash of an instance (costs + shape, not the name).

    Two instances with the same digest describe the same optimization
    problem, regardless of how they were generated or what they are
    called; trace diffs across code versions key on this.
    """
    hasher = hashlib.sha256()
    hasher.update(
        f"{instance.num_facilities}x{instance.num_clients}".encode("ascii")
    )
    hasher.update(instance.opening_costs.tobytes())
    hasher.update(instance.connection_costs.tobytes())
    return hasher.hexdigest()[:16]


def manifest_path_for(trace_path: str | Path) -> Path:
    """Sidecar manifest path next to a trace file (``x.jsonl`` -> ``x.manifest.json``)."""
    path = Path(trace_path)
    return path.with_name(path.stem + ".manifest.json")


@dataclass(frozen=True)
class RunRecord:
    """Manifest of one algorithm run.

    ``parameters`` holds the algorithm knobs (k, variant, rounding, ...);
    ``metrics`` is the flat :meth:`repro.net.metrics.NetworkMetrics.summary`
    dict; ``timeline_summary`` condenses the per-round timeline (full
    per-round entries live in the trace itself as ``round`` lines).
    """

    instance_name: str
    instance_hash: str
    num_facilities: int
    num_clients: int
    seed: int
    parameters: Mapping[str, Any] = field(default_factory=dict)
    version: str = ""
    wall_seconds: float = 0.0
    metrics: Mapping[str, Any] = field(default_factory=dict)
    timeline_summary: Mapping[str, Any] = field(default_factory=dict)
    outcome: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation, tagged for the JSONL trace format."""
        record = asdict(self)
        record["type"] = "manifest"
        return record

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_dict`; ignores the tag and unknown keys."""
        return cls(
            instance_name=str(data.get("instance_name", "")),
            instance_hash=str(data.get("instance_hash", "")),
            num_facilities=int(data.get("num_facilities", 0)),
            num_clients=int(data.get("num_clients", 0)),
            seed=int(data.get("seed", 0)),
            parameters=dict(data.get("parameters", {})),
            version=str(data.get("version", "")),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            metrics=dict(data.get("metrics", {})),
            timeline_summary=dict(data.get("timeline_summary", {})),
            outcome=dict(data.get("outcome", {})),
        )

    def write_json(self, path: str | Path) -> Path:
        """Write the manifest as a standalone pretty-printed JSON file."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return target

    @classmethod
    def load_json(cls, path: str | Path) -> "RunRecord":
        """Read a manifest written by :meth:`write_json`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def from_run(
        cls,
        result: Any,
        seed: int,
        parameters: Mapping[str, Any],
        wall_seconds: float,
        extras: Mapping[str, Any] | None = None,
    ) -> "RunRecord":
        """Build a manifest from a :class:`~repro.core.algorithm.DistributedRunResult`.

        ``extras`` (e.g. ``ratio_vs_lp``, ``invariant_violations``) is
        merged into the outcome block, where regression comparison finds it.
        """
        from repro import __version__

        instance = result.instance
        timeline = result.timeline
        outcome: dict[str, Any] = {
            "feasible": result.feasible,
            "open_facilities": sorted(result.open_facilities),
            "unserved_clients": len(result.unserved_clients),
        }
        if result.feasible:
            outcome["cost"] = result.cost
        if extras:
            outcome.update(extras)
        return cls(
            instance_name=instance.name,
            instance_hash=instance_digest(instance),
            num_facilities=instance.num_facilities,
            num_clients=instance.num_clients,
            seed=int(seed),
            parameters=dict(parameters),
            version=__version__,
            wall_seconds=float(wall_seconds),
            metrics=result.metrics.summary(),
            timeline_summary={
                "rounds": len(timeline),
                "total_wall_ms": timeline.total_wall_ms,
                "total_messages": timeline.total_messages,
            },
            outcome=outcome,
        )
