"""Observability: traces, timelines, manifests, metrics, probes, diffs.

The paper's claims are *resource* claims — ``O(k)`` rounds and
``O(log N)``-bit messages — and *quality* claims — the approximation
trade-off curve. This subpackage turns a simulation into auditable
artifacts on both axes:

* :mod:`repro.obs.sinks` — trace implementations beyond the in-memory
  default: a streaming JSONL sink (flushes at round boundaries), a bounded
  ring buffer for long runs, and a multiplexer that fans events out to
  several traces at once. All satisfy the :class:`repro.net.trace.Trace`
  interface, so the simulator needs no API change.
* :mod:`repro.obs.timeline` — per-round telemetry (wall-clock, messages,
  bits, drops, alive/finished node counts, probe observations) recorded by
  the simulator.
* :mod:`repro.obs.registry` — a lightweight metrics registry
  (counter/gauge/histogram with labels) that the simulator, the network
  metrics and the protocol nodes publish into; snapshots to plain dicts.
* :mod:`repro.obs.probes` — per-round convergence probes: dual budgets,
  tight/frozen counts, induced primal cost and the anytime
  approximation-ratio estimate against a lower bound.
* :mod:`repro.obs.watchdogs` — opt-in invariant checks (assignment
  feasibility, dual monotonicity, CONGEST bit envelope) that log
  structured ``invariant_violation`` events or raise in strict mode.
* :mod:`repro.obs.manifest` — the :class:`RunRecord` manifest capturing
  what was run (instance, seed, parameters, version) and what it cost
  (timings, final metrics), written next to trace output.
* :mod:`repro.obs.inspect` — reads a JSONL trace back and renders
  per-round tables, per-kind message counts and the slowest rounds
  (surfaced as ``repro inspect``).
* :mod:`repro.obs.compare` — loads two run artifacts (manifests, traces,
  BENCH files) and diffs their metrics under configurable regression
  thresholds (surfaced as ``repro compare``).
* :mod:`repro.obs.bench` — converts benchmark artifacts into versioned
  ``BENCH_<name>.json`` trajectory files (surfaced as ``repro bench``).
* :mod:`repro.obs.spans` — span-based distributed tracing: causal
  context propagation across process boundaries, wall/CPU/memory
  profiling per span, JSONL and Chrome ``trace_event`` exporters, and
  span-tree rendering with critical-path highlighting (surfaced as
  ``repro trace``).
* :mod:`repro.obs.slo` — declarative latency / error-rate objectives
  evaluated against registry instruments, with burn-rate reporting
  (surfaced as ``repro serve --slo`` and the CI gate).
* :mod:`repro.obs.metrics_io` — the versioned metrics-snapshot file
  format shared by ``repro solve --metrics-out`` and the service
  ``metrics`` wire op.
* :mod:`repro.obs.recorder` — the deterministic flight recorder:
  per-round Merkle-style digests of the full execution state for every
  engine, recording artifacts with hermetic replay, and divergence
  bisection down to the first differing round → node → field/message
  (surfaced as ``repro record`` / ``replay`` / ``divergence``).
* :mod:`repro.obs.provenance` — the causal message-provenance DAG logged
  in full-record mode; answers "why did this facility open?" (surfaced
  as ``repro explain``).
"""

from repro.obs.bench import (
    bench_path_for,
    collect_records,
    load_bench,
    write_bench,
)
from repro.obs.compare import (
    ComparisonReport,
    MetricDiff,
    compare_metrics,
    compare_paths,
    extract_metrics,
    parse_threshold,
)
from repro.obs.inspect import (
    TraceReport,
    inspect_digests,
    inspect_trace,
    load_trace_file,
)
from repro.obs.manifest import RunRecord, manifest_path_for
from repro.obs.metrics_io import (
    histogram_quantile,
    load_snapshot,
    snapshot_payload,
    write_snapshot,
)
from repro.obs.probes import RoundProbe, SolutionQualityProbe
from repro.obs.provenance import ProvenanceEvent, ProvenanceLog
from repro.obs.recorder import (
    Checkpoint,
    DivergenceReport,
    FlightRecorder,
    diff_recordings,
    load_recording,
    record_run,
    replay_recording,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sinks import JsonlTraceSink, MultiTrace, RingBufferTrace
from repro.obs.slo import (
    ErrorRateSLO,
    LatencySLO,
    SLOMonitor,
    SLOResult,
    default_service_slos,
    load_slo_spec,
)
from repro.obs.spans import (
    Span,
    SpanContext,
    Tracer,
    chrome_trace,
    critical_path,
    load_spans_jsonl,
    render_span_tree,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.timeline import RoundTimeline, RoundTimelineEntry
from repro.obs.watchdogs import (
    CongestWatchdog,
    DualMonotonicityWatchdog,
    FeasibilityWatchdog,
    ServiceGuaranteeWatchdog,
    Watchdog,
    default_watchdogs,
)

__all__ = [
    "JsonlTraceSink",
    "MultiTrace",
    "RingBufferTrace",
    "RoundTimeline",
    "RoundTimelineEntry",
    "RunRecord",
    "manifest_path_for",
    "TraceReport",
    "inspect_digests",
    "inspect_trace",
    "load_trace_file",
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # probes
    "RoundProbe",
    "SolutionQualityProbe",
    # watchdogs
    "Watchdog",
    "FeasibilityWatchdog",
    "DualMonotonicityWatchdog",
    "CongestWatchdog",
    "ServiceGuaranteeWatchdog",
    "default_watchdogs",
    # comparison
    "ComparisonReport",
    "MetricDiff",
    "compare_metrics",
    "compare_paths",
    "extract_metrics",
    "parse_threshold",
    # bench trajectories
    "bench_path_for",
    "collect_records",
    "load_bench",
    "write_bench",
    # spans
    "Span",
    "SpanContext",
    "Tracer",
    "chrome_trace",
    "critical_path",
    "load_spans_jsonl",
    "render_span_tree",
    "write_chrome_trace",
    "write_spans_jsonl",
    # SLOs
    "ErrorRateSLO",
    "LatencySLO",
    "SLOMonitor",
    "SLOResult",
    "default_service_slos",
    "load_slo_spec",
    # metrics snapshots
    "histogram_quantile",
    "load_snapshot",
    "snapshot_payload",
    "write_snapshot",
    # flight recording + provenance
    "Checkpoint",
    "DivergenceReport",
    "FlightRecorder",
    "ProvenanceEvent",
    "ProvenanceLog",
    "diff_recordings",
    "load_recording",
    "record_run",
    "replay_recording",
]
