"""Observability: trace sinks, per-round timelines, run manifests.

The paper's claims are *resource* claims — ``O(k)`` rounds and
``O(log N)``-bit messages — so a run's evidence must be more than a final
cost number. This subpackage turns a simulation into auditable artifacts:

* :mod:`repro.obs.sinks` — trace implementations beyond the in-memory
  default: a streaming JSONL sink (flushes at round boundaries), a bounded
  ring buffer for long runs, and a multiplexer that fans events out to
  several traces at once. All satisfy the :class:`repro.net.trace.Trace`
  interface, so the simulator needs no API change.
* :mod:`repro.obs.timeline` — per-round telemetry (wall-clock, messages,
  bits, drops, alive/finished node counts) recorded by the simulator.
* :mod:`repro.obs.manifest` — the :class:`RunRecord` manifest capturing
  what was run (instance, seed, parameters, version) and what it cost
  (timings, final metrics), written next to trace output.
* :mod:`repro.obs.inspect` — reads a JSONL trace back and renders
  per-round tables, per-kind message counts and the slowest rounds
  (surfaced as ``repro inspect``).
"""

from repro.obs.inspect import TraceReport, inspect_trace, load_trace_file
from repro.obs.manifest import RunRecord, manifest_path_for
from repro.obs.sinks import JsonlTraceSink, MultiTrace, RingBufferTrace
from repro.obs.timeline import RoundTimeline, RoundTimelineEntry

__all__ = [
    "JsonlTraceSink",
    "MultiTrace",
    "RingBufferTrace",
    "RoundTimeline",
    "RoundTimelineEntry",
    "RunRecord",
    "manifest_path_for",
    "TraceReport",
    "inspect_trace",
    "load_trace_file",
]
