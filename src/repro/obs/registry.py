"""A lightweight in-process metrics registry (counters, gauges, histograms).

The registry is the *numeric* side of observability, complementing the
event trace: components publish named time-series-style instruments into a
shared :class:`MetricsRegistry`, and a run snapshot (:meth:`MetricsRegistry.
snapshot`) serializes every instrument to a plain dict for manifests, BENCH
records and regression diffs.

Design constraints, in order:

1. **Zero overhead when absent.** Nothing in the hot path may pay for an
   unused registry: the simulator and :meth:`repro.net.node.RoundContext.
   count` guard every publish behind a single ``registry is None`` check,
   mirroring the ``trace.enabled`` guard of event logging.
2. **No dependencies.** This is deliberately not a Prometheus client; it is
   a few dicts with the same vocabulary (``Counter`` only goes up,
   ``Gauge`` is set, ``Histogram`` buckets observations) so the names
   transfer if the system ever exports for real.
3. **Labels are cheap.** A labeled instrument keys its values by the sorted
   ``(key, value)`` tuple; ``("kind", "prp")`` and friends cost one tuple
   construction per publish.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds: a geometric ladder wide enough
#: for both millisecond timings and message/bit counts.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_dict(key: LabelKey) -> dict[str, str]:
    return dict(key)


class _Instrument:
    """Shared name/description plumbing of every instrument kind."""

    kind = "instrument"

    def __init__(self, name: str, description: str = "") -> None:
        if not name:
            raise ValueError("instrument name must be non-empty")
        self.name = name
        self.description = description

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable dump of every labeled series this instrument holds."""
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        """Current count of the labeled series (0 when never incremented)."""
        return self._values.get(_label_key(labels), 0)

    @property
    def total(self) -> float:
        """Sum across every label combination."""
        return sum(self._values.values())

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "description": self.description,
            "values": [
                {"labels": _labels_dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
            "total": self.total,
        }


class Gauge(_Instrument):
    """Last-written value, optionally split by labels."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Overwrite the labeled series with ``value``."""
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Adjust the labeled series by ``amount`` (may be negative)."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float | None:
        """Current value of the labeled series (None when never set)."""
        return self._values.get(_label_key(labels))

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "description": self.description,
            "values": [
                {"labels": _labels_dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }


class _HistogramSeries:
    __slots__ = ("count", "total", "minimum", "maximum", "bucket_counts")

    def __init__(self, num_buckets: int) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        # One slot per bucket bound plus the overflow (+inf) slot.
        self.bucket_counts = [0] * (num_buckets + 1)


class Histogram(_Instrument):
    """Distribution of observations over fixed bucket bounds.

    ``buckets`` are inclusive upper bounds in increasing order; an implicit
    ``+inf`` bucket catches everything beyond the last bound. The snapshot
    reports cumulative bucket counts (Prometheus convention) plus
    count/sum/min/max per label set.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Iterable[float] | None = None,
    ) -> None:
        super().__init__(name, description)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram {name!r} buckets must be non-empty and increasing"
            )
        self.buckets = tuple(float(b) for b in bounds)
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the labeled series."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        value = float(value)
        series.count += 1
        series.total += value
        series.minimum = min(series.minimum, value)
        series.maximum = max(series.maximum, value)
        series.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1

    def count(self, **labels: Any) -> int:
        """Number of observations in the labeled series."""
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def mean(self, **labels: Any) -> float:
        """Mean observation of the labeled series (0 when empty)."""
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        return series.total / series.count

    def quantile(self, q: float, **labels: Any) -> float:
        """Estimate the ``q``-quantile (0 < q <= 1) of the labeled series.

        Standard bucketed estimation (the Prometheus ``histogram_quantile``
        scheme): find the bucket holding the target rank and interpolate
        linearly inside it, clamping the answer to the observed
        ``[min, max]`` so coarse buckets cannot report values outside the
        data. Returns 0.0 for an empty series.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        rank = q * series.count
        running = 0
        for index, count in enumerate(series.bucket_counts):
            running += count
            if running >= rank:
                if index >= len(self.buckets):
                    # Overflow bucket: the max observed is the best bound.
                    return series.maximum
                upper = self.buckets[index]
                lower = self.buckets[index - 1] if index > 0 else 0.0
                fraction = (
                    (rank - (running - count)) / count if count else 0.0
                )
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, series.minimum), series.maximum)
        return series.maximum

    def snapshot(self) -> dict[str, Any]:
        values = []
        for key, series in sorted(self._series.items()):
            cumulative = []
            running = 0
            for count in series.bucket_counts:
                running += count
                cumulative.append(running)
            values.append(
                {
                    "labels": _labels_dict(key),
                    "count": series.count,
                    "sum": series.total,
                    "min": series.minimum if series.count else None,
                    "max": series.maximum if series.count else None,
                    "mean": series.total / series.count if series.count else 0.0,
                    "cumulative_buckets": cumulative,
                    # Raw per-bucket counts ride beside the cumulative view
                    # so snapshots can re-derive any quantile offline (see
                    # repro.obs.metrics_io.histogram_quantile).
                    "bucket_counts": list(series.bucket_counts),
                }
            )
        return {
            "type": self.kind,
            "description": self.description,
            "buckets": list(self.buckets) + ["+inf"],
            "values": values,
        }


class MetricsRegistry:
    """Named instrument store; get-or-create semantics per instrument.

    Asking twice for the same name returns the same instrument; asking for
    an existing name with a *different* kind raises, because two components
    silently sharing a name across kinds is always a bug.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        existing = self._instruments.get(name)
        if existing is None:
            instrument = Histogram(name, description, buckets=buckets)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(existing, Histogram):
            raise ValueError(
                f"metric {name!r} already registered as a {existing.kind}"
            )
        return existing

    def _get_or_create(self, cls: type, name: str, description: str):
        existing = self._instruments.get(name)
        if existing is None:
            instrument = cls(name, description)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(existing, cls):
            raise ValueError(
                f"metric {name!r} already registered as a {existing.kind}"
            )
        return existing

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """Serialize every instrument to a plain-JSON dict, keyed by name."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }

    def scalars(self) -> dict[str, float]:
        """Flat ``name{labels} -> value`` view for regression comparison.

        Counters and gauges contribute their values directly; histograms
        contribute ``<name>.count``, ``<name>.sum`` and ``<name>.mean``.
        Label sets are rendered Prometheus-style: ``name{k=v,k2=v2}``.
        """
        flat: dict[str, float] = {}
        for name, instrument in sorted(self._instruments.items()):
            if isinstance(instrument, (Counter, Gauge)):
                for key, value in sorted(instrument._values.items()):
                    flat[_flat_name(name, key)] = value
            elif isinstance(instrument, Histogram):
                for key, series in sorted(instrument._series.items()):
                    base = _flat_name(name, key)
                    flat[f"{base}.count"] = series.count
                    flat[f"{base}.sum"] = series.total
                    if series.count:
                        flat[f"{base}.mean"] = series.total / series.count
        return flat


def _flat_name(name: str, key: LabelKey) -> str:
    if not key:
        return name
    labels = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{labels}}}"
