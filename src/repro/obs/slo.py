"""Declarative service-level objectives evaluated over registry metrics.

An SLO here is a statement like "95% of solved requests complete within
500 ms" (latency) or "99% of responses are ok" (error rate), evaluated
against the live instruments in a :class:`~repro.obs.registry.
MetricsRegistry` — the same histograms and counters
:class:`~repro.service.service.SolveService` already publishes.
:class:`SLOMonitor` turns a list of objectives into pass/fail results
with *burn rate*: the ratio of observed error budget consumption to the
allowed budget (1.0 = exactly on budget, >1.0 = burning too fast), the
standard alerting quantity of SRE practice.

Objectives are plain data (JSON-loadable via :func:`load_slo_spec`), so
the same spec file drives ``repro serve --slo`` in production and the CI
trace-smoke gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.exceptions import ReproError
from repro.obs.registry import Counter, Histogram, MetricsRegistry

__all__ = [
    "LatencySLO",
    "ErrorRateSLO",
    "SLOResult",
    "SLOMonitor",
    "load_slo_spec",
    "default_service_slos",
]


@dataclass(frozen=True)
class SLOResult:
    """Outcome of evaluating one objective.

    ``observed`` is the measured compliance fraction (1.0 = perfect),
    ``objective`` the target fraction, and ``burn_rate`` the error-budget
    consumption ratio ``(1 - observed) / (1 - objective)``. ``ok`` means
    the objective is met; ``detail`` carries the human-readable evidence
    (the quantile value, the error counts, ...).
    """

    name: str
    kind: str
    objective: float
    observed: float
    burn_rate: float
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation for wire/CI output."""
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "observed": self.observed,
            "burn_rate": self.burn_rate,
            "ok": self.ok,
            "detail": self.detail,
        }


def _burn_rate(observed: float, objective: float) -> float:
    """Error-budget consumption ratio; infinite budget at objective=1."""
    budget = 1.0 - objective
    if budget <= 0.0:
        return 0.0 if observed >= 1.0 else float("inf")
    return max(0.0, (1.0 - observed)) / budget


@dataclass(frozen=True)
class LatencySLO:
    """"``objective`` of observations in ``histogram`` are <= ``threshold_s``".

    Compliance is the estimated fraction of observations at or below the
    threshold, interpolated inside the covering bucket (the same scheme as
    :meth:`~repro.obs.registry.Histogram.quantile`, inverted). An empty
    histogram is vacuously compliant — no traffic has burned no budget.
    """

    name: str
    histogram: str
    threshold_s: float
    objective: float = 0.95
    labels: Mapping[str, str] | None = None

    kind = "latency"

    def evaluate(self, registry: MetricsRegistry) -> SLOResult:
        """Measure compliance against the registry's current state."""
        labels = dict(self.labels or {})
        if self.histogram not in registry:
            return self._result(1.0, "no such histogram; vacuously compliant")
        instrument = registry.histogram(self.histogram)
        count = instrument.count(**labels)
        if count == 0:
            return self._result(1.0, "no observations")
        compliant = _fraction_at_or_below(instrument, self.threshold_s, labels)
        quantile = instrument.quantile(min(max(self.objective, 1e-9), 1.0), **labels)
        return self._result(
            compliant,
            f"p{self.objective * 100:g}={quantile * 1e3:.1f}ms vs "
            f"threshold {self.threshold_s * 1e3:.1f}ms over {count} obs",
        )

    def _result(self, observed: float, detail: str) -> SLOResult:
        return SLOResult(
            name=self.name,
            kind=self.kind,
            objective=self.objective,
            observed=observed,
            burn_rate=_burn_rate(observed, self.objective),
            ok=observed >= self.objective,
            detail=detail,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON spec entry (inverse of :func:`load_slo_spec`)."""
        spec: dict[str, Any] = {
            "type": self.kind,
            "name": self.name,
            "histogram": self.histogram,
            "threshold_s": self.threshold_s,
            "objective": self.objective,
        }
        if self.labels:
            spec["labels"] = dict(self.labels)
        return spec


@dataclass(frozen=True)
class ErrorRateSLO:
    """"``objective`` of ``counter`` events carry the good label".

    ``good_labels`` selects the success series (e.g. ``status=ok``);
    the denominator is the counter's total across all label sets. An
    idle counter is vacuously compliant.
    """

    name: str
    counter: str
    good_labels: Mapping[str, str]
    objective: float = 0.99

    kind = "error_rate"

    def evaluate(self, registry: MetricsRegistry) -> SLOResult:
        """Measure compliance against the registry's current state."""
        if self.counter not in registry:
            return self._result(1.0, "no such counter; vacuously compliant")
        instrument = registry.counter(self.counter)
        total = instrument.total
        if total <= 0:
            return self._result(1.0, "no events")
        good = instrument.value(**dict(self.good_labels))
        return self._result(
            good / total, f"{good:g} good of {total:g} total events"
        )

    def _result(self, observed: float, detail: str) -> SLOResult:
        return SLOResult(
            name=self.name,
            kind=self.kind,
            objective=self.objective,
            observed=observed,
            burn_rate=_burn_rate(observed, self.objective),
            ok=observed >= self.objective,
            detail=detail,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON spec entry (inverse of :func:`load_slo_spec`)."""
        return {
            "type": self.kind,
            "name": self.name,
            "counter": self.counter,
            "good_labels": dict(self.good_labels),
            "objective": self.objective,
        }


def _fraction_at_or_below(
    histogram: Histogram, threshold: float, labels: Mapping[str, str]
) -> float:
    """Estimated P(x <= threshold) from bucketed counts.

    Exact at bucket boundaries; linear interpolation inside the bucket
    containing the threshold (the inverse of the quantile estimator, so
    the two agree on which side of an objective a distribution falls).
    """
    key_series = histogram._series.get(  # noqa: SLF001 - same-package helper
        tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    )
    if key_series is None or key_series.count == 0:
        return 1.0
    running = 0.0
    for index, count in enumerate(key_series.bucket_counts):
        upper = (
            histogram.buckets[index]
            if index < len(histogram.buckets)
            else float("inf")
        )
        lower = histogram.buckets[index - 1] if index > 0 else 0.0
        if threshold >= upper:
            running += count
            continue
        if threshold <= lower:
            break
        # Threshold falls inside this bucket: interpolate.
        if upper == float("inf"):
            top = max(key_series.maximum, lower)
            width = max(top - lower, 1e-12)
        else:
            width = upper - lower
        running += count * min(max((threshold - lower) / width, 0.0), 1.0)
        break
    return min(running / key_series.count, 1.0)


class SLOMonitor:
    """Evaluates a set of objectives against one metrics registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        slos: Sequence[Any],
    ) -> None:
        self.registry = registry
        self.slos = tuple(slos)

    def evaluate(self) -> list[SLOResult]:
        """Evaluate every objective; results in declaration order."""
        return [slo.evaluate(self.registry) for slo in self.slos]

    def all_ok(self) -> bool:
        """True when every objective is currently met."""
        return all(result.ok for result in self.evaluate())

    def render(self, results: Sequence[SLOResult] | None = None) -> str:
        """Fixed-width report, one line per objective."""
        if results is None:
            results = self.evaluate()
        lines = ["SLO                        status  objective  observed  burn"]
        for r in results:
            lines.append(
                f"{r.name:<26} {'OK' if r.ok else 'BREACH':>6}  "
                f"{r.objective:>9.4f}  {r.observed:>8.4f}  "
                f"{'inf' if r.burn_rate == float('inf') else f'{r.burn_rate:.2f}':>4}"
                f"  {r.detail}"
            )
        return "\n".join(lines)


def default_service_slos() -> list[Any]:
    """The stock objectives for ``repro serve``: availability + latency.

    Availability: 99% of completions are ``status=ok`` (timeouts,
    rejections and errors all burn budget). Latency: 95% of solved
    requests complete within 2 s of admission — loose enough for CI
    hardware, tight enough to catch a stalled batcher.
    """
    return [
        ErrorRateSLO(
            name="availability",
            counter="service.responses",
            good_labels={"status": "ok"},
            objective=0.99,
        ),
        LatencySLO(
            name="latency_p95",
            histogram="service.latency.seconds",
            threshold_s=2.0,
            objective=0.95,
        ),
    ]


def load_slo_spec(source: str | Path | Mapping[str, Any]) -> list[Any]:
    """Load objectives from a JSON spec (path or already-decoded dict).

    Schema: ``{"slos": [{"type": "latency"|"error_rate", ...}, ...]}``;
    per-type fields mirror :class:`LatencySLO` / :class:`ErrorRateSLO`
    constructor arguments. The string ``"default"`` names the stock
    :func:`default_service_slos` set.
    """
    if isinstance(source, (str, Path)):
        if str(source) == "default":
            return default_service_slos()
        path = Path(source)
        if not path.exists():
            raise ReproError(f"SLO spec not found: {path}")
        data: Mapping[str, Any] = json.loads(path.read_text())
    else:
        data = source
    entries: Iterable[Mapping[str, Any]] = data.get("slos", [])
    slos: list[Any] = []
    for entry in entries:
        kind = str(entry.get("type", ""))
        if kind == "latency":
            slos.append(
                LatencySLO(
                    name=str(entry["name"]),
                    histogram=str(entry["histogram"]),
                    threshold_s=float(entry["threshold_s"]),
                    objective=float(entry.get("objective", 0.95)),
                    labels=dict(entry.get("labels", {})) or None,
                )
            )
        elif kind == "error_rate":
            slos.append(
                ErrorRateSLO(
                    name=str(entry["name"]),
                    counter=str(entry["counter"]),
                    good_labels=dict(entry.get("good_labels", {})),
                    objective=float(entry.get("objective", 0.99)),
                )
            )
        else:
            raise ReproError(
                f"unknown SLO type {kind!r}; expected 'latency' or 'error_rate'"
            )
    if not slos:
        raise ReproError("SLO spec contains no objectives")
    return slos
