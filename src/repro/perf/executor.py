"""Deterministic process-pool fan-out for sweep grids.

Every experiment sweep and chaos grid in the repo reduces to mapping a
pure function over a list of independent *cells* — one (instance, k,
seed, fault) configuration each. :class:`SweepExecutor` parallelizes
exactly that shape while keeping the serial semantics:

* **Ordered merge.** Results come back in cell order (via
  ``concurrent.futures.Executor.map``), so the merged output is
  byte-identical to running the cells serially — parallelism is purely a
  wall-clock optimization, never a semantics change. Every cell carries
  its own seeds; nothing about the decomposition perturbs any random
  stream.
* **Spawn-safe payloads.** Worker functions must be module-level (their
  qualified name is how child interpreters import them) and cells must
  pickle; both are validated eagerly with a clear error instead of the
  pool's opaque pickling traceback, so the executor also works on
  platforms whose default start method is ``spawn``.
* **In-process fallback.** ``workers=1`` (the default) runs cells in a
  plain loop with no pool, no pickling and no subprocess — the executor
  can be threaded through every sweep helper unconditionally.

The per-cell work here is milliseconds to seconds of pure Python/numpy,
so process fan-out beats threads (the GIL) despite the fork cost; the
pool is bounded by the cell count to avoid spawning idle workers.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import ReproError

__all__ = ["SweepExecutor"]


@dataclass(frozen=True)
class SweepExecutor:
    """Maps a worker function over sweep cells, serially or in a pool.

    Parameters
    ----------
    workers:
        Process count. ``1`` runs in-process (no pool); higher values
        fan out over a ``ProcessPoolExecutor``.
    chunksize:
        Cells handed to a worker per dispatch. The default of 1 gives
        the best load balance for heterogeneous cells; raise it when
        cells are tiny and dispatch overhead dominates.
    """

    workers: int = 1
    chunksize: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ReproError(f"workers must be >= 1, got {self.workers}")
        if self.chunksize < 1:
            raise ReproError(f"chunksize must be >= 1, got {self.chunksize}")

    def map_cells(
        self,
        worker: Callable[[Any], Any],
        cells: Iterable[Any],
    ) -> list[Any]:
        """Apply ``worker`` to every cell, returning results in cell order.

        The output is identical — element for element — whatever
        ``workers`` is; tests assert bit-identical records between
        ``workers=1`` and ``workers=4`` sweeps.
        """
        items: Sequence[Any] = list(cells)
        if self.workers == 1 or len(items) <= 1:
            return [worker(cell) for cell in items]
        _check_spawn_safe(worker, items)
        max_workers = min(self.workers, len(items))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(worker, items, chunksize=self.chunksize))


def _check_spawn_safe(worker: Callable[[Any], Any], items: Sequence[Any]) -> None:
    """Fail fast, with a actionable message, on un-shippable payloads."""
    qualname = getattr(worker, "__qualname__", "")
    if "<locals>" in qualname or not getattr(worker, "__module__", None):
        raise ReproError(
            f"worker {qualname or worker!r} is not spawn-safe: parallel "
            "sweeps require a module-level function (child interpreters "
            "import it by qualified name)"
        )
    try:
        pickle.dumps(items[0])
    except Exception as error:
        raise ReproError(
            f"sweep cell {type(items[0]).__name__} is not picklable and "
            f"cannot be shipped to worker processes: {error}"
        ) from error
