"""Picklable sweep cells and their module-level worker functions.

A *cell* is one self-contained unit of sweep work: the instance (numpy
arrays pickle cheaply at experiment sizes), the full run configuration,
and nothing else — no open file handles, no simulator state. The worker
functions live at module level so :class:`~repro.perf.executor.
SweepExecutor` can ship them to spawned interpreters by qualified name.

Workers return :class:`CellOutcome`, a flattened plain-data summary of a
run (costs, open set, assignment, network metrics, diagnostics) rather
than the live :class:`~repro.core.algorithm.DistributedRunResult`:
result objects drag the whole timeline/solution graph through pickle,
while outcomes are a few hundred bytes and carry exactly what the
experiment aggregations consume. ``repaired_cost`` is computed inside
the worker (repair needs the instance, which the parent may not want to
re-touch) and is ``NaN`` when the run was infeasible beyond repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.algorithm import (
    DistributedFacilityLocation,
    DistributedRunResult,
    Variant,
)
from repro.core.dual_ascent_nodes import RoundingPolicy
from repro.core.healing import SelfHealingPolicy
from repro.core.parameters import TradeoffParameters
from repro.core.sequential_sim import run_sequential
from repro.fl.instance import FacilityLocationInstance
from repro.net.faults import FaultPlan
from repro.net.reliability import ReliabilityPolicy

__all__ = [
    "CellOutcome",
    "SequentialCell",
    "SolveCell",
    "run_sequential_cell",
    "run_solve_cell",
]


@dataclass(frozen=True)
class CellOutcome:
    """Plain-data summary of one run, sufficient for every aggregation."""

    cost: float  # NaN when the run left clients unserved
    feasible: bool
    open_facilities: tuple[int, ...]
    assignment: tuple[tuple[int, int], ...]  # sorted (client, facility)
    unserved: tuple[int, ...]
    rounds: int
    total_messages: int
    total_bits: int
    max_message_bits: int
    mean_message_bits: float
    diagnostics: Mapping[str, Any]
    repaired_cost: float  # NaN when no repair exists


@dataclass(frozen=True)
class SolveCell:
    """One distributed-run configuration (message-passing simulator)."""

    instance: FacilityLocationInstance
    k: int
    variant: str = Variant.GREEDY.value
    seed: int = 0
    rounding: RoundingPolicy | None = None
    open_fraction: float | None = None
    fault_plan: FaultPlan | None = None
    reliability: ReliabilityPolicy | None = None
    healing: SelfHealingPolicy | None = None
    params: TradeoffParameters | None = None
    truncate_rounds: int | None = None


@dataclass(frozen=True)
class SequentialCell:
    """One sequential-emulation configuration (no network simulation).

    ``shards`` applies to the columnar engine only (every other engine
    rejects values other than 1); by the sharding determinism contract
    it never changes the cell's outcome, only its execution layout.
    """

    instance: FacilityLocationInstance
    k: int
    variant: str = Variant.GREEDY.value
    seed: int = 0
    rounding: RoundingPolicy | None = None
    open_fraction: float | None = None
    engine: str = "vectorized"
    shards: int = 1


def run_solve_cell(cell: SolveCell) -> CellOutcome:
    """Execute one distributed run and flatten it into a CellOutcome."""
    kwargs: dict[str, Any] = {}
    if cell.rounding is not None:
        kwargs["rounding"] = cell.rounding
    if cell.open_fraction is not None:
        kwargs["open_fraction"] = cell.open_fraction
    if cell.fault_plan is not None:
        kwargs["fault_plan"] = cell.fault_plan
    if cell.reliability is not None:
        kwargs["reliability"] = cell.reliability
    if cell.healing is not None:
        kwargs["healing"] = cell.healing
    if cell.params is not None:
        kwargs["params"] = cell.params
    runner = DistributedFacilityLocation(
        cell.instance, cell.k, variant=cell.variant, seed=cell.seed, **kwargs
    )
    if cell.truncate_rounds is not None:
        result = runner.run_truncated(cell.truncate_rounds)
    else:
        result = runner.run()
    return _outcome(result)


def run_sequential_cell(cell: SequentialCell) -> CellOutcome:
    """Execute one sequential emulation and flatten it into a CellOutcome."""
    kwargs: dict[str, Any] = {}
    if cell.rounding is not None:
        kwargs["rounding"] = cell.rounding
    if cell.open_fraction is not None:
        kwargs["open_fraction"] = cell.open_fraction
    result = run_sequential(
        cell.instance,
        k=cell.k,
        variant=cell.variant,
        seed=cell.seed,
        engine=cell.engine,
        shards=cell.shards,
        **kwargs,
    )
    return CellOutcome(
        cost=result.cost,
        feasible=True,
        open_facilities=tuple(sorted(result.open_facilities)),
        assignment=tuple(sorted(result.assignment.items())),
        unserved=(),
        rounds=0,
        total_messages=0,
        total_bits=0,
        max_message_bits=0,
        mean_message_bits=0.0,
        diagnostics={},
        repaired_cost=result.cost,
    )


def _outcome(result: DistributedRunResult) -> CellOutcome:
    cost = result.cost if result.feasible else float("nan")
    try:
        repaired_cost = result.repaired_solution().cost
    except Exception:
        repaired_cost = float("nan")
    assignment: tuple[tuple[int, int], ...] = ()
    if result.solution is not None:
        assignment = tuple(sorted(result.solution.assignment.items()))
    return CellOutcome(
        cost=cost,
        feasible=result.feasible,
        open_facilities=tuple(sorted(result.open_facilities)),
        assignment=assignment,
        unserved=tuple(result.unserved_clients),
        rounds=int(result.metrics.rounds),
        total_messages=int(result.metrics.total_messages),
        total_bits=int(result.metrics.total_bits),
        max_message_bits=int(result.metrics.max_message_bits),
        mean_message_bits=float(result.metrics.mean_message_bits),
        diagnostics=dict(result.diagnostics),
        repaired_cost=float(repaired_cost),
    )
