"""Performance layer: parallel sweeps, memo caches, perf suites.

``repro.perf`` is the harness that makes large evaluation campaigns
cheap (see docs/PERFORMANCE.md):

* :class:`~repro.perf.executor.SweepExecutor` — deterministic
  process-pool fan-out of (instance, k, seed, fault) grid cells whose
  merged output is byte-identical to a serial run;
* :mod:`~repro.perf.cells` — picklable cell payloads and module-level
  worker functions the executor can ship to spawned interpreters;
* :mod:`~repro.perf.cache` — instance and LP-lower-bound memo caches
  keyed by the run manifest's instance digest, so repeated sweep cells
  skip regeneration and LP re-solves;
* :mod:`~repro.perf.suite` — the ``repro bench --suite micro|macro``
  perf suites emitting ``BENCH_*.json`` trajectory files that the
  ``repro compare`` regression gate consumes.
"""

from repro.perf.cache import (
    cache_stats,
    cached_instance,
    cached_lp_value,
    clear_caches,
)
from repro.perf.cells import (
    CellOutcome,
    SequentialCell,
    SolveCell,
    run_sequential_cell,
    run_solve_cell,
)
from repro.perf.executor import SweepExecutor
from repro.perf.suite import run_perf_suite

__all__ = [
    "CellOutcome",
    "SequentialCell",
    "SolveCell",
    "SweepExecutor",
    "cache_stats",
    "cached_instance",
    "cached_lp_value",
    "clear_caches",
    "run_perf_suite",
    "run_sequential_cell",
    "run_solve_cell",
]
