"""Memo caches for the expensive per-sweep-cell setup work.

A sweep over (k, seed) grids re-uses one instance across dozens of
cells, and most experiments divide every measured cost by the *same* LP
lower bound. Before this layer each experiment regenerated and re-solved
those on every call; the caches here make repeated cells pay only for
the protocol run itself.

Keys follow the observability layer's identity notions:

* **instances** are keyed by their generation recipe
  ``(family, m, n, seed)`` — :func:`~repro.fl.generators.make_instance`
  is deterministic, and instances are immutable (read-only arrays), so a
  cached object is safe to share between runs, threads and forked
  workers;
* **LP bounds** are keyed by :func:`~repro.obs.manifest.instance_digest`
  — the same content hash run manifests record — so any equal-content
  instance hits, however it was constructed (generated, loaded from
  JSON, or unpickled in a worker).

Both caches are bounded FIFO (oldest entry evicted) so unbounded sweeps
cannot grow memory without limit, and both count hits/misses for the
perf suite and tests. Forked pool workers inherit a snapshot of the
parent's caches and keep their own copies from then on — memoization is
per-process, which is correct because cached values are pure functions
of their keys.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.baselines import solve_lp
from repro.fl.generators import make_instance
from repro.fl.instance import FacilityLocationInstance
from repro.obs.manifest import instance_digest

__all__ = [
    "cache_stats",
    "cached_instance",
    "cached_lp_value",
    "clear_caches",
]

#: Bound on each cache; at experiment sizes an instance is ~100 KB, so
#: the worst case stays well under typical worker memory budgets.
MAX_ENTRIES = 128

_instances: OrderedDict[tuple[str, int, int, int], FacilityLocationInstance]
_instances = OrderedDict()
_lp_values: OrderedDict[str, float] = OrderedDict()
_stats = {
    "instance_hits": 0,
    "instance_misses": 0,
    "lp_hits": 0,
    "lp_misses": 0,
}


def cached_instance(
    family: str, m: int, n: int, seed: int
) -> FacilityLocationInstance:
    """Memoized :func:`~repro.fl.generators.make_instance`."""
    key = (str(family), int(m), int(n), int(seed))
    hit = _instances.get(key)
    if hit is not None:
        _stats["instance_hits"] += 1
        return hit
    _stats["instance_misses"] += 1
    instance = make_instance(family, m, n, seed)
    _remember(_instances, key, instance)
    return instance


def cached_lp_value(instance: FacilityLocationInstance) -> float:
    """Memoized LP lower bound, keyed by the instance's content digest."""
    key = instance_digest(instance)
    hit = _lp_values.get(key)
    if hit is not None:
        _stats["lp_hits"] += 1
        return hit
    _stats["lp_misses"] += 1
    value = float(solve_lp(instance).value)
    _remember(_lp_values, key, value)
    return value


def cache_stats() -> dict[str, int]:
    """Hit/miss counters plus current sizes (for tests and the suite)."""
    return {
        **_stats,
        "instance_entries": len(_instances),
        "lp_entries": len(_lp_values),
    }


def clear_caches() -> None:
    """Drop every cached entry and reset the counters."""
    _instances.clear()
    _lp_values.clear()
    for key in _stats:
        _stats[key] = 0


def _remember(cache: OrderedDict, key: Any, value: Any) -> None:
    cache[key] = value
    while len(cache) > MAX_ENTRIES:
        cache.popitem(last=False)
