"""The ``repro bench --suite micro|macro`` perf suites.

Each suite measures the same three things at a different scale and
writes one deterministic-by-construction ``BENCH_<name>.json``
trajectory point (see :mod:`repro.obs.bench`) that ``repro compare``
can gate in CI:

* ``emulator_greedy`` / ``emulator_dual`` — single-core speedup of the
  vectorized sequential emulation over the pure-Python loop engine, with
  the two engines cross-checked for identical open sets and assignments
  on every timed run;
* ``sweep_emulation`` — a (family, k, seed) grid of sequential cells run
  the **legacy** way (loop engine, no memo caches, in-process) and the
  **optimized** way (vectorized engine, warm caches,
  :class:`~repro.perf.executor.SweepExecutor` fan-out), with the
  parallel output compared element-for-element against a serial
  optimized run;
* ``sweep_distributed`` — a (k, seed) grid on the message-passing
  simulator, serial vs parallel, reporting cells/sec and rounds/sec.

Every record carries ``inverse_speedup`` style ratios (lower is better)
alongside raw wall-clock so the CI gate can use machine-independent
thresholds; ``byte_identical``/``identical`` are 1.0/0.0 flags that a
threshold of 1.0 turns into hard correctness gates.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable

from repro.baselines import solve_lp
from repro.core.algorithm import Variant
from repro.exceptions import ReproError
from repro.fl.generators import make_instance
from repro.obs.bench import write_bench
from repro.perf.cache import cache_stats, cached_instance, cached_lp_value, clear_caches
from repro.perf.cells import (
    SequentialCell,
    SolveCell,
    run_sequential_cell,
    run_solve_cell,
)
from repro.perf.executor import SweepExecutor

__all__ = ["SUITES", "run_perf_suite"]

SUITES = ("micro", "macro", "scale")

#: Per-suite sizing. ``micro`` is the CI gate (seconds); ``macro`` is the
#: committed trajectory point backing docs/PERFORMANCE.md (a minute or two).
_CONFIGS: dict[str, dict[str, Any]] = {
    "micro": {
        "emulator": {"m": 30, "n": 150, "k": 16, "repeats": 2},
        "sweep": {
            "families": ("uniform", "euclidean"),
            "m": 20,
            "n": 80,
            "k_values": (4, 9),
            "seeds": (0, 1, 2),
        },
        "solve": {"family": "euclidean", "m": 12, "n": 36, "k": 9, "seeds": (0, 1)},
        "lp_repeats": 3,
    },
    "macro": {
        "emulator": {"m": 60, "n": 300, "k": 25, "repeats": 3},
        "sweep": {
            "families": ("uniform", "euclidean", "clustered", "set_cover"),
            "m": 30,
            "n": 120,
            "k_values": (4, 16, 49),
            "seeds": (0, 1, 2, 3, 4),
        },
        "solve": {"family": "euclidean", "m": 20, "n": 60, "k": 16, "seeds": (0, 1, 2)},
        "lp_repeats": 5,
    },
}

#: The ``scale`` suite ladder: columnar solves at m+n = 10^4 → 10^6 on
#: natively sparse instances (client degree 3), greedy variant, k=8.
#: Each rung also names the shard count its sharded-identity check uses.
_SCALE_SIZES: tuple[tuple[str, int, int, int], ...] = (
    ("scale_10k", 200, 9_800, 2),
    ("scale_100k", 2_000, 98_000, 2),
    ("scale_1m", 20_000, 980_000, 4),
)
_SCALE_K = 8
_SCALE_SEED = 7


def run_perf_suite(
    suite: str,
    workers: int = 1,
    out: str | Path = ".",
    name: str | None = None,
    max_nodes: int | None = None,
) -> Path:
    """Run one perf suite and write its ``BENCH_<name>.json``.

    ``name`` defaults to the suite name for ``macro`` and ``scale`` (the
    committed repo-root trajectory file is ``BENCH_macro.json``; the
    scale ladder commits as ``benchmarks/baselines/BENCH_scale.json``)
    and to ``perf_micro`` for ``micro`` (matching the committed CI
    baseline under ``benchmarks/baselines/``). Raises
    :class:`ReproError` if any cross-engine or serial/parallel
    equivalence check fails — a suite that measured a *wrong* fast path
    must not emit a trajectory point.

    ``max_nodes`` (scale suite only) skips ladder rungs with more than
    that many nodes; the committed full-ladder baseline still gates the
    rungs a reduced CI run *does* produce, because ``repro compare``
    treats one-sided records as informational, not regressions.
    """
    if suite not in SUITES:
        raise ReproError(f"unknown perf suite {suite!r}; expected one of {SUITES}")
    if name is None:
        name = suite if suite in ("macro", "scale") else "perf_micro"
    records: dict[str, dict[str, Any]] = {}
    if suite == "scale":
        records["scale_equivalence"] = _scale_equivalence_record()
        for record_name, m, n, shards in _SCALE_SIZES:
            if max_nodes is not None and m + n > max_nodes:
                continue
            records[record_name] = _scale_solve_record(record_name, m, n, shards)
        return write_bench(name, records, out)
    config = _CONFIGS[suite]
    for variant in (Variant.GREEDY, Variant.DUAL_ASCENT):
        key = f"emulator_{'greedy' if variant is Variant.GREEDY else 'dual'}"
        records[key] = _emulator_record(variant, workers=workers, **config["emulator"])
    records["sweep_emulation"] = _sweep_emulation_record(
        workers=workers, **config["sweep"]
    )
    records["sweep_distributed"] = _sweep_distributed_record(
        workers=workers, **config["solve"]
    )
    records["bound_cache"] = _bound_cache_record(
        repeats=config["lp_repeats"], **{
            key: config["solve"][key] for key in ("family", "m", "n")
        }
    )
    records["simulator_churn"] = _simulator_churn_record(
        **{key: config["solve"][key] for key in ("family", "m", "n", "k")}
    )
    return write_bench(name, records, out)


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _engine_divergence_detail(
    instance: Any, k: int, seed: int, variant: str = Variant.GREEDY.value
) -> str:
    """Bisect a loop/vectorized disagreement via the flight recorder.

    Re-runs the offending cell under both sequential engines with
    recording on and renders the :class:`~repro.obs.recorder.
    DivergenceReport`, so the equivalence-check error names the first
    divergent checkpoint, node and field instead of just "diverged".
    """
    from repro.obs.recorder import diff_recordings, record_run

    left = record_run(instance, engine="loop", k=k, seed=seed, variant=variant)
    right = record_run(
        instance, engine="vectorized", k=k, seed=seed, variant=variant
    )
    return diff_recordings(left, right).render()


def _emulator_record(
    variant: Variant, m: int, n: int, k: int, repeats: int, workers: int
) -> dict[str, Any]:
    """Loop vs vectorized engine on one instance; engines must agree."""
    from repro.core.sequential_sim import run_sequential

    instance = cached_instance("euclidean", m, n, 3)
    loop_seconds = 0.0
    vec_seconds = 0.0
    identical = True
    for seed in range(repeats):
        elapsed, loop = _timed(
            lambda: run_sequential(instance, k=k, seed=seed, variant=variant, engine="loop")
        )
        loop_seconds += elapsed
        elapsed, vec = _timed(
            lambda: run_sequential(
                instance, k=k, seed=seed, variant=variant, engine="vectorized"
            )
        )
        vec_seconds += elapsed
        identical = identical and (
            loop.open_facilities == vec.open_facilities
            and loop.assignment == vec.assignment
        )
    # Deeper than the final-answer check above: one recorded run per
    # engine, compared checkpoint by checkpoint (per-iteration state
    # digests), gated in CI like ``identical``.
    from repro.obs.recorder import diff_recordings, record_run

    digest_identical = diff_recordings(
        record_run(instance, engine="loop", k=k, seed=0, variant=variant.value),
        record_run(
            instance, engine="vectorized", k=k, seed=0, variant=variant.value
        ),
    ).identical
    return {
        "source": "perf-suite",
        "wall_seconds": vec_seconds,
        "params": {"m": m, "n": n, "k": k, "repeats": repeats, "workers": workers},
        "metrics": {
            "loop_seconds": loop_seconds,
            "vectorized_seconds": vec_seconds,
            "speedup": loop_seconds / max(vec_seconds, 1e-9),
            "inverse_speedup": vec_seconds / max(loop_seconds, 1e-9),
            "identical": float(identical),
            "digest_identical": float(digest_identical),
        },
    }


def _sweep_emulation_record(
    families: tuple[str, ...],
    m: int,
    n: int,
    k_values: tuple[int, ...],
    seeds: tuple[int, ...],
    workers: int,
) -> dict[str, Any]:
    """The headline macro number: legacy serial sweep vs optimized parallel.

    *Legacy* reproduces the pre-perf-layer path cell for cell: regenerate
    the instance, re-solve the LP bound, and emulate with the loop
    engine, all in-process. *Optimized* is the shipped path: memo caches,
    vectorized engine, executor fan-out.
    """

    def legacy() -> list[tuple[Any, ...]]:
        results = []
        for family in families:
            for k in k_values:
                for seed in seeds:
                    instance = make_instance(family, m, n, 3)
                    bound = max(float(solve_lp(instance).value), 1e-12)
                    cell = SequentialCell(instance=instance, k=k, seed=seed, engine="loop")
                    outcome = run_sequential_cell(cell)
                    results.append((outcome.cost / bound, outcome.open_facilities))
        return results

    def optimized(executor: SweepExecutor) -> list[tuple[Any, ...]]:
        cells = []
        bounds = []
        for family in families:
            instance = cached_instance(family, m, n, 3)
            bound = max(cached_lp_value(instance), 1e-12)
            for k in k_values:
                for seed in seeds:
                    cells.append(SequentialCell(instance=instance, k=k, seed=seed))
                    bounds.append(bound)
        outcomes = executor.map_cells(run_sequential_cell, cells)
        return [
            (outcome.cost / bound, outcome.open_facilities)
            for outcome, bound in zip(outcomes, bounds)
        ]

    clear_caches()
    legacy_seconds, legacy_results = _timed(legacy)
    clear_caches()
    serial_seconds, serial_results = _timed(lambda: optimized(SweepExecutor()))
    clear_caches()
    parallel_seconds, parallel_results = _timed(
        lambda: optimized(SweepExecutor(workers=workers))
    )
    if parallel_results != serial_results:
        raise ReproError(
            "perf suite: parallel sweep output diverged from the serial run"
        )
    if legacy_results != serial_results:
        # Map the first mismatching flat index back to its (family, k,
        # seed) cell and bisect it with the flight recorder.
        grid = [
            (family, k, seed)
            for family in families
            for k in k_values
            for seed in seeds
        ]
        index = next(
            i
            for i, (a, b) in enumerate(zip(legacy_results, serial_results))
            if a != b
        )
        family, k, seed = grid[index]
        detail = _engine_divergence_detail(
            cached_instance(family, m, n, 3), k=k, seed=seed
        )
        raise ReproError(
            "perf suite: vectorized sweep output diverged from the loop "
            f"engine (cell family={family} k={k} seed={seed})\n{detail}"
        )
    cells = len(legacy_results)
    return {
        "source": "perf-suite",
        "wall_seconds": parallel_seconds,
        "params": {
            "families": list(families),
            "m": m,
            "n": n,
            "k_values": list(k_values),
            "seeds": list(seeds),
            "workers": workers,
        },
        "metrics": {
            "cells": float(cells),
            "legacy_serial_seconds": legacy_seconds,
            "optimized_serial_seconds": serial_seconds,
            "optimized_parallel_seconds": parallel_seconds,
            "cells_per_second": cells / max(parallel_seconds, 1e-9),
            # The headline: the shipped configuration (vectorized engine,
            # warm caches, `workers` processes) against the pre-perf-layer
            # serial path, on the same grid.
            "speedup": legacy_seconds / max(parallel_seconds, 1e-9),
            "speedup_serial": legacy_seconds / max(serial_seconds, 1e-9),
            "inverse_speedup": parallel_seconds / max(legacy_seconds, 1e-9),
            "byte_identical": 1.0,
        },
    }


def _sweep_distributed_record(
    family: str, m: int, n: int, k: int, seeds: tuple[int, ...], workers: int
) -> dict[str, Any]:
    """Message-simulator grid, serial vs parallel, rounds/sec throughput."""
    instance = cached_instance(family, m, n, 3)
    cells = [
        SolveCell(instance=instance, k=k, variant=variant, seed=seed)
        for variant in (Variant.GREEDY.value, Variant.DUAL_ASCENT.value)
        for seed in seeds
    ]
    serial_seconds, serial_outcomes = _timed(
        lambda: SweepExecutor().map_cells(run_solve_cell, cells)
    )
    parallel_seconds, parallel_outcomes = _timed(
        lambda: SweepExecutor(workers=workers).map_cells(run_solve_cell, cells)
    )
    if parallel_outcomes != serial_outcomes:
        raise ReproError(
            "perf suite: parallel distributed sweep diverged from the serial run"
        )
    total_rounds = sum(outcome.rounds for outcome in serial_outcomes)
    best_seconds = min(serial_seconds, parallel_seconds)
    return {
        "source": "perf-suite",
        "wall_seconds": parallel_seconds,
        "params": {
            "family": family,
            "m": m,
            "n": n,
            "k": k,
            "seeds": list(seeds),
            "workers": workers,
        },
        "metrics": {
            "cells": float(len(cells)),
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "cells_per_second": len(cells) / max(best_seconds, 1e-9),
            "rounds_per_second": total_rounds / max(best_seconds, 1e-9),
            "byte_identical": 1.0,
        },
    }


def _scale_equivalence_record() -> dict[str, Any]:
    """Oracle-sized four-way digest identity: the scale suite's correctness
    anchor. Every rung above it runs only the columnar engine (nothing
    else fits), so this record proves — per variant, at shards 1 and 4 —
    that the engine being scaled is checkpoint-for-checkpoint identical
    to the loop oracle before any big number is trusted."""
    from repro.obs.recorder import diff_recordings, record_run

    m, n, k, seed = 12, 48, 5, 3
    instance = cached_instance("sparse", m, n, seed)
    compared = 0
    elapsed_total = 0.0
    for variant in (Variant.GREEDY.value, Variant.DUAL_ASCENT.value):
        elapsed, oracle = _timed(
            lambda: record_run(instance, engine="loop", k=k, seed=seed, variant=variant)
        )
        elapsed_total += elapsed
        for engine, shards in (("vectorized", 1), ("columnar", 1), ("columnar", 4)):
            elapsed, other = _timed(
                lambda: record_run(
                    instance, engine=engine, k=k, seed=seed, variant=variant,
                    shards=shards,
                )
            )
            elapsed_total += elapsed
            report = diff_recordings(oracle, other)
            compared += 1
            if not report.identical:
                raise ReproError(
                    f"scale suite: {engine} (shards={shards}, {variant}) "
                    f"diverged from the loop oracle\n{report.render()}"
                )
    return {
        "source": "perf-suite",
        "wall_seconds": elapsed_total,
        "params": {"m": m, "n": n, "k": k, "seed": seed, "engine": "all", "shards": [1, 4]},
        "metrics": {
            # Any divergence raises above, so reaching this return proves
            # every compared pair was digest-identical.
            "digest_identical": 1.0,
            "engine_pairs_compared": float(compared),
        },
    }


def _scale_solve_record(name: str, m: int, n: int, shards: int) -> dict[str, Any]:
    """One rung of the scale ladder: a native-sparse columnar solve.

    Measures end-to-end wall clock and tracemalloc peak (the gated
    ``mem_peak_kb`` budget), then re-solves with ``shards`` worker
    processes and requires byte-equal solution arrays — so every rung
    carries its own sharding-identity proof at full size, where the
    flight recorder would be too heavy to afford.
    """
    from repro.core.columnar import ColumnarInstance, solve_columnar
    from repro.obs.spans import measure_peak_memory

    cinst = ColumnarInstance.generate_sparse(m, n, seed=_SCALE_SEED)

    def solve_once():
        return solve_columnar(
            cinst, k=_SCALE_K, variant=Variant.GREEDY, seed=_SCALE_SEED
        )

    elapsed, timed = _timed(lambda: measure_peak_memory(solve_once))
    result, mem_peak_kb = timed
    if not result.feasible:
        raise ReproError(f"scale suite: columnar solve infeasible at {name}")
    sharded_elapsed, sharded = _timed(
        lambda: solve_columnar(
            cinst, k=_SCALE_K, variant=Variant.GREEDY, seed=_SCALE_SEED,
            shards=shards,
        )
    )
    import numpy as np

    sharded_identical = bool(
        np.array_equal(result.open_mask, sharded.open_mask)
        and np.array_equal(result.assignment, sharded.assignment)
    )
    if not sharded_identical:
        raise ReproError(
            f"scale suite: shards={shards} solution diverged from shards=1 at {name}"
        )
    return {
        "source": "perf-suite",
        "wall_seconds": elapsed,
        "params": {
            "m": m,
            "n": n,
            "nodes": m + n,
            "degree": 3,
            "k": _SCALE_K,
            "seed": _SCALE_SEED,
            "engine": "columnar",
            "shards": shards,
            "variant": "greedy",
        },
        "metrics": {
            "solve_seconds": elapsed,
            "sharded_solve_seconds": sharded_elapsed,
            "mem_peak_kb": mem_peak_kb,
            "cost": float(result.cost),
            "rounds": float(result.metrics.rounds),
            "total_messages": float(result.metrics.total_messages),
            "nodes_per_second": (m + n) / max(elapsed, 1e-9),
            "feasible": float(result.feasible),
            "sharded_identical": float(sharded_identical),
        },
    }


def _simulator_churn_record(family: str, m: int, n: int, k: int) -> dict[str, Any]:
    """Allocation churn of the object-graph round engine's hot paths.

    Two measurements: (a) the inbox ordering itself — the shipped
    two-pass single-attribute stable sort against the tuple-key
    ``attrgetter("sender", "kind")`` sort it replaced, on realistic
    nearly-sender-sorted inboxes; (b) a full message-passing solve's
    round throughput and tracemalloc peak, which the pooled inbox
    buffers keep flat across rounds.
    """
    import operator

    from repro.net.message import Message
    from repro.obs.spans import measure_peak_memory

    kinds = ("alp", "acc", "off", "srv")
    inboxes = [
        [
            Message(sender=s, receiver=0, kind=kinds[(s * 7 + i) % 4], round_sent=1)
            for i, s in enumerate(sorted(range(64)) * 4)
        ]
        for _ in range(200)
    ]
    tuple_key = operator.attrgetter("sender", "kind")
    primary = operator.attrgetter("sender")
    secondary = operator.attrgetter("kind")

    def sort_tuple() -> None:
        for inbox in inboxes:
            sorted(inbox, key=tuple_key)

    def sort_twopass() -> None:
        for inbox in inboxes:
            copy = list(inbox)
            copy.sort(key=secondary)
            copy.sort(key=primary)

    sort_tuple()  # warm both paths before timing
    sort_twopass()
    tuple_seconds, _ = _timed(sort_tuple)
    twopass_seconds, _ = _timed(sort_twopass)

    instance = cached_instance(family, m, n, 3)
    cell = SolveCell(instance=instance, k=k, variant=Variant.GREEDY.value, seed=0)
    elapsed, (outcome, mem_peak_kb) = _timed(
        lambda: measure_peak_memory(lambda: run_solve_cell(cell))
    )
    return {
        "source": "perf-suite",
        "wall_seconds": elapsed,
        "params": {"family": family, "m": m, "n": n, "k": k, "engine": "simulator"},
        "metrics": {
            "sort_tuple_seconds": tuple_seconds,
            "sort_twopass_seconds": twopass_seconds,
            "sort_speedup": tuple_seconds / max(twopass_seconds, 1e-9),
            "solve_seconds": elapsed,
            "rounds_per_second": outcome.rounds / max(elapsed, 1e-9),
            "messages_per_second": outcome.total_messages / max(elapsed, 1e-9),
            "mem_peak_kb": mem_peak_kb,
        },
    }


def _bound_cache_record(family: str, m: int, n: int, repeats: int) -> dict[str, Any]:
    """What the LP memo cache saves on repeated same-instance cells."""
    clear_caches()
    instance = cached_instance(family, m, n, 3)

    def uncached() -> float:
        value = 0.0
        for _ in range(repeats):
            value = float(solve_lp(instance).value)
        return value

    def cached() -> float:
        value = 0.0
        for _ in range(repeats):
            value = cached_lp_value(instance)
        return value

    uncached_seconds, uncached_value = _timed(uncached)
    cached_seconds, cached_value = _timed(cached)
    if cached_value != uncached_value:
        raise ReproError("perf suite: cached LP bound diverged from solve_lp")
    stats = cache_stats()
    return {
        "source": "perf-suite",
        "wall_seconds": cached_seconds,
        "params": {"family": family, "m": m, "n": n, "repeats": repeats},
        "metrics": {
            "uncached_seconds": uncached_seconds,
            "cached_seconds": cached_seconds,
            "speedup": uncached_seconds / max(cached_seconds, 1e-9),
            "lp_hits": float(stats["lp_hits"]),
            "lp_misses": float(stats["lp_misses"]),
        },
    }
