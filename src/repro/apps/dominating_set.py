"""Minimum (weighted) dominating set via the set-cover reduction.

A dominating set of a graph is a vertex subset such that every vertex is
in the set or adjacent to it. Minimum dominating set is set cover over
*closed neighborhoods*: vertex ``v`` offers the set ``N(v) ∪ {v}`` at
weight ``w(v)``. Chained with the set-cover → facility-location reduction
(:mod:`repro.apps.set_cover`), the PODC 2005 distributed algorithm yields
a distributed dominating-set approximation — the problem family the
distributed covering-LP lineage (Kuhn–Wattenhofer) was built around, which
makes this the most faithful "downstream application" of the paper's
technique.

Note the communication graph of the reduction is *not* the original
graph: it is the bipartite incidence graph between vertices-as-sets and
vertices-as-elements, whose links connect ``u`` and ``v`` iff
``dist_G(u, v) <= 1``. A round on it is implementable in O(1) rounds of
the original graph, so round counts transfer up to a constant.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.set_cover import (
    SetCoverInstance,
    solve_set_cover_distributed,
    solve_set_cover_greedy,
)
from repro.exceptions import InvalidInstanceError
from repro.net.metrics import NetworkMetrics
from repro.net.topology import Topology

__all__ = [
    "dominating_set_to_set_cover",
    "solve_dominating_set_distributed",
    "solve_dominating_set_greedy",
    "is_dominating_set",
]


def dominating_set_to_set_cover(
    graph: Topology, weights: Sequence[float] | None = None
) -> SetCoverInstance:
    """Encode dominating set on ``graph`` as weighted set cover.

    ``weights`` defaults to all-ones (the cardinality problem).
    """
    n = graph.num_nodes
    if weights is None:
        weights = [1.0] * n
    if len(weights) != n:
        raise InvalidInstanceError(
            f"need one weight per vertex: {len(weights)} != {n}"
        )
    sets = tuple(
        frozenset(graph.neighbors(v) | {v}) for v in range(n)
    )
    return SetCoverInstance(
        num_elements=n, sets=sets, weights=tuple(float(w) for w in weights)
    )


def is_dominating_set(graph: Topology, chosen: frozenset[int]) -> bool:
    """Whether ``chosen`` dominates every vertex of ``graph``."""
    dominated = set(chosen)
    for v in chosen:
        dominated |= graph.neighbors(v)
    return len(dominated) == graph.num_nodes


def solve_dominating_set_distributed(
    graph: Topology,
    k: int,
    weights: Sequence[float] | None = None,
    seed: int = 0,
) -> tuple[frozenset[int], NetworkMetrics]:
    """Distributed dominating set at round budget ``Theta(k)``.

    Returns the dominating vertex set and the network metrics of the
    underlying facility-location run.
    """
    instance = dominating_set_to_set_cover(graph, weights)
    solution, metrics = solve_set_cover_distributed(instance, k=k, seed=seed)
    assert is_dominating_set(graph, solution.chosen)
    return solution.chosen, metrics


def solve_dominating_set_greedy(
    graph: Topology, weights: Sequence[float] | None = None
) -> frozenset[int]:
    """Sequential greedy (``H_Δ``-style guarantee) via the reduction."""
    instance = dominating_set_to_set_cover(graph, weights)
    solution = solve_set_cover_greedy(instance)
    assert is_dominating_set(graph, solution.chosen)
    return solution.chosen
