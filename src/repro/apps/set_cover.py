"""Weighted set cover through the facility-location reduction.

Weighted set cover — pick a minimum-weight family of sets covering every
element — is exactly non-metric facility location with zero connection
costs: a set becomes a facility whose opening cost is the set's weight,
each element becomes a client, and an element-client can connect (at cost
0) precisely to the sets containing it. The reduction is cost-preserving
in both directions, so the distributed trade-off algorithm, the greedy
baseline and the LP bound all transfer verbatim — including their
guarantees (greedy's ``H_n``; the distributed algorithm's
``O(sqrt(k) (m rho)^(1/sqrt k) log(m+n))`` with ``rho`` the weight spread).

In the distributed reading, each set and each element is a network node,
and a set can talk exactly to the elements it contains — the natural
model for, e.g., coverage problems in sensor networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.baselines.greedy import greedy_solve
from repro.baselines.lp import solve_lp
from repro.core.algorithm import solve_distributed
from repro.exceptions import InvalidInstanceError
from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution
from repro.net.metrics import NetworkMetrics

__all__ = [
    "SetCoverInstance",
    "SetCoverSolution",
    "set_cover_to_facility_location",
    "solution_from_facility_location",
    "solve_set_cover_distributed",
    "solve_set_cover_greedy",
    "set_cover_lp_bound",
]


@dataclass(frozen=True)
class SetCoverInstance:
    """A weighted set-cover instance.

    Attributes
    ----------
    num_elements:
        Elements are ``0 .. num_elements-1``.
    sets:
        One frozenset of element indices per set.
    weights:
        Non-negative weight per set.
    """

    num_elements: int
    sets: tuple[frozenset[int], ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.num_elements < 1:
            raise InvalidInstanceError("need at least one element")
        if not self.sets:
            raise InvalidInstanceError("need at least one set")
        if len(self.sets) != len(self.weights):
            raise InvalidInstanceError(
                f"{len(self.sets)} sets but {len(self.weights)} weights"
            )
        covered: set[int] = set()
        for index, members in enumerate(self.sets):
            for element in members:
                if not 0 <= element < self.num_elements:
                    raise InvalidInstanceError(
                        f"set {index} contains out-of-range element {element}"
                    )
            covered |= members
        if len(covered) != self.num_elements:
            missing = sorted(set(range(self.num_elements)) - covered)[:5]
            raise InvalidInstanceError(
                f"elements {missing} are not covered by any set"
            )
        for index, weight in enumerate(self.weights):
            if not (weight >= 0 and np.isfinite(weight)):
                raise InvalidInstanceError(
                    f"set {index} has invalid weight {weight}"
                )

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return len(self.sets)

    @classmethod
    def build(
        cls,
        num_elements: int,
        sets: Iterable[Iterable[int]],
        weights: Sequence[float],
    ) -> "SetCoverInstance":
        """Convenience constructor from plain iterables."""
        return cls(
            num_elements=num_elements,
            sets=tuple(frozenset(int(e) for e in members) for members in sets),
            weights=tuple(float(w) for w in weights),
        )

    @classmethod
    def random(
        cls,
        num_sets: int,
        num_elements: int,
        seed: int,
        density: float = 0.25,
    ) -> "SetCoverInstance":
        """Random instance: each set contains each element with probability
        ``density``; uncovered elements get patched into a random set."""
        rng = np.random.default_rng(seed)
        member = rng.random((num_sets, num_elements)) < density
        for element in range(num_elements):
            if not member[:, element].any():
                member[rng.integers(0, num_sets), element] = True
        sets = tuple(
            frozenset(np.flatnonzero(member[s]).tolist()) for s in range(num_sets)
        )
        weights = tuple(rng.uniform(0.5, 1.5, size=num_sets).tolist())
        return cls(num_elements=num_elements, sets=sets, weights=weights)


@dataclass(frozen=True)
class SetCoverSolution:
    """A family of chosen sets, checked to cover every element."""

    instance: SetCoverInstance
    chosen: frozenset[int]

    def __post_init__(self) -> None:
        covered: set[int] = set()
        for index in self.chosen:
            if not 0 <= index < self.instance.num_sets:
                raise InvalidInstanceError(f"chosen set index {index} out of range")
            covered |= self.instance.sets[index]
        if len(covered) != self.instance.num_elements:
            missing = sorted(set(range(self.instance.num_elements)) - covered)[:5]
            raise InvalidInstanceError(
                f"chosen sets leave elements {missing} uncovered"
            )

    @property
    def weight(self) -> float:
        """Total weight of the chosen sets."""
        return float(sum(self.instance.weights[i] for i in self.chosen))


def set_cover_to_facility_location(
    instance: SetCoverInstance,
) -> FacilityLocationInstance:
    """The cost-preserving reduction (set = facility, element = client)."""
    connection = np.full((instance.num_sets, instance.num_elements), np.inf)
    for index, members in enumerate(instance.sets):
        for element in members:
            connection[index, element] = 0.0
    return FacilityLocationInstance(
        list(instance.weights),
        connection,
        name=f"set_cover_reduction(m={instance.num_sets},n={instance.num_elements})",
    )


def solution_from_facility_location(
    instance: SetCoverInstance, fl_solution: FacilityLocationSolution
) -> SetCoverSolution:
    """Map an FL solution back; drops sets that serve no element."""
    used = frozenset(fl_solution.assignment.values())
    return SetCoverSolution(instance=instance, chosen=used)


def solve_set_cover_distributed(
    instance: SetCoverInstance, k: int, seed: int = 0
) -> tuple[SetCoverSolution, NetworkMetrics]:
    """Run the distributed trade-off algorithm on the reduction.

    Returns the mapped set-cover solution and the network metrics of the
    underlying run (rounds `Theta(k)`, `O(log N)`-bit messages).
    """
    fl_instance = set_cover_to_facility_location(instance)
    result = solve_distributed(fl_instance, k=k, seed=seed)
    return (
        solution_from_facility_location(instance, result.solution),
        result.metrics,
    )


def solve_set_cover_greedy(instance: SetCoverInstance) -> SetCoverSolution:
    """The classical ``H_n``-approximation greedy, via the reduction."""
    fl_solution = greedy_solve(set_cover_to_facility_location(instance))
    return solution_from_facility_location(instance, fl_solution)


def set_cover_lp_bound(instance: SetCoverInstance) -> float:
    """LP relaxation lower bound on the optimal cover weight."""
    return solve_lp(set_cover_to_facility_location(instance)).value
