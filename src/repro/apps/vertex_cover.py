"""Minimum (weighted) vertex cover via the set-cover reduction.

A vertex cover picks vertices so that every edge has a chosen endpoint —
set cover with one element per *edge* and one set per *vertex* (the set of
edges incident to it). Chaining through
:mod:`repro.apps.set_cover` gives both a sequential greedy and a
distributed solver for weighted vertex cover on arbitrary graphs.

Note the caveats that come with the reduction route:

* The greedy inherits the set-cover ``H_Δ`` guarantee, *not* the better
  2-approximation of matching-based vertex-cover algorithms — this module
  is a demonstration of technique transfer, and
  :func:`matching_lower_bound` is provided so tests and users can see the
  gap.
* The reduction's communication graph is the vertex-edge incidence graph;
  one of its rounds is implementable in O(1) rounds of the original graph.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.set_cover import (
    SetCoverInstance,
    solve_set_cover_distributed,
    solve_set_cover_greedy,
)
from repro.exceptions import InvalidInstanceError
from repro.net.metrics import NetworkMetrics
from repro.net.topology import Topology

__all__ = [
    "vertex_cover_to_set_cover",
    "is_vertex_cover",
    "matching_lower_bound",
    "solve_vertex_cover_distributed",
    "solve_vertex_cover_greedy",
]


def vertex_cover_to_set_cover(
    graph: Topology, weights: Sequence[float] | None = None
) -> tuple[SetCoverInstance, list[tuple[int, int]]]:
    """Encode vertex cover on ``graph`` as weighted set cover.

    Returns the set-cover instance and the edge list fixing the
    element-index order (element ``e`` is ``edges[e]``).
    """
    n = graph.num_nodes
    if weights is None:
        weights = [1.0] * n
    if len(weights) != n:
        raise InvalidInstanceError(
            f"need one weight per vertex: {len(weights)} != {n}"
        )
    edges = sorted(graph.iter_edges())
    if not edges:
        raise InvalidInstanceError(
            "vertex cover needs at least one edge (empty covers are trivial)"
        )
    edge_index = {edge: e for e, edge in enumerate(edges)}
    sets = []
    for v in range(n):
        incident = set()
        for u in graph.neighbors(v):
            incident.add(edge_index[(min(u, v), max(u, v))])
        sets.append(frozenset(incident))
    instance = SetCoverInstance(
        num_elements=len(edges),
        sets=tuple(sets),
        weights=tuple(float(w) for w in weights),
    )
    return instance, edges


def is_vertex_cover(graph: Topology, chosen: frozenset[int]) -> bool:
    """Whether ``chosen`` touches every edge of ``graph``."""
    return all(u in chosen or v in chosen for u, v in graph.iter_edges())


def matching_lower_bound(graph: Topology) -> int:
    """Size of a greedy maximal matching — a lower bound on the minimum
    (unweighted) vertex cover, and within 2x of it."""
    matched: set[int] = set()
    size = 0
    for u, v in sorted(graph.iter_edges()):
        if u not in matched and v not in matched:
            matched.update((u, v))
            size += 1
    return size


def solve_vertex_cover_distributed(
    graph: Topology,
    k: int,
    weights: Sequence[float] | None = None,
    seed: int = 0,
) -> tuple[frozenset[int], NetworkMetrics]:
    """Distributed weighted vertex cover at round budget ``Theta(k)``."""
    instance, _edges = vertex_cover_to_set_cover(graph, weights)
    solution, metrics = solve_set_cover_distributed(instance, k=k, seed=seed)
    assert is_vertex_cover(graph, solution.chosen)
    return solution.chosen, metrics


def solve_vertex_cover_greedy(
    graph: Topology, weights: Sequence[float] | None = None
) -> frozenset[int]:
    """Sequential greedy vertex cover via the reduction."""
    instance, _edges = vertex_cover_to_set_cover(graph, weights)
    solution = solve_set_cover_greedy(instance)
    assert is_vertex_cover(graph, solution.chosen)
    return solution.chosen
