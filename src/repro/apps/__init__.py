"""Application layer: problems reducible to facility location.

The PODC 2005 technique applies beyond facility location proper; this
subpackage packages the two classic reductions as first-class APIs:

* :mod:`~repro.apps.set_cover` — weighted set cover (facility = set with
  its weight as opening cost; element-clients connect at cost 0 inside the
  set). Non-metric facility location *is* set cover plus connection costs,
  so the distributed algorithm transfers verbatim.
* :mod:`~repro.apps.dominating_set` — minimum (weighted) dominating set on
  an arbitrary graph, encoded as set cover over closed neighborhoods —
  the problem the Kuhn–Wattenhofer distributed-LP lineage was originally
  developed for.
* :mod:`~repro.apps.vertex_cover` — minimum (weighted) vertex cover,
  encoded as set cover over edge-incidence sets.
"""

from repro.apps.set_cover import (
    SetCoverInstance,
    SetCoverSolution,
    set_cover_to_facility_location,
    solve_set_cover_distributed,
    solve_set_cover_greedy,
)
from repro.apps.dominating_set import (
    dominating_set_to_set_cover,
    solve_dominating_set_distributed,
    solve_dominating_set_greedy,
)
from repro.apps.vertex_cover import (
    vertex_cover_to_set_cover,
    solve_vertex_cover_distributed,
    solve_vertex_cover_greedy,
)

__all__ = [
    "SetCoverInstance",
    "SetCoverSolution",
    "set_cover_to_facility_location",
    "solve_set_cover_distributed",
    "solve_set_cover_greedy",
    "dominating_set_to_set_cover",
    "solve_dominating_set_distributed",
    "solve_dominating_set_greedy",
    "vertex_cover_to_set_cover",
    "solve_vertex_cover_distributed",
    "solve_vertex_cover_greedy",
]
