"""repro — distributed facility-location approximation (PODC 2005 reproduction).

The public API in one import::

    from repro import solve_distributed, solve_lp
    from repro.fl.generators import uniform_instance

    instance = uniform_instance(20, 60, seed=1)
    result = solve_distributed(instance, k=9, seed=1)
    lp = solve_lp(instance)
    print(result.cost / lp.value, result.metrics.rounds)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
experiment index.
"""

from repro.core.algorithm import (
    DistributedFacilityLocation,
    DistributedRunResult,
    Variant,
    solve_distributed,
)
from repro.core.bounds import (
    approximation_envelope,
    message_bits_envelope,
    round_budget,
)
from repro.core.dual_ascent_nodes import RoundingPolicy
from repro.core.parameters import TradeoffParameters
from repro.core.sequential_sim import SequentialRunResult, run_sequential
from repro.baselines import (
    exact_solve,
    greedy_solve,
    jain_vazirani_solve,
    local_search_solve,
    lp_rounding_solve,
    mettu_plaxton_solve,
    solve_lp,
)
from repro.exceptions import (
    AlgorithmError,
    InfeasibleSolutionError,
    InvalidInstanceError,
    InvariantViolationError,
    ReproError,
    SimulationError,
    SolverError,
)
from repro.core.healing import SelfHealingPolicy
from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution
from repro.net.faults import (
    FaultPlan,
    GilbertElliottLoss,
    LinkFailure,
    NetworkPartition,
)
from repro.net.reliability import ReliabilityPolicy, ReliabilityStats
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.net.trace import NullTrace, Trace
from repro.obs import (
    JsonlTraceSink,
    MetricsRegistry,
    MultiTrace,
    RingBufferTrace,
    RoundTimeline,
    RoundTimelineEntry,
    RunRecord,
    ServiceGuaranteeWatchdog,
    SolutionQualityProbe,
    compare_metrics,
    compare_paths,
    default_watchdogs,
    inspect_trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "DistributedFacilityLocation",
    "DistributedRunResult",
    "Variant",
    "solve_distributed",
    "TradeoffParameters",
    "RoundingPolicy",
    "run_sequential",
    "SequentialRunResult",
    "SelfHealingPolicy",
    "approximation_envelope",
    "round_budget",
    "message_bits_envelope",
    # problem substrate
    "FacilityLocationInstance",
    "FacilityLocationSolution",
    # baselines
    "greedy_solve",
    "jain_vazirani_solve",
    "mettu_plaxton_solve",
    "local_search_solve",
    "lp_rounding_solve",
    "exact_solve",
    "solve_lp",
    # network substrate
    "Simulator",
    "Topology",
    "FaultPlan",
    "GilbertElliottLoss",
    "LinkFailure",
    "NetworkPartition",
    "ReliabilityPolicy",
    "ReliabilityStats",
    "Trace",
    "NullTrace",
    # observability
    "JsonlTraceSink",
    "RingBufferTrace",
    "MultiTrace",
    "RoundTimeline",
    "RoundTimelineEntry",
    "RunRecord",
    "inspect_trace",
    "MetricsRegistry",
    "SolutionQualityProbe",
    "ServiceGuaranteeWatchdog",
    "default_watchdogs",
    "compare_metrics",
    "compare_paths",
    # errors
    "ReproError",
    "InvalidInstanceError",
    "InfeasibleSolutionError",
    "SimulationError",
    "AlgorithmError",
    "SolverError",
    "InvariantViolationError",
]
