"""Serialization of instances and solutions.

Two formats are supported:

* **JSON** — lossless round-trip of instances and solutions, used for
  archiving experiment inputs alongside results;
* **ORLIB-style text** — the simple whitespace format of the classical
  OR-Library ``cap`` uncapacitated-facility-location files
  (``m n`` header, then per-facility lines of ``capacity opening_cost``,
  then per-client blocks of ``demand`` followed by ``m`` connection costs).
  Capacities and demands are ignored on read and written as 0/1, since this
  library models the uncapacitated problem.

Missing edges (``inf`` connection costs) are encoded in JSON as the string
``"inf"`` (JSON has no infinity literal) and are not representable in the
ORLIB format, which is defined only for complete bipartite instances.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance_json",
    "load_instance_json",
    "solution_to_dict",
    "solution_from_dict",
    "instance_to_orlib",
    "instance_from_orlib",
]


def _encode_cost(value: float) -> Any:
    return "inf" if math.isinf(value) else value


def _decode_cost(value: Any) -> float:
    if value == "inf":
        return math.inf
    return float(value)


def instance_to_dict(instance: FacilityLocationInstance) -> dict[str, Any]:
    """JSON-safe dictionary representation of an instance."""
    return {
        "format": "repro.fl.instance/v1",
        "name": instance.name,
        "opening_costs": instance.opening_costs.tolist(),
        "connection_costs": [
            [_encode_cost(float(v)) for v in row]
            for row in instance.connection_costs
        ],
    }


def instance_from_dict(data: dict[str, Any]) -> FacilityLocationInstance:
    """Inverse of :func:`instance_to_dict`."""
    if data.get("format") != "repro.fl.instance/v1":
        raise InvalidInstanceError(
            f"unsupported instance format {data.get('format')!r}"
        )
    connection = np.array(
        [[_decode_cost(v) for v in row] for row in data["connection_costs"]],
        dtype=float,
    )
    return FacilityLocationInstance(
        data["opening_costs"], connection, name=data.get("name", "unnamed")
    )


def save_instance_json(instance: FacilityLocationInstance, path: str | Path) -> None:
    """Write an instance to ``path`` as JSON."""
    Path(path).write_text(json.dumps(instance_to_dict(instance)))


def load_instance_json(path: str | Path) -> FacilityLocationInstance:
    """Read an instance previously written by :func:`save_instance_json`."""
    return instance_from_dict(json.loads(Path(path).read_text()))


def solution_to_dict(solution: FacilityLocationSolution) -> dict[str, Any]:
    """JSON-safe dictionary representation of a solution.

    The instance itself is not embedded; pair the dictionary with the
    instance's own serialization when archiving.
    """
    return {
        "format": "repro.fl.solution/v1",
        "open_facilities": sorted(solution.open_facilities),
        "assignment": {str(j): i for j, i in sorted(solution.assignment.items())},
        "cost": solution.cost,
    }


def solution_from_dict(
    data: dict[str, Any], instance: FacilityLocationInstance
) -> FacilityLocationSolution:
    """Inverse of :func:`solution_to_dict` against a given instance."""
    if data.get("format") != "repro.fl.solution/v1":
        raise InvalidInstanceError(
            f"unsupported solution format {data.get('format')!r}"
        )
    assignment = {int(j): int(i) for j, i in data["assignment"].items()}
    return FacilityLocationSolution(
        instance, data["open_facilities"], assignment, validate=True
    )


def instance_to_orlib(instance: FacilityLocationInstance) -> str:
    """Render a complete-bipartite instance in OR-Library ``cap`` text form.

    Raises :class:`InvalidInstanceError` for instances with missing edges,
    which the format cannot express.
    """
    if not instance.is_complete_bipartite():
        raise InvalidInstanceError(
            "ORLIB format requires a complete bipartite instance"
        )
    m, n = instance.num_facilities, instance.num_clients
    lines = [f"{m} {n}"]
    for i in range(m):
        lines.append(f"0 {instance.opening_cost(i):.10g}")
    for j in range(n):
        lines.append("1")
        costs = " ".join(
            f"{instance.connection_cost(i, j):.10g}" for i in range(m)
        )
        lines.append(costs)
    return "\n".join(lines) + "\n"


def instance_from_orlib(text: str, name: str = "orlib") -> FacilityLocationInstance:
    """Parse OR-Library ``cap``-style text into an instance.

    Tolerates arbitrary whitespace layout (the official files wrap lines at
    varying widths), ignores capacities and demands.
    """
    tokens = text.split()
    if len(tokens) < 2:
        raise InvalidInstanceError("ORLIB text too short to contain a header")
    pos = 0

    def take() -> str:
        """Consume and return the next whitespace token."""
        nonlocal pos
        if pos >= len(tokens):
            raise InvalidInstanceError("unexpected end of ORLIB text")
        token = tokens[pos]
        pos += 1
        return token

    m = int(take())
    n = int(take())
    opening = np.empty(m)
    for i in range(m):
        take()  # capacity, ignored
        opening[i] = float(take())
    connection = np.empty((m, n))
    for j in range(n):
        take()  # demand, ignored
        for i in range(m):
            connection[i, j] = float(take())
    if pos != len(tokens):
        raise InvalidInstanceError(
            f"trailing tokens in ORLIB text ({len(tokens) - pos} unread)"
        )
    return FacilityLocationInstance(opening, connection, name=name)
