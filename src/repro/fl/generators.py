"""Reproducible facility-location instance generators.

Each generator takes explicit sizes and a ``seed`` and returns a
:class:`~repro.fl.instance.FacilityLocationInstance`. Randomness always goes
through ``numpy.random.default_rng(seed)`` so that every experiment in the
repository is exactly reproducible from its recorded parameters.

Families
--------
``uniform``
    Complete bipartite, i.i.d. uniform connection and opening costs.
    Non-metric in general; the bread-and-butter random family.
``euclidean``
    Facilities and clients are points in the unit square; connection cost is
    the Euclidean distance. Metric by construction.
``clustered``
    Euclidean with clients grouped around cluster centers and facilities
    near centers — the classic "warehouses near towns" shape where good
    algorithms open roughly one facility per cluster.
``grid``
    Facilities on a regular grid, clients uniform, Manhattan distances.
    Metric.
``set_cover``
    Encodes a random set-cover instance: element-clients, set-facilities,
    zero connection cost inside a set, no edge otherwise. This is the
    hardness core of non-metric facility location.
``high_spread``
    Uniform family rescaled so the cost spread ``rho`` hits a target value;
    used by the rho-sensitivity experiment (E7).
``greedy_trap``
    The classical lower-bound instance for the greedy algorithm: one cheap
    facility covering everyone vs. a harmonic cascade of tempting
    facilities. Exercises worst-case behaviour of baselines.
``decoy``
    Hard instance for coarse threshold ladders: one good facility among
    uniformly bad decoys. With ``k = 1`` the single threshold admits every
    decoy and randomized acceptance hands them most clients; a finer
    ladder isolates the good facility. Used by ablation E12.
``sparse``
    Random bipartite graph with bounded client degree; the communication
    network is genuinely sparse, which matters for message accounting.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.fl.instance import FacilityLocationInstance

__all__ = [
    "uniform_instance",
    "euclidean_instance",
    "clustered_instance",
    "grid_instance",
    "set_cover_instance",
    "high_spread_instance",
    "greedy_trap_instance",
    "decoy_instance",
    "sparse_instance",
    "FAMILIES",
    "make_instance",
]


def uniform_instance(
    num_facilities: int,
    num_clients: int,
    seed: int,
    opening_scale: float = 3.0,
    connection_scale: float = 1.0,
) -> FacilityLocationInstance:
    """Complete bipartite instance with i.i.d. uniform costs.

    Connection costs are ``U(0.1, 1) * connection_scale`` (bounded away from
    zero so ``rho`` stays moderate); opening costs are
    ``U(0.5, 1.5) * opening_scale``.
    """
    rng = np.random.default_rng(seed)
    f = rng.uniform(0.5, 1.5, size=num_facilities) * opening_scale
    c = rng.uniform(0.1, 1.0, size=(num_facilities, num_clients)) * connection_scale
    return FacilityLocationInstance(
        f, c, name=f"uniform(m={num_facilities},n={num_clients},seed={seed})"
    )


def euclidean_instance(
    num_facilities: int,
    num_clients: int,
    seed: int,
    opening_scale: float = 0.5,
) -> FacilityLocationInstance:
    """Metric instance: uniform points in the unit square, L2 distances.

    Opening costs are ``U(0.5, 1.5) * opening_scale``, calibrated so a good
    solution opens a handful of facilities rather than one or all.
    """
    rng = np.random.default_rng(seed)
    fpos = rng.uniform(0.0, 1.0, size=(num_facilities, 2))
    cpos = rng.uniform(0.0, 1.0, size=(num_clients, 2))
    diff = fpos[:, None, :] - cpos[None, :, :]
    c = np.sqrt((diff**2).sum(axis=2))
    f = rng.uniform(0.5, 1.5, size=num_facilities) * opening_scale
    return FacilityLocationInstance(
        f, c, name=f"euclidean(m={num_facilities},n={num_clients},seed={seed})"
    )


def clustered_instance(
    num_facilities: int,
    num_clients: int,
    seed: int,
    num_clusters: int = 4,
    cluster_std: float = 0.05,
    opening_scale: float = 0.4,
) -> FacilityLocationInstance:
    """Metric instance with clients clustered around random centers.

    A fraction of facilities is placed near centers (good candidates); the
    rest is uniform (decoys). The natural optimum opens approximately one
    facility per cluster, which makes approximation gaps visible.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.15, 0.85, size=(num_clusters, 2))
    labels = rng.integers(0, num_clusters, size=num_clients)
    cpos = centers[labels] + rng.normal(0.0, cluster_std, size=(num_clients, 2))
    near = max(1, num_facilities // 2)
    flabels = rng.integers(0, num_clusters, size=near)
    fpos_near = centers[flabels] + rng.normal(0.0, cluster_std, size=(near, 2))
    fpos_far = rng.uniform(0.0, 1.0, size=(num_facilities - near, 2))
    fpos = np.vstack([fpos_near, fpos_far])
    diff = fpos[:, None, :] - cpos[None, :, :]
    c = np.sqrt((diff**2).sum(axis=2))
    f = rng.uniform(0.5, 1.5, size=num_facilities) * opening_scale
    return FacilityLocationInstance(
        f,
        c,
        name=(
            f"clustered(m={num_facilities},n={num_clients},"
            f"k={num_clusters},seed={seed})"
        ),
    )


def grid_instance(
    num_facilities: int,
    num_clients: int,
    seed: int,
    opening_scale: float = 0.6,
) -> FacilityLocationInstance:
    """Metric instance: facilities on a grid, clients uniform, L1 distance."""
    rng = np.random.default_rng(seed)
    side = max(1, int(math.isqrt(num_facilities)))
    xs = np.linspace(0.1, 0.9, side)
    grid = np.array([(x, y) for x in xs for y in xs])
    if grid.shape[0] < num_facilities:
        extra = rng.uniform(0.0, 1.0, size=(num_facilities - grid.shape[0], 2))
        grid = np.vstack([grid, extra])
    fpos = grid[:num_facilities]
    cpos = rng.uniform(0.0, 1.0, size=(num_clients, 2))
    diff = np.abs(fpos[:, None, :] - cpos[None, :, :])
    c = diff.sum(axis=2)
    f = rng.uniform(0.5, 1.5, size=num_facilities) * opening_scale
    return FacilityLocationInstance(
        f, c, name=f"grid(m={num_facilities},n={num_clients},seed={seed})"
    )


def set_cover_instance(
    num_facilities: int,
    num_clients: int,
    seed: int,
    set_density: float = 0.3,
    opening_scale: float = 1.0,
) -> FacilityLocationInstance:
    """Non-metric coverage instance encoding random set cover.

    Facility ``i`` "contains" each client independently with probability
    ``set_density``; contained clients connect at cost 0, others have no
    edge. Opening costs are uniform. Every client is guaranteed at least one
    containing facility (a random one is added when the coin flips miss).
    Minimizing cost is then exactly weighted set cover — the regime where
    the ``log(m+n)`` factor of the paper's bound is unavoidable.
    """
    rng = np.random.default_rng(seed)
    member = rng.random((num_facilities, num_clients)) < set_density
    for j in range(num_clients):
        if not member[:, j].any():
            member[rng.integers(0, num_facilities), j] = True
    c = np.where(member, 0.0, np.inf)
    f = rng.uniform(0.5, 1.5, size=num_facilities) * opening_scale
    return FacilityLocationInstance(
        f,
        c,
        name=(
            f"set_cover(m={num_facilities},n={num_clients},"
            f"p={set_density},seed={seed})"
        ),
    )


def high_spread_instance(
    num_facilities: int,
    num_clients: int,
    seed: int,
    target_rho: float = 100.0,
) -> FacilityLocationInstance:
    """Uniform-style instance whose cost spread is forced to ``target_rho``.

    Costs are drawn log-uniformly over ``[1, target_rho]`` so the spread
    coefficient ``rho`` lands close to the target; used by experiment E7 to
    probe how the ``(m rho)^(1/sqrt k)`` term behaves.
    """
    if target_rho < 1:
        raise InvalidInstanceError(f"target_rho must be >= 1, got {target_rho}")
    rng = np.random.default_rng(seed)
    span = math.log(max(target_rho, 1.0 + 1e-12))
    c = np.exp(rng.uniform(0.0, span, size=(num_facilities, num_clients)))
    f = np.exp(rng.uniform(0.0, span, size=num_facilities))
    # Pin the extremes so rho is exactly the target (up to float rounding).
    c.flat[0] = 1.0
    f[0] = float(target_rho)
    return FacilityLocationInstance(
        f,
        c,
        name=(
            f"high_spread(m={num_facilities},n={num_clients},"
            f"rho={target_rho:g},seed={seed})"
        ),
    )


def greedy_trap_instance(
    num_clients: int,
    seed: int = 0,
    epsilon: float = 0.01,
) -> FacilityLocationInstance:
    """The classical harmonic lower-bound instance for greedy set cover.

    One "global" facility covers every client at cost 0 with opening cost
    ``1 + epsilon``. Additionally, ``n`` singleton facilities cover client
    ``j`` alone with opening cost ``1 / (n - j)``. Greedy is lured into
    opening the singletons one by one (total ~ ``H_n``) while the optimum
    costs ``1 + epsilon``. ``seed`` is accepted for interface uniformity but
    unused: the instance is deterministic.
    """
    n = num_clients
    m = n + 1
    c = np.full((m, n), np.inf)
    c[0, :] = 0.0  # the global facility
    for j in range(n):
        c[j + 1, j] = 0.0
    f = np.empty(m)
    f[0] = 1.0 + epsilon
    for j in range(n):
        f[j + 1] = 1.0 / (n - j)
    return FacilityLocationInstance(
        f, c, name=f"greedy_trap(n={num_clients},eps={epsilon:g})"
    )


def decoy_instance(
    num_facilities: int,
    num_clients: int,
    seed: int,
    gap: float = 100.0,
) -> FacilityLocationInstance:
    """Hard instance for coarse threshold ladders (ablation E12).

    One *good* facility serves every client at cost ``1``; all other
    facilities are *decoys* serving every client at cost ``gap``. All
    opening costs are equal and small. With a fine efficiency ladder the
    good facility qualifies strictly before the decoys and wins everything;
    with a single scale (``k = 1``, threshold = ``eff_max``), decoys
    qualify simultaneously and randomized symmetry breaking hands them most
    clients — costing ``Theta(gap)`` times more. The measured ratio gap
    between ``k = 1`` and moderate ``k`` is the point of the instance.

    ``seed`` only perturbs costs by a tiny jitter (to avoid degenerate
    ties); the structure is deterministic.
    """
    if gap <= 1:
        raise InvalidInstanceError(f"gap must exceed 1, got {gap}")
    rng = np.random.default_rng(seed)
    c = np.full((num_facilities, num_clients), float(gap))
    c[0, :] = 1.0
    c += rng.uniform(0.0, 1e-6, size=c.shape)
    f = np.full(num_facilities, 0.1)
    return FacilityLocationInstance(
        f,
        c,
        name=f"decoy(m={num_facilities},n={num_clients},gap={gap:g},seed={seed})",
    )


def sparse_instance(
    num_facilities: int,
    num_clients: int,
    seed: int,
    client_degree: int = 3,
    opening_scale: float = 2.0,
) -> FacilityLocationInstance:
    """Sparse bipartite instance with bounded client degree.

    Each client connects to ``client_degree`` distinct random facilities
    with uniform costs. The resulting communication graph is sparse, which
    makes the message-count accounting of the simulator meaningful.
    """
    degree = min(client_degree, num_facilities)
    rng = np.random.default_rng(seed)
    c = np.full((num_facilities, num_clients), np.inf)
    for j in range(num_clients):
        neighbors = rng.choice(num_facilities, size=degree, replace=False)
        c[neighbors, j] = rng.uniform(0.1, 1.0, size=degree)
    f = rng.uniform(0.5, 1.5, size=num_facilities) * opening_scale
    return FacilityLocationInstance(
        f,
        c,
        name=(
            f"sparse(m={num_facilities},n={num_clients},"
            f"d={degree},seed={seed})"
        ),
    )


#: Registry used by the experiment harness: family name -> generator taking
#: ``(num_facilities, num_clients, seed)``.
FAMILIES: Mapping[str, Callable[[int, int, int], FacilityLocationInstance]] = {
    "uniform": uniform_instance,
    "euclidean": euclidean_instance,
    "clustered": clustered_instance,
    "grid": grid_instance,
    "set_cover": set_cover_instance,
    "sparse": sparse_instance,
}


def make_instance(
    family: str, num_facilities: int, num_clients: int, seed: int
) -> FacilityLocationInstance:
    """Dispatch to a registered generator family by name.

    Raises ``KeyError`` with the list of known families on a bad name, which
    keeps experiment configuration errors loud and early.
    """
    try:
        generator = FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown family {family!r}; known families: {sorted(FAMILIES)}"
        ) from None
    return generator(num_facilities, num_clients, seed)
