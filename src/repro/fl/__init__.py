"""Facility-location problem substrate.

This subpackage defines the problem model shared by every algorithm in the
repository:

* :class:`~repro.fl.instance.FacilityLocationInstance` — an uncapacitated
  facility-location instance over a bipartite facility/client graph,
* :class:`~repro.fl.solution.FacilityLocationSolution` — a set of open
  facilities plus a client assignment, with cost and feasibility checks,
* :mod:`~repro.fl.generators` — reproducible instance generators (metric
  and non-metric families),
* :mod:`~repro.fl.io` — serialization to/from JSON and an ORLIB-style text
  format.
"""

from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution

__all__ = [
    "FacilityLocationInstance",
    "FacilityLocationSolution",
]
