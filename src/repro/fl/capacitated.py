"""Soft-capacitated facility location (extension).

In the *soft-capacitated* problem every facility ``i`` has a capacity
``u_i``; it may be opened any number of times, each copy costs ``f_i`` and
serves at most ``u_i`` clients. The classical reduction (Jain–Vazirani;
refined by Mahdian–Ye–Zhang) maps it to the uncapacitated problem by
amortizing the per-copy cost into the connection costs:

    ``f'_i = f_i``,  ``c'_ij = c_ij + f_i / u_i``.

Any uncapacitated solution of the reduced instance converts into a
capacitated one by opening ``ceil(|S_i| / u_i)`` copies of each used
facility ``i`` (``S_i`` = its clients); the conversion at most doubles the
cost relative to the reduced-instance cost, so a ``rho``-approximation for
UFL yields ``2 rho`` for soft-CFL. The same conversion applies verbatim to
the *distributed* algorithm: the reduced costs are local modifications
(every client knows ``c_ij`` and learns ``f_i/u_i`` from facility ``i`` in
one round), so the round and message bounds carry over unchanged.

This module implements the problem model, the reduction, the solution
conversion with full validation, and distributed/greedy solver wrappers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.baselines.greedy import greedy_solve
from repro.core.algorithm import solve_distributed
from repro.exceptions import InfeasibleSolutionError, InvalidInstanceError
from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution
from repro.net.metrics import NetworkMetrics

__all__ = [
    "SoftCapacitatedInstance",
    "SoftCapacitatedSolution",
    "solve_capacitated_distributed",
    "solve_capacitated_greedy",
]


@dataclass(frozen=True)
class SoftCapacitatedInstance:
    """An uncapacitated base instance plus per-facility capacities."""

    base: FacilityLocationInstance
    capacities: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.capacities) != self.base.num_facilities:
            raise InvalidInstanceError(
                f"{len(self.capacities)} capacities for "
                f"{self.base.num_facilities} facilities"
            )
        for index, capacity in enumerate(self.capacities):
            if capacity < 1:
                raise InvalidInstanceError(
                    f"facility {index} has non-positive capacity {capacity}"
                )

    @classmethod
    def build(
        cls,
        instance: FacilityLocationInstance,
        capacities: Sequence[int],
    ) -> "SoftCapacitatedInstance":
        """Convenience constructor from any sequence of capacities."""
        return cls(base=instance, capacities=tuple(int(u) for u in capacities))

    @property
    def num_facilities(self) -> int:
        """Number of facility sites."""
        return self.base.num_facilities

    @property
    def num_clients(self) -> int:
        """Number of clients."""
        return self.base.num_clients

    def to_uncapacitated(self) -> FacilityLocationInstance:
        """The cost-amortized reduction ``c'_ij = c_ij + f_i / u_i``."""
        amortized = self.base.opening_costs / np.asarray(self.capacities)
        reduced = self.base.connection_costs + amortized[:, None]
        return FacilityLocationInstance(
            self.base.opening_costs,
            reduced,
            name=f"{self.base.name}|soft-cap-reduced",
        )


@dataclass(frozen=True)
class SoftCapacitatedSolution:
    """Open-copy counts plus an assignment, validated on construction."""

    instance: SoftCapacitatedInstance
    open_copies: Mapping[int, int]
    assignment: Mapping[int, int]

    def __post_init__(self) -> None:
        base = self.instance.base
        loads: dict[int, int] = {}
        for client, facility in self.assignment.items():
            if not base.has_edge(facility, client):
                raise InfeasibleSolutionError(
                    f"client {client} assigned to facility {facility} "
                    "with no connecting edge"
                )
            loads[facility] = loads.get(facility, 0) + 1
        missing = [
            j for j in range(base.num_clients) if j not in self.assignment
        ]
        if missing:
            raise InfeasibleSolutionError(
                f"clients {missing[:5]} unassigned ({len(missing)} total)"
            )
        for facility, load in loads.items():
            copies = self.open_copies.get(facility, 0)
            capacity = self.instance.capacities[facility]
            if copies * capacity < load:
                raise InfeasibleSolutionError(
                    f"facility {facility}: {load} clients exceed "
                    f"{copies} copies x capacity {capacity}"
                )

    @property
    def opening_cost(self) -> float:
        """Total per-copy opening cost."""
        return float(
            sum(
                copies * self.instance.base.opening_cost(i)
                for i, copies in self.open_copies.items()
            )
        )

    @property
    def connection_cost(self) -> float:
        """Total connection cost (original, un-amortized costs)."""
        return float(
            sum(
                self.instance.base.connection_cost(i, j)
                for j, i in self.assignment.items()
            )
        )

    @property
    def cost(self) -> float:
        """Total solution cost."""
        return self.opening_cost + self.connection_cost

    @classmethod
    def from_uncapacitated(
        cls,
        instance: SoftCapacitatedInstance,
        solution: FacilityLocationSolution,
    ) -> "SoftCapacitatedSolution":
        """Convert a reduced-instance solution: ``ceil(load / u)`` copies.

        The conversion's cost is at most the reduced-instance cost plus one
        extra copy per used facility — the source of the factor-2 transfer
        (each client already paid ``f_i/u_i`` toward its facility's copies
        in the reduced connection cost).
        """
        loads: dict[int, int] = {}
        for _client, facility in solution.assignment.items():
            loads[facility] = loads.get(facility, 0) + 1
        copies = {
            facility: math.ceil(load / instance.capacities[facility])
            for facility, load in loads.items()
        }
        return cls(
            instance=instance,
            open_copies=copies,
            assignment=dict(solution.assignment),
        )


def solve_capacitated_distributed(
    instance: SoftCapacitatedInstance, k: int, seed: int = 0
) -> tuple[SoftCapacitatedSolution, NetworkMetrics]:
    """Distributed soft-capacitated FL via the reduction.

    Runs the trade-off algorithm on the reduced instance and converts; the
    round/message guarantees are those of the underlying run.
    """
    reduced = instance.to_uncapacitated()
    result = solve_distributed(reduced, k=k, seed=seed)
    return (
        SoftCapacitatedSolution.from_uncapacitated(instance, result.solution),
        result.metrics,
    )


def solve_capacitated_greedy(
    instance: SoftCapacitatedInstance,
) -> SoftCapacitatedSolution:
    """Sequential greedy on the reduction (baseline for the extension)."""
    reduced = instance.to_uncapacitated()
    return SoftCapacitatedSolution.from_uncapacitated(
        instance, greedy_solve(reduced)
    )
