"""Facility-location solutions: open sets, assignments, costs, feasibility.

A solution pairs an instance with a set of open facilities and a mapping
from every client to the open facility serving it. Solutions are immutable
value objects; algorithms build them through
:meth:`FacilityLocationSolution.from_assignment` or the convenience
constructor :meth:`FacilityLocationSolution.from_open_set`, which assigns
every client to its cheapest open neighbor (always optimal for a fixed open
set in the uncapacitated problem).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.exceptions import InfeasibleSolutionError
from repro.fl.instance import FacilityLocationInstance

__all__ = ["FacilityLocationSolution"]


class FacilityLocationSolution:
    """An immutable feasible-or-checked solution to an instance.

    Parameters
    ----------
    instance:
        The instance the solution refers to.
    open_facilities:
        Iterable of facility indices that are open.
    assignment:
        Mapping ``client -> facility``. Must cover every client; each
        assigned facility must be open and adjacent to the client.
    validate:
        When true (default), feasibility is verified on construction and
        :class:`~repro.exceptions.InfeasibleSolutionError` is raised on any
        violation. Algorithms that guarantee feasibility by construction may
        pass ``validate=False`` for speed; tests always validate.
    """

    def __init__(
        self,
        instance: FacilityLocationInstance,
        open_facilities,
        assignment: Mapping[int, int],
        validate: bool = True,
    ) -> None:
        self._instance = instance
        self._open = frozenset(int(i) for i in open_facilities)
        self._assignment = {int(j): int(i) for j, i in assignment.items()}
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_open_set(
        cls,
        instance: FacilityLocationInstance,
        open_facilities,
        validate: bool = True,
    ) -> "FacilityLocationSolution":
        """Build a solution from an open set by cheapest-neighbor assignment.

        Every client is assigned to the cheapest *open* facility it has an
        edge to. Raises :class:`InfeasibleSolutionError` when some client has
        no open neighbor.
        """
        open_set = sorted({int(i) for i in open_facilities})
        if not open_set:
            raise InfeasibleSolutionError("cannot build a solution with no open facility")
        costs = instance.connection_costs[open_set, :]
        best_row = np.argmin(costs, axis=0)
        assignment: dict[int, int] = {}
        for j in range(instance.num_clients):
            i = open_set[int(best_row[j])]
            if not np.isfinite(costs[int(best_row[j]), j]):
                raise InfeasibleSolutionError(
                    f"client {j} has no edge to any open facility"
                )
            assignment[j] = i
        return cls(instance, open_set, assignment, validate=validate)

    @classmethod
    def from_assignment(
        cls,
        instance: FacilityLocationInstance,
        assignment: Mapping[int, int],
        validate: bool = True,
    ) -> "FacilityLocationSolution":
        """Build a solution from an assignment, opening exactly the used set."""
        used = set(assignment.values())
        return cls(instance, used, assignment, validate=validate)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def instance(self) -> FacilityLocationInstance:
        """The instance this solution belongs to."""
        return self._instance

    @property
    def open_facilities(self) -> frozenset[int]:
        """The set of open facility indices."""
        return self._open

    @property
    def assignment(self) -> dict[int, int]:
        """A copy of the ``client -> facility`` assignment map."""
        return dict(self._assignment)

    def facility_of(self, client: int) -> int:
        """The facility serving ``client``."""
        return self._assignment[client]

    def clients_of(self, facility: int) -> tuple[int, ...]:
        """Clients served by ``facility`` (possibly empty), sorted."""
        return tuple(
            sorted(j for j, i in self._assignment.items() if i == facility)
        )

    @property
    def num_open(self) -> int:
        """Number of open facilities."""
        return len(self._open)

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------

    @property
    def opening_cost(self) -> float:
        """Total opening cost of the open facilities."""
        return float(sum(self._instance.opening_cost(i) for i in self._open))

    @property
    def connection_cost(self) -> float:
        """Total connection cost of the assignment."""
        return float(
            sum(
                self._instance.connection_cost(i, j)
                for j, i in self._assignment.items()
            )
        )

    @property
    def cost(self) -> float:
        """Total solution cost (opening + connection)."""
        return self.opening_cost + self.connection_cost

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`InfeasibleSolutionError` unless the solution is feasible.

        Checks, in order: every open index is a real facility; every client
        is assigned; every assignment targets an open facility along an
        existing edge.
        """
        inst = self._instance
        for i in self._open:
            if not 0 <= i < inst.num_facilities:
                raise InfeasibleSolutionError(f"open facility index {i} out of range")
        missing = [
            j for j in range(inst.num_clients) if j not in self._assignment
        ]
        if missing:
            raise InfeasibleSolutionError(
                f"clients {missing[:5]} are unassigned ({len(missing)} total)"
            )
        for j, i in self._assignment.items():
            if not 0 <= j < inst.num_clients:
                raise InfeasibleSolutionError(f"assigned client index {j} out of range")
            if i not in self._open:
                raise InfeasibleSolutionError(
                    f"client {j} assigned to closed facility {i}"
                )
            if not inst.has_edge(i, j):
                raise InfeasibleSolutionError(
                    f"client {j} assigned to facility {i} with no connecting edge"
                )

    def is_feasible(self) -> bool:
        """True when :meth:`validate` passes."""
        try:
            self.validate()
        except InfeasibleSolutionError:
            return False
        return True

    # ------------------------------------------------------------------
    # Improvement helpers
    # ------------------------------------------------------------------

    def reassigned_to_cheapest(self) -> "FacilityLocationSolution":
        """Same open set, with every client moved to its cheapest open neighbor.

        Never increases cost; used as a cheap polish step by several
        algorithms and benchmarks.
        """
        return FacilityLocationSolution.from_open_set(
            self._instance, self._open, validate=False
        )

    def without_unused_facilities(self) -> "FacilityLocationSolution":
        """Close facilities that serve no client (never increases cost)."""
        used = set(self._assignment.values())
        return FacilityLocationSolution(
            self._instance, used, self._assignment, validate=False
        )

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FacilityLocationSolution):
            return NotImplemented
        return (
            self._instance == other._instance
            and self._open == other._open
            and self._assignment == other._assignment
        )

    def __repr__(self) -> str:
        return (
            f"FacilityLocationSolution(open={len(self._open)}, "
            f"cost={self.cost:.6g}, instance={self._instance.name!r})"
        )
