"""The uncapacitated facility-location instance model.

An instance consists of ``m`` facilities and ``n`` clients. Facility ``i``
has a non-negative *opening cost* ``f_i``. Client ``j`` may connect to
facility ``i`` only if the bipartite graph has the edge ``(i, j)``; doing so
costs the non-negative *connection cost* ``c_ij``. A solution opens a subset
of facilities and assigns every client to an open facility along an existing
edge; its cost is the sum of the opening costs of the open facilities plus
the connection costs of the assignments.

The bipartite edge structure doubles as the *communication network* of the
distributed model (PODC 2005): a facility and a client can exchange messages
exactly when the client could connect to that facility.

Connection costs are stored densely as an ``(m, n)`` float array in which
missing edges are ``numpy.inf``. This is the natural representation for the
instance sizes this reproduction targets (up to a few thousand nodes) and
keeps every cost query vectorizable.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import InvalidInstanceError

__all__ = ["FacilityLocationInstance", "DEFAULT_METRIC_TOLERANCE"]

#: Relative tolerance used by :meth:`FacilityLocationInstance.is_metric`.
DEFAULT_METRIC_TOLERANCE = 1e-9


class FacilityLocationInstance:
    """An uncapacitated facility-location instance.

    Parameters
    ----------
    opening_costs:
        Sequence of ``m`` non-negative, finite opening costs.
    connection_costs:
        An ``(m, n)`` array-like of non-negative connection costs.
        ``numpy.inf`` entries mark absent edges. Every client must have at
        least one finite entry, otherwise the instance is infeasible and
        :class:`~repro.exceptions.InvalidInstanceError` is raised.
    name:
        Optional human-readable label carried through results and tables.

    Notes
    -----
    Instances are immutable: the cost arrays are copied on construction and
    marked read-only. All derived quantities (adjacency lists, cost spread,
    cheapest connections) are computed lazily and cached.
    """

    def __init__(
        self,
        opening_costs: Sequence[float] | np.ndarray,
        connection_costs: Sequence[Sequence[float]] | np.ndarray,
        name: str = "unnamed",
    ) -> None:
        f = np.asarray(opening_costs, dtype=float).copy()
        c = np.asarray(connection_costs, dtype=float).copy()
        _validate_costs(f, c)
        f.setflags(write=False)
        c.setflags(write=False)
        self._opening_costs = f
        self._connection_costs = c
        self._name = str(name)
        # Lazily computed caches.
        self._client_neighbors: list[tuple[int, ...]] | None = None
        self._facility_neighbors: list[tuple[int, ...]] | None = None
        self._cheapest_connection: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        opening_costs: Sequence[float],
        edges: Iterable[tuple[int, int, float]],
        num_clients: int,
        name: str = "unnamed",
    ) -> "FacilityLocationInstance":
        """Build an instance from an explicit edge list.

        Parameters
        ----------
        opening_costs:
            Opening cost per facility; its length fixes ``m``.
        edges:
            Iterable of ``(facility, client, cost)`` triples. Repeated
            edges keep the cheapest cost.
        num_clients:
            Number of clients ``n`` (clients with no edge trigger a
            validation error, exactly as in the dense constructor).
        """
        m = len(opening_costs)
        c = np.full((m, num_clients), np.inf)
        for i, j, cost in edges:
            if not 0 <= i < m:
                raise InvalidInstanceError(f"facility index {i} out of range [0, {m})")
            if not 0 <= j < num_clients:
                raise InvalidInstanceError(
                    f"client index {j} out of range [0, {num_clients})"
                )
            c[i, j] = min(c[i, j], float(cost))
        return cls(opening_costs, c, name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable instance label."""
        return self._name

    @property
    def num_facilities(self) -> int:
        """Number of facilities ``m``."""
        return int(self._opening_costs.shape[0])

    @property
    def num_clients(self) -> int:
        """Number of clients ``n``."""
        return int(self._connection_costs.shape[1])

    @property
    def num_nodes(self) -> int:
        """Total node count ``N = m + n`` of the communication network."""
        return self.num_facilities + self.num_clients

    @property
    def opening_costs(self) -> np.ndarray:
        """Read-only ``(m,)`` array of opening costs."""
        return self._opening_costs

    @property
    def connection_costs(self) -> np.ndarray:
        """Read-only ``(m, n)`` array of connection costs (inf = no edge)."""
        return self._connection_costs

    def opening_cost(self, facility: int) -> float:
        """Opening cost ``f_i`` of one facility."""
        return float(self._opening_costs[facility])

    def connection_cost(self, facility: int, client: int) -> float:
        """Connection cost ``c_ij`` (``inf`` when the edge is absent)."""
        return float(self._connection_costs[facility, client])

    def has_edge(self, facility: int, client: int) -> bool:
        """Whether client ``client`` may connect to facility ``facility``."""
        return bool(np.isfinite(self._connection_costs[facility, client]))

    @property
    def num_edges(self) -> int:
        """Number of facility-client edges."""
        return int(np.isfinite(self._connection_costs).sum())

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def facilities_of_client(self, client: int) -> tuple[int, ...]:
        """Facilities adjacent to ``client``, in increasing index order."""
        if self._client_neighbors is None:
            finite = np.isfinite(self._connection_costs)
            self._client_neighbors = [
                tuple(np.flatnonzero(finite[:, j]).tolist())
                for j in range(self.num_clients)
            ]
        return self._client_neighbors[client]

    def clients_of_facility(self, facility: int) -> tuple[int, ...]:
        """Clients adjacent to ``facility``, in increasing index order."""
        if self._facility_neighbors is None:
            finite = np.isfinite(self._connection_costs)
            self._facility_neighbors = [
                tuple(np.flatnonzero(finite[i, :]).tolist())
                for i in range(self.num_facilities)
            ]
        return self._facility_neighbors[facility]

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield every edge as ``(facility, client, cost)``."""
        rows, cols = np.nonzero(np.isfinite(self._connection_costs))
        for i, j in zip(rows.tolist(), cols.tolist()):
            yield i, j, float(self._connection_costs[i, j])

    def is_complete_bipartite(self) -> bool:
        """Whether every client-facility pair is connected."""
        return bool(np.isfinite(self._connection_costs).all())

    # ------------------------------------------------------------------
    # Cost structure
    # ------------------------------------------------------------------

    def cheapest_connection(self, client: int) -> tuple[int, float]:
        """Cheapest edge of a client as ``(facility, cost)``.

        Ties are broken toward the smallest facility index, which keeps
        every algorithm in the repository deterministic for a fixed seed.
        """
        if self._cheapest_connection is None:
            self._cheapest_connection = np.argmin(self._connection_costs, axis=0)
        i = int(self._cheapest_connection[client])
        return i, float(self._connection_costs[i, client])

    def min_connection_costs(self) -> np.ndarray:
        """``(n,)`` array of each client's cheapest connection cost."""
        return np.min(self._connection_costs, axis=0)

    @property
    def max_finite_cost(self) -> float:
        """Largest cost appearing in the instance (opening or connection)."""
        c = self._connection_costs[np.isfinite(self._connection_costs)]
        candidates = [float(self._opening_costs.max(initial=0.0))]
        if c.size:
            candidates.append(float(c.max()))
        return max(candidates)

    @property
    def min_positive_cost(self) -> float:
        """Smallest strictly positive cost in the instance.

        Returns 1.0 when every cost is zero, so that ratios built on top of
        this quantity stay finite on degenerate all-zero instances.
        """
        c = self._connection_costs[np.isfinite(self._connection_costs)]
        values = np.concatenate([self._opening_costs, c])
        positive = values[values > 0]
        if positive.size == 0:
            return 1.0
        return float(positive.min())

    @property
    def rho(self) -> float:
        """Cost-spread coefficient ``rho`` of the instance.

        Defined as the ratio between the largest cost and the smallest
        strictly positive cost (both opening and connection costs are
        considered). This is the coefficient appearing in the paper's
        approximation bound ``O(sqrt(k) (m rho)^(1/sqrt k) log(m+n))``.
        Instances whose costs are all zero have ``rho = 1``.
        """
        top = self.max_finite_cost
        if top <= 0:
            return 1.0
        return max(1.0, top / self.min_positive_cost)

    @property
    def gamma(self) -> float:
        """Trade-off coefficient ``Gamma = m * rho`` used by the algorithm."""
        return max(2.0, self.num_facilities * self.rho)

    def total_opening_cost(self) -> float:
        """Sum of all opening costs (trivial upper bound contribution)."""
        return float(self._opening_costs.sum())

    def trivial_upper_bound(self) -> float:
        """Cost of the solution that opens every facility.

        Opening all facilities and connecting each client to its cheapest
        neighbor is always feasible, so this value upper-bounds the optimum
        and is used as a sanity envelope in tests.
        """
        return self.total_opening_cost() + float(self.min_connection_costs().sum())

    # ------------------------------------------------------------------
    # Metric structure
    # ------------------------------------------------------------------

    def is_metric(self, tolerance: float = DEFAULT_METRIC_TOLERANCE) -> bool:
        """Whether connection costs satisfy the bipartite metric condition.

        For facility location the relevant triangle inequality is

            ``c[i, j] <= c[i, l] + c[k, l] + c[k, j]``

        for all facilities ``i, k`` and clients ``j, l`` (a client can be
        reached by detouring through another client and facility). Absent
        edges (``inf``) make the left side vacuous whenever the right side
        is also infinite.

        The check is O(m^2 n^2 / (vectorized)) and intended for tests and
        small instances; generators tag their own output instead of calling
        this on every instance.
        """
        c = self._connection_costs
        if not np.isfinite(c).all():
            # Treat missing edges as infinite distances; the inequality must
            # then hold wherever the right-hand side is finite.
            pass
        # detour[i, k, j] = min over l of c[i, l] + c[k, l]  (shape m x m x n)
        # computed as min_l (c[i, l] + c[k, l]) then + c[k, j]
        m, n = c.shape
        # pairwise facility-facility distance through the best shared client
        with np.errstate(invalid="ignore"):
            through = np.full((m, m), np.inf)
            for l in range(n):
                col = c[:, l]
                through = np.minimum(through, col[:, None] + col[None, :])
            bound = through[:, :, None] + c[None, :, :]
            best = bound.min(axis=1)  # over k -> (m, n)
        slack = c - best
        finite = np.isfinite(best)
        scale = np.where(np.isfinite(c), np.abs(c), 0.0) + 1.0
        return bool((slack[finite] <= tolerance * scale[finite]).all())

    # ------------------------------------------------------------------
    # Derived instances
    # ------------------------------------------------------------------

    def restrict_to_clients(self, clients: Sequence[int]) -> "FacilityLocationInstance":
        """Sub-instance keeping only the given clients (facilities kept)."""
        clients = list(clients)
        c = self._connection_costs[:, clients]
        return FacilityLocationInstance(
            self._opening_costs, c, name=f"{self._name}|clients={len(clients)}"
        )

    def with_opening_costs(
        self, opening_costs: Sequence[float]
    ) -> "FacilityLocationInstance":
        """Copy of the instance with replaced opening costs."""
        return FacilityLocationInstance(
            opening_costs, self._connection_costs, name=self._name
        )

    def scaled(self, factor: float) -> "FacilityLocationInstance":
        """Copy with every cost multiplied by ``factor`` (> 0)."""
        if not (factor > 0 and math.isfinite(factor)):
            raise InvalidInstanceError(f"scale factor must be positive, got {factor}")
        return FacilityLocationInstance(
            self._opening_costs * factor,
            self._connection_costs * factor,
            name=f"{self._name}*{factor:g}",
        )

    def with_demands(self, demands: Sequence[float]) -> "FacilityLocationInstance":
        """Copy in which client ``j`` carries demand ``d_j``.

        In the demand-weighted problem a client's connection cost is paid
        per unit of demand, i.e. serving ``j`` from ``i`` costs
        ``d_j * c_ij``. Folding the demand into the cost matrix reduces
        the weighted problem to the unit-demand one exactly, so every
        algorithm in this repository applies unchanged; this helper
        performs that fold (demands must be positive and finite).
        """
        d = np.asarray(demands, dtype=float)
        if d.shape != (self.num_clients,):
            raise InvalidInstanceError(
                f"need one demand per client: shape {d.shape} != "
                f"({self.num_clients},)"
            )
        if not (np.isfinite(d).all() and (d > 0).all()):
            raise InvalidInstanceError("demands must be positive and finite")
        return FacilityLocationInstance(
            self._opening_costs,
            self._connection_costs * d[None, :],
            name=f"{self._name}|demands",
        )

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FacilityLocationInstance):
            return NotImplemented
        return (
            self._opening_costs.shape == other._opening_costs.shape
            and self._connection_costs.shape == other._connection_costs.shape
            and bool(np.array_equal(self._opening_costs, other._opening_costs))
            and bool(
                np.array_equal(
                    self._connection_costs,
                    other._connection_costs,
                )
            )
        )

    def __repr__(self) -> str:
        return (
            f"FacilityLocationInstance(name={self._name!r}, "
            f"m={self.num_facilities}, n={self.num_clients}, "
            f"edges={self.num_edges}, rho={self.rho:.3g})"
        )


def _validate_costs(opening_costs: np.ndarray, connection_costs: np.ndarray) -> None:
    """Raise :class:`InvalidInstanceError` unless the cost arrays are valid."""
    if opening_costs.ndim != 1:
        raise InvalidInstanceError(
            f"opening_costs must be 1-D, got shape {opening_costs.shape}"
        )
    if connection_costs.ndim != 2:
        raise InvalidInstanceError(
            f"connection_costs must be 2-D, got shape {connection_costs.shape}"
        )
    m = opening_costs.shape[0]
    if m == 0:
        raise InvalidInstanceError("an instance needs at least one facility")
    if connection_costs.shape[0] != m:
        raise InvalidInstanceError(
            "connection_costs row count "
            f"{connection_costs.shape[0]} != number of facilities {m}"
        )
    if connection_costs.shape[1] == 0:
        raise InvalidInstanceError("an instance needs at least one client")
    if np.isnan(opening_costs).any() or np.isinf(opening_costs).any():
        raise InvalidInstanceError("opening costs must be finite")
    if (opening_costs < 0).any():
        raise InvalidInstanceError("opening costs must be non-negative")
    if np.isnan(connection_costs).any():
        raise InvalidInstanceError("connection costs must not be NaN")
    finite = np.isfinite(connection_costs)
    if (connection_costs[finite] < 0).any():
        raise InvalidInstanceError("connection costs must be non-negative")
    uncovered = ~finite.any(axis=0)
    if uncovered.any():
        bad = np.flatnonzero(uncovered)[:5].tolist()
        raise InvalidInstanceError(
            f"clients {bad} have no reachable facility; the instance is infeasible"
        )
