"""Build facility-location instances from networkx graphs.

Real deployments rarely come as cost matrices: they come as networks —
road graphs, communication overlays, power grids — with candidate facility
sites on some nodes and demand on others. This module turns such a graph
into a :class:`~repro.fl.instance.FacilityLocationInstance`:

* connection costs are **shortest-path distances** in the graph (Dijkstra
  from every facility site), so the resulting instance is metric by
  construction wherever paths exist;
* unreachable facility/client pairs become missing edges (``inf``), so a
  disconnected graph yields a sparse bipartite instance — exactly what the
  distributed algorithm's component-local behaviour expects;
* opening costs come from a scalar, a mapping, or a node attribute.

The returned :class:`GraphInstance` keeps the node-object ↔ index mappings
so solutions can be read back in the graph's own vocabulary
(:meth:`GraphInstance.open_nodes`, :meth:`GraphInstance.assignment_nodes`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution

__all__ = ["GraphInstance", "instance_from_graph"]


@dataclass(frozen=True)
class GraphInstance:
    """A facility-location instance plus its graph-node vocabulary."""

    instance: FacilityLocationInstance
    facility_nodes: tuple[Hashable, ...]
    client_nodes: tuple[Hashable, ...]

    def facility_index(self, node: Hashable) -> int:
        """Index of a facility site given its graph node."""
        return self.facility_nodes.index(node)

    def client_index(self, node: Hashable) -> int:
        """Index of a client given its graph node."""
        return self.client_nodes.index(node)

    def open_nodes(self, solution: FacilityLocationSolution) -> frozenset[Hashable]:
        """The open facilities of a solution, as graph nodes."""
        return frozenset(self.facility_nodes[i] for i in solution.open_facilities)

    def assignment_nodes(
        self, solution: FacilityLocationSolution
    ) -> dict[Hashable, Hashable]:
        """The assignment of a solution, as ``client node -> facility node``."""
        return {
            self.client_nodes[j]: self.facility_nodes[i]
            for j, i in solution.assignment.items()
        }


def _resolve_opening_costs(
    graph: Any,
    facility_nodes: Sequence[Hashable],
    opening_costs: float | Mapping[Hashable, float] | str,
) -> list[float]:
    if isinstance(opening_costs, str):
        resolved = []
        for node in facility_nodes:
            attrs = graph.nodes[node]
            if opening_costs not in attrs:
                raise InvalidInstanceError(
                    f"node {node!r} has no attribute {opening_costs!r}"
                )
            resolved.append(float(attrs[opening_costs]))
        return resolved
    if isinstance(opening_costs, Mapping):
        missing = [n for n in facility_nodes if n not in opening_costs]
        if missing:
            raise InvalidInstanceError(
                f"opening-cost mapping misses facilities {missing[:5]}"
            )
        return [float(opening_costs[n]) for n in facility_nodes]
    return [float(opening_costs)] * len(facility_nodes)


def instance_from_graph(
    graph: Any,
    facility_nodes: Sequence[Hashable],
    client_nodes: Sequence[Hashable] | None = None,
    opening_costs: float | Mapping[Hashable, float] | str = 1.0,
    weight: str = "weight",
    name: str | None = None,
) -> GraphInstance:
    """Derive a shortest-path facility-location instance from a graph.

    Parameters
    ----------
    graph:
        A ``networkx`` graph (any class with ``nodes`` and Dijkstra
        support). Edge weights default to 1 where the attribute is absent.
    facility_nodes:
        Candidate facility sites (graph nodes, in the order that becomes
        facility indices).
    client_nodes:
        Demand nodes; defaults to every node of the graph.
    opening_costs:
        A scalar (same cost everywhere), a mapping ``node -> cost``, or the
        name of a node attribute.
    weight:
        Edge-weight attribute for shortest paths.
    name:
        Instance label; defaults to a description of the graph.
    """
    import networkx as nx

    facility_nodes = tuple(facility_nodes)
    if not facility_nodes:
        raise InvalidInstanceError("need at least one facility site")
    unknown = [n for n in facility_nodes if n not in graph]
    if unknown:
        raise InvalidInstanceError(
            f"facility sites {unknown[:5]} are not nodes of the graph"
        )
    if len(set(facility_nodes)) != len(facility_nodes):
        raise InvalidInstanceError("facility sites contain duplicates")
    if client_nodes is None:
        client_nodes = tuple(graph.nodes())
    else:
        client_nodes = tuple(client_nodes)
        unknown = [n for n in client_nodes if n not in graph]
        if unknown:
            raise InvalidInstanceError(
                f"clients {unknown[:5]} are not nodes of the graph"
            )
    if len(set(client_nodes)) != len(client_nodes):
        raise InvalidInstanceError("client nodes contain duplicates")

    client_position = {node: j for j, node in enumerate(client_nodes)}
    connection = np.full((len(facility_nodes), len(client_nodes)), np.inf)
    for i, site in enumerate(facility_nodes):
        distances = nx.single_source_dijkstra_path_length(
            graph, site, weight=weight
        )
        for node, distance in distances.items():
            j = client_position.get(node)
            if j is not None:
                connection[i, j] = float(distance)

    instance = FacilityLocationInstance(
        _resolve_opening_costs(graph, facility_nodes, opening_costs),
        connection,
        name=name
        or f"graph(m={len(facility_nodes)},n={len(client_nodes)},"
        f"nodes={graph.number_of_nodes()})",
    )
    return GraphInstance(
        instance=instance,
        facility_nodes=facility_nodes,
        client_nodes=client_nodes,
    )
