"""The facility-location LP relaxation (the lower bound of every ratio).

The relaxation is

    minimize    sum_i f_i y_i + sum_{ij} c_ij x_ij
    subject to  sum_i x_ij >= 1          for every client j
                x_ij <= y_i              for every edge (i, j)
                0 <= x, y <= 1

Its optimum lower-bounds the integral optimum, so every approximation
ratio this repository reports — ``cost / LP`` — *upper-bounds* the true
ratio ``cost / OPT``. On tiny instances :mod:`repro.baselines.exact`
cross-checks ``LP <= OPT``.

Only variables for *existing* edges are created, so sparse instances stay
small; the matrix is assembled in SciPy CSR form and solved with HiGHS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.exceptions import SolverError
from repro.fl.instance import FacilityLocationInstance

__all__ = ["LPResult", "solve_lp"]


@dataclass(frozen=True)
class LPResult:
    """Solved LP relaxation.

    Attributes
    ----------
    value:
        The LP optimum (lower bound on the integral optimum).
    y:
        Fractional openings, shape ``(m,)``.
    x:
        Fractional assignments as a dense ``(m, n)`` array (zero where the
        instance has no edge).
    """

    value: float
    y: np.ndarray
    x: np.ndarray

    def fractional_connection_cost(self, instance: FacilityLocationInstance) -> np.ndarray:
        """Per-client fractional connection cost ``C_j = sum_i x_ij c_ij``.

        Used by LP rounding (the filtering radii are Markov bounds on these
        values).
        """
        costs = np.where(
            np.isfinite(instance.connection_costs), instance.connection_costs, 0.0
        )
        return (self.x * costs).sum(axis=0)


def solve_lp(instance: FacilityLocationInstance) -> LPResult:
    """Solve the relaxation exactly with HiGHS.

    Raises :class:`~repro.exceptions.SolverError` if the solver does not
    report success (the relaxation of a valid instance is always feasible
    and bounded, so failure indicates a numerical problem worth surfacing).
    """
    m, n = instance.num_facilities, instance.num_clients
    edges = list(instance.iter_edges())
    num_edges = len(edges)
    # Variable layout: y_0..y_{m-1}, then one x per edge.
    cost_vector = np.concatenate(
        [
            instance.opening_costs,
            np.array([cost for _i, _j, cost in edges], dtype=float),
        ]
    )
    # Coverage constraints: -sum_{i} x_ij <= -1.
    cover_rows = []
    cover_cols = []
    for e, (_i, j, _cost) in enumerate(edges):
        cover_rows.append(j)
        cover_cols.append(m + e)
    cover = csr_matrix(
        (np.full(num_edges, -1.0), (cover_rows, cover_cols)),
        shape=(n, m + num_edges),
    )
    cover_rhs = np.full(n, -1.0)
    # Capacity constraints: x_ij - y_i <= 0.
    cap_rows = []
    cap_cols = []
    cap_data = []
    for e, (i, _j, _cost) in enumerate(edges):
        cap_rows.extend([e, e])
        cap_cols.extend([m + e, i])
        cap_data.extend([1.0, -1.0])
    capacity = csr_matrix(
        (cap_data, (cap_rows, cap_cols)), shape=(num_edges, m + num_edges)
    )
    capacity_rhs = np.zeros(num_edges)

    from scipy.sparse import vstack

    a_ub = vstack([cover, capacity], format="csr")
    b_ub = np.concatenate([cover_rhs, capacity_rhs])
    result = linprog(
        cost_vector,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        raise SolverError(
            f"LP solver failed on {instance.name!r}: {result.message}"
        )
    y = np.asarray(result.x[:m])
    x = np.zeros((m, n))
    for e, (i, j, _cost) in enumerate(edges):
        x[i, j] = result.x[m + e]
    return LPResult(value=float(result.fun), y=y, x=x)
