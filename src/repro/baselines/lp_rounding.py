"""Deterministic LP filtering + rounding (Shmoys–Tardos–Aardal style).

The classical recipe that turns the LP relaxation into an integral
solution with a constant factor on metric instances:

1. Solve the LP; let ``C_j = sum_i x_ij c_ij`` be client ``j``'s
   fractional connection cost.
2. **Filter**: give each client the radius ``R_j = 2 C_j``. By Markov's
   inequality the LP assigns at least half a unit of ``x``-mass to
   facilities within ``R_j`` of ``j``, so the *ball*
   ``B_j = { i : c_ij <= R_j }`` carries ``y``-mass at least 1/2.
3. **Cluster + round**: repeatedly take the unclustered client ``j*`` with
   the smallest ``C_j``, open the cheapest facility in ``B_{j*}`` (its
   cost is at most twice the ``y``-weighted opening cost in the ball), and
   assign to it every remaining client whose ball intersects ``B_{j*}``.

On complete metric instances the triangle inequality bounds a clustered
client's detour by ``R_j + 2 R_{j*} <= 3 R_j``, giving the classical
constant factor (≤ 8 with these radii; tighter constants exist but are not
the point of this baseline). The implementation requires a complete
bipartite instance — with missing edges the detour assignment may not
exist — and raises :class:`~repro.exceptions.AlgorithmError` otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.lp import LPResult, solve_lp
from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution

__all__ = ["lp_rounding_solve"]


def lp_rounding_solve(
    instance: FacilityLocationInstance,
    lp: LPResult | None = None,
    radius_factor: float = 2.0,
) -> FacilityLocationSolution:
    """Round the LP relaxation into a feasible solution.

    Parameters
    ----------
    instance:
        A *complete bipartite* instance (see module docstring).
    lp:
        A pre-solved relaxation to reuse; solved on demand when ``None``.
    radius_factor:
        The Markov filtering radius multiplier (2 keeps >= 1/2 of the
        ``x``-mass inside each ball; larger values trade opening cost for
        connection cost).
    """
    if not instance.is_complete_bipartite():
        raise AlgorithmError(
            "LP rounding requires a complete bipartite instance; "
            "run it on generator families without missing edges"
        )
    if radius_factor <= 1.0:
        raise AlgorithmError(
            f"radius_factor must exceed 1 (Markov bound), got {radius_factor}"
        )
    if lp is None:
        lp = solve_lp(instance)
    c = instance.connection_costs
    n = instance.num_clients
    fractional = lp.fractional_connection_cost(instance)
    radii = radius_factor * fractional
    # Ball membership matrix: ball[i, j] = facility i is within R_j of j.
    # A tiny absolute slack keeps degenerate all-zero-cost balls non-empty.
    slack = 1e-12 * (1.0 + np.abs(radii))
    ball = c <= radii[None, :] + slack[None, :]
    if not ball.any(axis=0).all():
        missing = np.flatnonzero(~ball.any(axis=0))[:5].tolist()
        raise AlgorithmError(
            f"clients {missing} have empty filtering balls; "
            "the LP solution is inconsistent"
        )
    unclustered = set(range(n))
    order = sorted(range(n), key=lambda j: (fractional[j], j))
    open_set: set[int] = set()
    assignment: dict[int, int] = {}
    for center in order:
        if center not in unclustered:
            continue
        center_ball = np.flatnonzero(ball[:, center])
        cheapest = int(
            min(center_ball, key=lambda i: (instance.opening_cost(i), i))
        )
        open_set.add(cheapest)
        # Assign the center and every remaining client whose ball intersects.
        members = [
            j
            for j in sorted(unclustered)
            if bool((ball[:, j] & ball[:, center]).any())
        ]
        for j in members:
            assignment[j] = cheapest
            unclustered.discard(j)
    return FacilityLocationSolution(instance, open_set, assignment, validate=True)
