"""Exhaustive exact solver for tiny instances.

Enumerates every non-empty subset of facilities (the optimal assignment
for a fixed open set is each client's cheapest open neighbor, so only the
open set needs enumeration). Exponential in ``m`` — guarded by an explicit
cap — and used solely to ground-truth small cases in tests and tables:
``LP <= OPT``, ``OPT <= greedy``, the distributed ratios, etc.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution

__all__ = ["exact_solve", "MAX_EXACT_FACILITIES"]

#: Refuse instances with more facilities than this (2^m subsets).
MAX_EXACT_FACILITIES = 18


def exact_solve(instance: FacilityLocationInstance) -> FacilityLocationSolution:
    """Return a provably optimal solution (tiny instances only).

    Ties between optimal open sets break toward the lexicographically
    smallest bitmask, so results are deterministic.
    """
    m = instance.num_facilities
    if m > MAX_EXACT_FACILITIES:
        raise AlgorithmError(
            f"exact_solve enumerates 2^m subsets; m={m} exceeds the cap of "
            f"{MAX_EXACT_FACILITIES}"
        )
    c = instance.connection_costs
    opening = instance.opening_costs
    best_cost = math.inf
    best_mask = 0
    for mask in range(1, 1 << m):
        rows = [i for i in range(m) if mask >> i & 1]
        opening_cost = float(opening[rows].sum())
        if opening_cost >= best_cost:
            continue
        mins = c[rows, :].min(axis=0)
        if not np.isfinite(mins).all():
            continue
        cost = opening_cost + float(mins.sum())
        if cost < best_cost - 1e-15:
            best_cost = cost
            best_mask = mask
    if best_mask == 0:
        raise AlgorithmError(
            "no feasible open set found; instance validation should have "
            "prevented this"
        )
    open_set = {i for i in range(m) if best_mask >> i & 1}
    return FacilityLocationSolution.from_open_set(instance, open_set, validate=True)
