"""Sequential baselines the distributed algorithm is compared against.

* :func:`~repro.baselines.greedy.greedy_solve` — Hochbaum's star greedy,
  the classical ``O(log n)``-approximation for non-metric instances (the
  quality target the distributed algorithm approaches as ``k`` grows);
* :func:`~repro.baselines.jain_vazirani.jain_vazirani_solve` — the JV
  primal-dual 3-approximation (metric instances);
* :func:`~repro.baselines.mettu_plaxton.mettu_plaxton_solve` — the
  Mettu–Plaxton ball-radius 3-approximation (metric instances);
* :func:`~repro.baselines.local_search.local_search_solve` — add/drop/swap
  local search;
* :func:`~repro.baselines.lp.solve_lp` — the LP relaxation lower bound
  (the denominator of every measured approximation ratio);
* :func:`~repro.baselines.lp_rounding.lp_rounding_solve` — deterministic
  LP filtering + rounding (Shmoys–Tardos–Aardal style);
* :func:`~repro.baselines.exact.exact_solve` — exhaustive optimum for tiny
  instances (cross-checks the LP bound and every approximation factor);
* :func:`~repro.baselines.k_median.solve_k_median` — the classical
  Lagrangian companion problem, solved by bisecting a uniform opening
  cost through the JV primal-dual.
"""

from repro.baselines.exact import exact_solve
from repro.baselines.k_median import exact_k_median, solve_k_median
from repro.baselines.greedy import greedy_solve
from repro.baselines.jain_vazirani import jain_vazirani_solve
from repro.baselines.local_search import local_search_solve
from repro.baselines.lp import LPResult, solve_lp
from repro.baselines.lp_rounding import lp_rounding_solve
from repro.baselines.mettu_plaxton import mettu_plaxton_solve

__all__ = [
    "greedy_solve",
    "jain_vazirani_solve",
    "mettu_plaxton_solve",
    "local_search_solve",
    "solve_lp",
    "LPResult",
    "lp_rounding_solve",
    "exact_solve",
    "solve_k_median",
    "exact_k_median",
]
