"""Hochbaum's greedy star algorithm (non-metric ``O(ln n)``-approximation).

The greedy repeatedly picks the globally most *cost-effective star*: a
facility ``i`` together with a set ``S`` of still-uncovered clients
minimizing ``(fee_i + sum_{j in S} c_ij) / |S|``, where ``fee_i`` is the
opening cost for a closed facility and 0 for an already-open one (its
opening cost is sunk). For a fixed facility the optimal ``S`` is always a
prefix of its uncovered clients ordered by connection cost, so each
iteration costs ``O(m n log n)``.

This is the textbook reduction of facility location to weighted set cover;
its ``H_n <= ln n + 1`` guarantee (against the LP optimum) is the quality
target the distributed algorithm converges to as ``k`` grows, which is why
this baseline anchors comparison experiment E5.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution

__all__ = ["greedy_solve", "best_star_for_facility"]


def best_star_for_facility(
    instance: FacilityLocationInstance,
    facility: int,
    uncovered: np.ndarray,
    already_open: bool,
) -> tuple[float, list[int]]:
    """Most cost-effective star of one facility over ``uncovered`` clients.

    Parameters
    ----------
    instance:
        The instance.
    facility:
        Facility index.
    uncovered:
        Boolean mask over clients (True = still uncovered).
    already_open:
        When true the opening cost is sunk and only connection costs count.

    Returns
    -------
    ``(efficiency, clients)`` where ``clients`` is the minimizing prefix
    (empty with ``efficiency = inf`` when the facility reaches no uncovered
    client).
    """
    row = instance.connection_costs[facility]
    candidates = np.flatnonzero(uncovered & np.isfinite(row))
    if candidates.size == 0:
        return float("inf"), []
    order = candidates[np.argsort(row[candidates], kind="stable")]
    prefix = np.cumsum(row[order])
    fee = 0.0 if already_open else instance.opening_cost(facility)
    sizes = np.arange(1, order.size + 1)
    ratios = (fee + prefix) / sizes
    best = int(np.argmin(ratios))
    return float(ratios[best]), order[: best + 1].tolist()


def greedy_solve(instance: FacilityLocationInstance) -> FacilityLocationSolution:
    """Run the greedy to completion and return a validated solution.

    Ties between equally effective stars break toward the smaller facility
    index, making the algorithm fully deterministic.
    """
    m, n = instance.num_facilities, instance.num_clients
    uncovered = np.ones(n, dtype=bool)
    is_open = [False] * m
    assignment: dict[int, int] = {}
    # The loop terminates: every iteration covers >= 1 client, because every
    # client has a neighbor facility whose single-client star is finite.
    while uncovered.any():
        best_eff = float("inf")
        best_facility = -1
        best_clients: list[int] = []
        for i in range(m):
            eff, clients = best_star_for_facility(instance, i, uncovered, is_open[i])
            if clients and eff < best_eff:
                best_eff = eff
                best_facility = i
                best_clients = clients
        if best_facility < 0:
            missing = np.flatnonzero(uncovered)[:5].tolist()
            raise AlgorithmError(
                f"greedy found no star covering clients {missing}; "
                "instance validation should have prevented this"
            )
        is_open[best_facility] = True
        for j in best_clients:
            uncovered[j] = False
            assignment[j] = best_facility
    open_set = {i for i in range(m) if is_open[i]}
    return FacilityLocationSolution(instance, open_set, assignment, validate=True)
