"""The Jain–Vazirani primal-dual algorithm (metric 3-approximation).

This is the *continuous* dual ascent the distributed dual-ascent variant
discretizes, so it doubles as both a quality baseline (E5) and a semantic
reference: with infinitely many levels the distributed variant's tight set
converges to JV's.

Phase 1 (dual ascent)
    All client budgets ``alpha_j`` grow from 0 at unit rate. When
    ``alpha_j`` passes a connection cost ``c_ij`` the edge starts *paying*
    facility ``i`` at unit rate; when accumulated payments reach ``f_i``
    the facility becomes *tight*. A client freezes (stops growing) the
    moment some tight facility's connection cost is within its budget; the
    facility becomes the client's *witness*. Implemented as an exact event
    simulation (edge-crossing events and tightness events), not as time
    stepping, so the duals are exact up to float arithmetic.

Phase 2 (pruning)
    Tight facilities conflict when a client contributes positively to
    both. A maximal independent set of the conflict graph, greedily chosen
    in order of tightness time, is opened. Every client is assigned to its
    cheapest open neighbor; a client with no open neighbor (possible only
    on incomplete bipartite graphs) gets its witness opened as well, which
    preserves feasibility on any instance while leaving the classic
    3-approximation argument intact on complete metric ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution

__all__ = ["jain_vazirani_solve", "JVState", "jv_dual_ascent"]

_EVENT_EPS = 1e-12


@dataclass
class JVState:
    """Outcome of the JV dual ascent (phase 1).

    Attributes
    ----------
    alphas:
        Final client budgets — a feasible dual solution, so their sum
        lower-bounds the LP optimum (tests verify this against the LP).
    tight_facilities:
        Facilities whose payments reached their opening cost, with the
        time at which they did.
    witness:
        The tight facility that froze each client.
    """

    alphas: np.ndarray
    tight_facilities: dict[int, float]
    witness: dict[int, int]


def jv_dual_ascent(instance: FacilityLocationInstance) -> JVState:
    """Run phase 1 exactly; see module docstring."""
    m, n = instance.num_facilities, instance.num_clients
    c = instance.connection_costs
    alphas = np.zeros(n)
    unfrozen = set(range(n))
    tight: dict[int, float] = {}
    witness: dict[int, int] = {}
    # fixed[i]: payment contributed by already-frozen clients.
    fixed = np.zeros(m)
    time = 0.0

    while unfrozen:
        unfrozen_list = sorted(unfrozen)
        # Current paying sets and rates.
        rates = np.zeros(m)
        payments = fixed.copy()
        for i in range(m):
            if i in tight:
                continue
            row = c[i]
            for j in unfrozen_list:
                if math.isfinite(row[j]) and row[j] <= time + _EVENT_EPS:
                    rates[i] += 1.0
                    payments[i] += time - row[j]
        # Candidate event times.
        next_time = math.inf
        # (a) a facility becomes tight.
        for i in range(m):
            if i in tight or rates[i] <= 0:
                continue
            deficit = instance.opening_cost(i) - payments[i]
            candidate = time + max(0.0, deficit) / rates[i]
            next_time = min(next_time, candidate)
        # (b) an edge starts paying (alpha crosses c_ij).
        for i in range(m):
            if i in tight:
                continue
            row = c[i]
            for j in unfrozen_list:
                if math.isfinite(row[j]) and row[j] > time + _EVENT_EPS:
                    next_time = min(next_time, row[j])
        # (c) an unfrozen client reaches a *tight* facility's cost.
        for j in unfrozen_list:
            for i in tight:
                if math.isfinite(c[i, j]) and c[i, j] > time + _EVENT_EPS:
                    next_time = min(next_time, c[i, j])
        if not math.isfinite(next_time):
            # No growth possible: every unfrozen client is disconnected from
            # all non-tight facilities — impossible for valid instances.
            raise AssertionError("JV ascent stalled; invalid instance state")
        time = next_time
        # New tight facilities at this time.
        for i in range(m):
            if i in tight or rates[i] <= 0:
                continue
            payment = fixed[i] + sum(
                time - c[i, j]
                for j in unfrozen_list
                if math.isfinite(c[i, j]) and c[i, j] <= time + _EVENT_EPS
            )
            if payment >= instance.opening_cost(i) - _EVENT_EPS * max(
                1.0, instance.opening_cost(i)
            ):
                tight[i] = time
        # Freeze clients that can now afford a tight facility.
        for j in list(unfrozen):
            affordable = [
                i
                for i in tight
                if math.isfinite(c[i, j]) and c[i, j] <= time + _EVENT_EPS
            ]
            if affordable:
                best = min(affordable, key=lambda i: (tight[i], c[i, j], i))
                alphas[j] = time
                witness[j] = best
                unfrozen.discard(j)
                for i in range(m):
                    if math.isfinite(c[i, j]) and c[i, j] <= time:
                        fixed[i] += time - c[i, j]
    return JVState(alphas=alphas, tight_facilities=tight, witness=witness)


def jain_vazirani_solve(
    instance: FacilityLocationInstance,
) -> FacilityLocationSolution:
    """Full JV: dual ascent, conflict pruning, assignment."""
    state = jv_dual_ascent(instance)
    c = instance.connection_costs
    n = instance.num_clients
    tight_order = sorted(
        state.tight_facilities, key=lambda i: (state.tight_facilities[i], i)
    )
    # contributors[i]: clients with strictly positive contribution to i.
    contributors: dict[int, set[int]] = {}
    for i in tight_order:
        contributors[i] = {
            j
            for j in range(n)
            if math.isfinite(c[i, j]) and state.alphas[j] > c[i, j] + _EVENT_EPS
        }
    open_set: set[int] = set()
    blocked_clients: set[int] = set()
    for i in tight_order:
        if contributors[i] & blocked_clients:
            continue
        open_set.add(i)
        blocked_clients |= contributors[i]
    if not open_set and tight_order:
        open_set.add(tight_order[0])
    # Assignment: cheapest open neighbor; open the witness when none exists.
    assignment: dict[int, int] = {}
    for j in range(n):
        neighbors = [i for i in open_set if math.isfinite(c[i, j])]
        if not neighbors:
            witness = state.witness[j]
            open_set.add(witness)
            neighbors = [witness]
        assignment[j] = min(neighbors, key=lambda i: (c[i, j], i))
    return FacilityLocationSolution(instance, open_set, assignment, validate=True)
