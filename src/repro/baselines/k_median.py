"""k-median via Lagrangian relaxation of facility location.

The k-median problem opens *exactly at most* ``p`` facilities (no opening
costs) to minimize total connection cost. Jain–Vazirani's classical
observation: uniform opening cost ``z`` is a Lagrange multiplier for the
cardinality constraint — as ``z`` grows, the facility-location optimum
opens fewer facilities. Bisecting ``z`` and solving the resulting
uncapacitated instances with the JV primal-dual yields k-median solutions;
with the exact continuous machinery this gives the classical constant
factor, and this module implements the practical bisection variant:

* run JV at ``z = 0`` (everything cheap) and at ``z`` = an upper bound
  where a single facility opens,
* bisect on the number of open facilities, keeping the best solution seen
  with at most ``p`` facilities,
* finish with a cheapest-assignment polish.

The returned solution is always feasible with ``<= p`` open facilities;
the factor is heuristic (no Lagrangian-gap rounding is performed), which
tests quantify against the exact optimum on small instances.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.baselines.jain_vazirani import jain_vazirani_solve
from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution

__all__ = ["solve_k_median", "exact_k_median"]


def _connection_only(instance: FacilityLocationInstance) -> FacilityLocationInstance:
    """The instance with opening costs zeroed (k-median ignores them)."""
    return instance.with_opening_costs([0.0] * instance.num_facilities)


def _best_assignment_cost(
    instance: FacilityLocationInstance, open_set: set[int]
) -> float:
    rows = sorted(open_set)
    mins = instance.connection_costs[rows, :].min(axis=0)
    if not np.isfinite(mins).all():
        return math.inf
    return float(mins.sum())


def solve_k_median(
    instance: FacilityLocationInstance,
    p: int,
    max_bisections: int = 40,
) -> FacilityLocationSolution:
    """Open at most ``p`` facilities minimizing total connection cost.

    ``instance`` provides the sites and connection costs; its opening
    costs are ignored (replaced by the Lagrange multiplier). Raises
    :class:`~repro.exceptions.AlgorithmError` when ``p`` is out of range
    or no ``p``-subset covers every client (possible on sparse instances).
    """
    m = instance.num_facilities
    if not 1 <= p <= m:
        raise AlgorithmError(f"p must lie in [1, {m}], got {p}")
    base = _connection_only(instance)

    def solve_at(z: float) -> FacilityLocationSolution:
        """JV solution at uniform facility price ``z``, costed unpriced."""
        priced = base.with_opening_costs([z] * m)
        solution = jain_vazirani_solve(priced)
        # Report costs in the unpriced world.
        return FacilityLocationSolution(
            base, solution.open_facilities, solution.assignment, validate=False
        )

    best: FacilityLocationSolution | None = None

    def consider(solution: FacilityLocationSolution) -> None:
        """Keep ``solution`` as the incumbent if feasible and cheaper."""
        nonlocal best
        if solution.num_open > p:
            return
        polished = solution.reassigned_to_cheapest()
        if best is None or polished.cost < best.cost:
            best = polished

    low, high = 0.0, instance.max_finite_cost * instance.num_clients + 1.0
    consider(solve_at(low))
    consider(solve_at(high))
    for _ in range(max_bisections):
        mid = (low + high) / 2.0
        solution = solve_at(mid)
        consider(solution)
        if solution.num_open > p:
            low = mid
        else:
            high = mid
    if best is None:
        # Even one-facility solutions failed (disconnected sparse instance);
        # fall back to brute force over p-subsets if feasible at all.
        return exact_k_median(instance, p)
    return best


def exact_k_median(
    instance: FacilityLocationInstance, p: int, max_facilities: int = 16
) -> FacilityLocationSolution:
    """Exhaustive optimum over all ``<= p``-subsets (tiny instances)."""
    m = instance.num_facilities
    if m > max_facilities:
        raise AlgorithmError(
            f"exact_k_median enumerates subsets; m={m} exceeds {max_facilities}"
        )
    if not 1 <= p <= m:
        raise AlgorithmError(f"p must lie in [1, {m}], got {p}")
    base = _connection_only(instance)
    best_cost = math.inf
    best_set: tuple[int, ...] | None = None
    for size in range(1, p + 1):
        for subset in itertools.combinations(range(m), size):
            cost = _best_assignment_cost(base, set(subset))
            if cost < best_cost:
                best_cost = cost
                best_set = subset
    if best_set is None or not math.isfinite(best_cost):
        raise AlgorithmError(
            f"no subset of {p} facilities covers every client"
        )
    return FacilityLocationSolution.from_open_set(base, set(best_set))
