"""The Mettu–Plaxton ball-radius algorithm (metric 3-approximation).

For every facility ``i`` define its *radius* ``r_i`` as the value solving

    ``sum_{j : c_ij <= r} (r - c_ij) = f_i``

— the smallest ball around ``i`` whose clients could collectively pay the
opening cost. The left side is piecewise linear and increasing in ``r``,
so ``r_i`` is found exactly by scanning the facility's sorted connection
costs. Facilities are then considered in non-decreasing radius order and
``i`` opens unless an already-open facility lies within distance
``2 r_i``, where facility-facility distance is measured through the
cheapest shared client: ``d(i, i') = min_j (c_ij + c_i'j)``. Every client
finally connects to its cheapest open neighbor.

On complete metric instances this is the classic 3-approximation (and, in
its original form, the core of MP's O(mn)-time algorithm). On incomplete
graphs the ``d`` above degenerates gracefully (no shared client = no
conflict), and a client with no open neighbor forces its cheapest neighbor
open so feasibility is unconditional — mirroring the safety net of the
distributed algorithm.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution

__all__ = ["mettu_plaxton_solve", "mp_radius"]


def mp_radius(instance: FacilityLocationInstance, facility: int) -> float:
    """Exact Mettu–Plaxton radius of one facility.

    Scans the sorted finite connection costs; within a segment where ``s``
    clients are inside the ball, the payment grows with slope ``s``, so the
    crossing point is solved in closed form.
    """
    row = instance.connection_costs[facility]
    costs = np.sort(row[np.isfinite(row)])
    target = instance.opening_cost(facility)
    if costs.size == 0:
        return math.inf
    paid = 0.0
    for idx in range(costs.size):
        inside = idx + 1
        upper = costs[idx + 1] if idx + 1 < costs.size else math.inf
        # With `inside` clients in the ball, payment at radius r in
        # [costs[idx], upper) equals paid + inside * (r - costs[idx]).
        needed = (target - paid) / inside
        if costs[idx] + needed <= upper:
            return float(costs[idx] + needed)
        paid += inside * (upper - costs[idx])
    raise AssertionError("unreachable: the last segment extends to infinity")


def _facility_distances(instance: FacilityLocationInstance) -> np.ndarray:
    """Pairwise facility distance through the cheapest shared client."""
    c = instance.connection_costs
    m = instance.num_facilities
    distance = np.full((m, m), math.inf)
    with np.errstate(invalid="ignore"):
        for j in range(instance.num_clients):
            col = c[:, j]
            distance = np.minimum(distance, col[:, None] + col[None, :])
    np.fill_diagonal(distance, 0.0)
    return distance


def mettu_plaxton_solve(
    instance: FacilityLocationInstance,
) -> FacilityLocationSolution:
    """Run Mettu–Plaxton and return a validated solution."""
    m = instance.num_facilities
    radii = np.array([mp_radius(instance, i) for i in range(m)])
    distance = _facility_distances(instance)
    order = sorted(range(m), key=lambda i: (radii[i], i))
    open_set: set[int] = set()
    for i in order:
        if not math.isfinite(radii[i]):
            continue
        conflict = any(distance[i, i2] <= 2.0 * radii[i] for i2 in open_set)
        if not conflict:
            open_set.add(i)
    assignment: dict[int, int] = {}
    c = instance.connection_costs
    for j in range(instance.num_clients):
        neighbors = [i for i in open_set if math.isfinite(c[i, j])]
        if not neighbors:
            cheapest, _cost = instance.cheapest_connection(j)
            open_set.add(cheapest)
            neighbors = [cheapest]
        assignment[j] = min(neighbors, key=lambda i: (c[i, j], i))
    return FacilityLocationSolution(instance, open_set, assignment, validate=True)
