"""Add/drop/swap local search for facility location.

A strong practical baseline: starting from an initial open set, repeatedly
apply the first strictly improving move among

* **add** — open one closed facility,
* **drop** — close one open facility (if every client keeps a neighbor),
* **swap** — exchange one open facility for one closed one,

until no move improves or an iteration budget runs out. On metric
instances this neighborhood is known to reach a constant-factor (3 for
add/drop/swap) local optimum; here it serves as the "what a practitioner
would run" reference column of comparison experiment E5.

Cost evaluation for a candidate open set is fully vectorized: the cost of
an open set ``S`` is ``sum_{i in S} f_i + sum_j min_{i in S} c_ij``, so a
move evaluation is one masked row-min over the cost matrix.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance
from repro.fl.solution import FacilityLocationSolution
from repro.baselines.greedy import greedy_solve

__all__ = ["local_search_solve", "open_set_cost"]


def open_set_cost(instance: FacilityLocationInstance, open_set: set[int]) -> float:
    """Cost of the best solution with exactly ``open_set`` open.

    Returns ``inf`` when some client has no neighbor in ``open_set`` (the
    set is infeasible), which lets the move loop treat infeasible drops
    uniformly as non-improving.
    """
    if not open_set:
        return math.inf
    rows = sorted(open_set)
    mins = instance.connection_costs[rows, :].min(axis=0)
    if not np.isfinite(mins).all():
        return math.inf
    opening = float(instance.opening_costs[rows].sum())
    return opening + float(mins.sum())


def _initial_open_set(
    instance: FacilityLocationInstance, initial: str
) -> set[int]:
    if initial == "greedy":
        return set(greedy_solve(instance).open_facilities)
    if initial == "all":
        return set(range(instance.num_facilities))
    raise AlgorithmError(
        f"unknown initial strategy {initial!r}; expected 'greedy' or 'all'"
    )


def local_search_solve(
    instance: FacilityLocationInstance,
    initial: str = "greedy",
    max_moves: int = 10_000,
) -> FacilityLocationSolution:
    """Run first-improvement add/drop/swap local search to a local optimum.

    Parameters
    ----------
    instance:
        The instance.
    initial:
        Starting open set: ``"greedy"`` (default) or ``"all"``.
    max_moves:
        Safety budget on accepted moves; local search on these instance
        sizes converges far earlier, and hitting the cap raises so silent
        truncation cannot skew experiments.
    """
    open_set = _initial_open_set(instance, initial)
    current = open_set_cost(instance, open_set)
    m = instance.num_facilities
    improved = True
    moves = 0
    while improved:
        improved = False
        # Add moves.
        for i in range(m):
            if i in open_set:
                continue
            candidate = open_set | {i}
            cost = open_set_cost(instance, candidate)
            if cost < current - 1e-12:
                open_set, current = candidate, cost
                improved = True
                break
        if improved:
            moves += 1
            if moves > max_moves:
                raise AlgorithmError("local search exceeded its move budget")
            continue
        # Drop moves.
        for i in sorted(open_set):
            candidate = open_set - {i}
            cost = open_set_cost(instance, candidate)
            if cost < current - 1e-12:
                open_set, current = candidate, cost
                improved = True
                break
        if improved:
            moves += 1
            if moves > max_moves:
                raise AlgorithmError("local search exceeded its move budget")
            continue
        # Swap moves.
        for i in sorted(open_set):
            for i2 in range(m):
                if i2 in open_set:
                    continue
                candidate = (open_set - {i}) | {i2}
                cost = open_set_cost(instance, candidate)
                if cost < current - 1e-12:
                    open_set, current = candidate, cost
                    improved = True
                    break
            if improved:
                break
        if improved:
            moves += 1
            if moves > max_moves:
                raise AlgorithmError("local search exceeded its move budget")
    return FacilityLocationSolution.from_open_set(instance, open_set, validate=True)
