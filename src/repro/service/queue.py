"""Bounded admission queue with backpressure and deadline accounting.

The queue is the service's pressure valve: when producers outrun the
solver, :meth:`AdmissionQueue.offer` starts *rejecting* instead of
letting the backlog (and its memory) grow without bound — the classic
load-shedding trade that keeps latency for admitted work predictable.
Per-request deadlines are stamped at admission and checked at drain
time, so a request that waited past its ``timeout_s`` is surfaced as a
timeout rather than solved late.

Time is injected (any monotonic ``clock`` callable) so tests drive the
deadline machinery deterministically; production uses
``time.monotonic``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ReproError
from repro.service.request import SolveRequest

__all__ = ["AdmissionQueue", "AdmissionResult", "QueuedRequest"]


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of one :meth:`AdmissionQueue.offer` call."""

    accepted: bool
    reason: str = ""  # "queue_full" when rejected


@dataclass(frozen=True)
class QueuedRequest:
    """A request plus its admission bookkeeping (arrival, seq, deadline).

    ``seq`` is the queue's admission counter — a total order over every
    admitted request that, unlike ``arrival``, stays strict even under a
    frozen test clock; batch responses are ordered by it.
    """

    request: SolveRequest
    arrival: float
    seq: int
    deadline: float | None  # absolute clock value; None = no timeout

    def expired(self, now: float) -> bool:
        """True once ``now`` has passed the request's deadline."""
        return self.deadline is not None and now > self.deadline


class AdmissionQueue:
    """Bounded FIFO of pending requests.

    Parameters
    ----------
    max_depth:
        Capacity; an offer beyond it is rejected (backpressure).
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        max_depth: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_depth < 1:
            raise ReproError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = int(max_depth)
        self._clock = clock
        self._pending: deque[QueuedRequest] = deque()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def depth(self) -> int:
        """Current number of queued requests."""
        return len(self._pending)

    def offer(self, request: SolveRequest) -> AdmissionResult:
        """Admit ``request`` or reject it when the queue is full."""
        if len(self._pending) >= self.max_depth:
            return AdmissionResult(accepted=False, reason="queue_full")
        now = self._clock()
        deadline = (
            now + request.timeout_s if request.timeout_s is not None else None
        )
        self._pending.append(
            QueuedRequest(
                request=request, arrival=now, seq=self._seq, deadline=deadline
            )
        )
        self._seq += 1
        return AdmissionResult(accepted=True)

    def drain(
        self, max_items: int | None = None
    ) -> tuple[list[QueuedRequest], list[QueuedRequest]]:
        """Pop up to ``max_items`` requests in FIFO order.

        Returns ``(live, expired)``: requests whose deadline already
        passed are separated out so the caller can answer them with a
        timeout instead of spending solver time on them. Expired
        requests do **not** count against ``max_items`` — draining never
        lets dead work crowd out live work.
        """
        now = self._clock()
        live: list[QueuedRequest] = []
        expired: list[QueuedRequest] = []
        while self._pending:
            if max_items is not None and len(live) >= max_items:
                break
            item = self._pending.popleft()
            (expired if item.expired(now) else live).append(item)
        return live, expired
