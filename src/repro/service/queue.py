"""Bounded admission queue with backpressure, priorities and shedding.

The queue is the service's pressure valve: when producers outrun the
solver, :meth:`AdmissionQueue.offer` starts *rejecting* instead of
letting the backlog (and its memory) grow without bound — the classic
load-shedding trade that keeps latency for admitted work predictable.
Per-request deadlines are stamped at admission and checked at drain
time, so a request that waited past its ``timeout_s`` is surfaced as a
timeout rather than solved late.

Overload is priority-aware (see
:data:`~repro.service.request.PRIORITY_CLASSES`):

* past the optional ``high_water`` mark, incoming ``"low"`` work is
  refused outright (reason ``"shed_low_priority"``) so the remaining
  headroom is kept for normal/high traffic;
* at capacity, an offer may *evict* the newest queued request of a
  strictly lower priority class instead of being rejected — the evicted
  request comes back in :attr:`AdmissionResult.shed` so the service can
  answer it (a shed request is still answered, never silently dropped).

Time is injected (any monotonic ``clock`` callable) so tests drive the
deadline machinery deterministically; production uses
``time.monotonic``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ReproError
from repro.service.request import SolveRequest, priority_level

__all__ = ["AdmissionQueue", "AdmissionResult", "QueuedRequest"]


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of one :meth:`AdmissionQueue.offer` call.

    ``reason`` is ``"queue_full"`` / ``"shed_low_priority"`` when
    rejected; ``shed`` carries any *previously queued* request this
    offer evicted to make room (the caller must answer it).
    """

    accepted: bool
    reason: str = ""
    shed: tuple["QueuedRequest", ...] = ()


@dataclass(frozen=True)
class QueuedRequest:
    """A request plus its admission bookkeeping (arrival, seq, deadline).

    ``seq`` is the queue's admission counter — a total order over every
    admitted request that, unlike ``arrival``, stays strict even under a
    frozen test clock; batch responses are ordered by it.
    """

    request: SolveRequest
    arrival: float
    seq: int
    deadline: float | None  # absolute clock value; None = no timeout

    def expired(self, now: float) -> bool:
        """True once ``now`` has passed the request's deadline."""
        return self.deadline is not None and now > self.deadline


class AdmissionQueue:
    """Bounded FIFO of pending requests with priority-aware shedding.

    Parameters
    ----------
    max_depth:
        Capacity; an offer beyond it is rejected (backpressure) unless
        it can evict strictly-lower-priority queued work.
    clock:
        Monotonic time source; injectable for deterministic tests.
    high_water:
        Optional early-shedding mark (``<= max_depth``): at or above
        this depth, incoming ``"low"``-priority offers are refused with
        reason ``"shed_low_priority"`` while normal/high work still
        admits up to ``max_depth``.
    """

    def __init__(
        self,
        max_depth: int = 256,
        clock: Callable[[], float] = time.monotonic,
        high_water: int | None = None,
    ) -> None:
        if max_depth < 1:
            raise ReproError(f"max_depth must be >= 1, got {max_depth}")
        if high_water is not None and not 1 <= high_water <= max_depth:
            raise ReproError(
                f"high_water must be in [1, max_depth={max_depth}], "
                f"got {high_water}"
            )
        self.max_depth = int(max_depth)
        self.high_water = int(high_water) if high_water is not None else None
        self._clock = clock
        self._pending: deque[QueuedRequest] = deque()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def depth(self) -> int:
        """Current number of queued requests."""
        return len(self._pending)

    def offer(self, request: SolveRequest) -> AdmissionResult:
        """Admit ``request``, shed for it, or reject it.

        Resolution order: past ``high_water`` a ``"low"`` offer is
        refused; at ``max_depth`` the newest queued request of the
        lowest priority class *strictly below* the offer's is evicted
        (returned in ``shed``) to make room; with nothing evictable the
        offer is rejected ``"queue_full"``.
        """
        level = priority_level(request.priority)
        if (
            self.high_water is not None
            and len(self._pending) >= self.high_water
            and level == 0
        ):
            return AdmissionResult(accepted=False, reason="shed_low_priority")
        shed: tuple[QueuedRequest, ...] = ()
        if len(self._pending) >= self.max_depth:
            victim = self._shed_victim(level)
            if victim is None:
                return AdmissionResult(accepted=False, reason="queue_full")
            self._pending.remove(victim)
            shed = (victim,)
        now = self._clock()
        deadline = (
            now + request.timeout_s if request.timeout_s is not None else None
        )
        self._pending.append(
            QueuedRequest(
                request=request, arrival=now, seq=self._seq, deadline=deadline
            )
        )
        self._seq += 1
        return AdmissionResult(accepted=True, shed=shed)

    def _shed_victim(self, level: int) -> QueuedRequest | None:
        """Newest queued request of the lowest class strictly below ``level``.

        Lowest class first so ``"low"`` work dies before ``"normal"``;
        newest within the class because the oldest has waited longest
        and is closest to being served.
        """
        victim: QueuedRequest | None = None
        victim_level = level
        for item in self._pending:  # iteration order = oldest .. newest
            item_level = priority_level(item.request.priority)
            if item_level < level and item_level <= victim_level:
                victim = item  # <=: a later (newer) equal-class item wins
                victim_level = item_level
        return victim

    def drain(
        self, max_items: int | None = None
    ) -> tuple[list[QueuedRequest], list[QueuedRequest]]:
        """Pop up to ``max_items`` requests in FIFO order.

        Returns ``(live, expired)``: requests whose deadline already
        passed are separated out so the caller can answer them with a
        timeout instead of spending solver time on them. Expired
        requests do **not** count against ``max_items`` — draining never
        lets dead work crowd out live work.
        """
        now = self._clock()
        live: list[QueuedRequest] = []
        expired: list[QueuedRequest] = []
        while self._pending:
            if max_items is not None and len(live) >= max_items:
                break
            item = self._pending.popleft()
            (expired if item.expired(now) else live).append(item)
        return live, expired
