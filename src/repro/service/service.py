"""The service orchestrator: queue -> batcher -> executor -> store.

:class:`SolveService` is the synchronous heart of the serving layer.
Transports (stdin/JSONL, the Unix socket — see
:mod:`repro.service.server`) and the in-process
:class:`~repro.service.client.ServiceClient` all drive the same three
calls: :meth:`SolveService.submit` admits work under backpressure,
:meth:`SolveService.process_pending` forms and executes one
deterministic batch, and :meth:`SolveService.fetch` retrieves retained
responses by request id.

Everything the service does is measured. Counters, gauges and
histograms land in a :class:`~repro.obs.registry.MetricsRegistry` under
the ``service.*`` namespace, and :meth:`SolveService.metrics_summary`
condenses them into the flat dict the ``repro serve --metrics`` line and
``examples/serving.py`` print:

========================== ============================================
instrument                 meaning
========================== ============================================
``service.requests``       admissions, labeled ``status=accepted|rejected``
``service.responses``      completions, labeled ``status=ok|timeout|error``
``service.batches``        batches executed
``service.batch.size``     histogram of requests per batch
``service.batch.unique``   histogram of *unique* work units per batch
``service.dedup.hits``     requests served by another request's solve
``service.cache.hits``     memo-cache hits, labeled ``cache=instance|lp``
``service.queue.depth``    current admission-queue depth (gauge)
``service.store.size``     current result-store size (gauge)
``service.latency.seconds`` histogram of admission->completion latency;
                           p50/p95 come from
                           :meth:`~repro.obs.registry.Histogram.quantile`
``service.timeouts``       expired requests, labeled ``phase=queue``
                           (deadline passed while waiting) or
                           ``phase=execute`` (passed between drain and
                           execution start)
``service.exec.retries``   cell re-executions after worker crash/stall
``service.exec.respawns``  worker pools discarded and respawned
``service.sheds``          shed requests, labeled ``priority=...``
``service.rate_limited``   admissions refused by the per-client bucket
``service.drain.rejections`` requests answered ``draining`` at shutdown
========================== ============================================

Cache-hit deltas are measured around each batch via
:func:`repro.perf.cache.cache_stats`; with ``workers > 1`` the hits
happen inside pool processes and are invisible here, so the counters are
exact for the default in-process executor and a lower bound otherwise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import ReproError
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span, Tracer
from repro.perf.cache import cache_stats
from repro.perf.executor import SweepExecutor
from repro.service.batcher import Batcher
from repro.service.queue import AdmissionQueue, AdmissionResult, QueuedRequest
from repro.service.request import SolveRequest, SolveResponse
from repro.service.resilience import ResilientExecutor, TokenBucket
from repro.service.store import ResultStore, StoreMiss

__all__ = ["ServiceConfig", "SolveService"]

#: Histogram buckets for batch-size style counts (1..max admission depth).
_COUNT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Histogram buckets for queue-wait / end-to-end latency, in seconds.
_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`SolveService`.

    Parameters
    ----------
    max_queue_depth:
        Admission-queue capacity; offers beyond it are rejected.
    max_batch_size:
        Most *live* requests drained into one batch (expired requests
        never count against it).
    workers:
        Process count handed to the batch executor; 1 (the default)
        solves in-process.
    result_ttl_s:
        Seconds a completed response stays fetchable (``None`` = keep
        until capacity eviction).
    max_results:
        Result-store capacity.
    profile_memory:
        When the service is traced, opt worker solve spans into
        ``tracemalloc`` peak sampling (reported as ``mem_peak_kb``).
        Ignored without a tracer.
    high_water:
        Optional early-shedding queue depth: at or above it, incoming
        ``"low"``-priority work is refused (``shed_low_priority``)
        while normal/high traffic still admits up to
        ``max_queue_depth``. ``None`` disables early shedding.
    max_solve_attempts:
        Per-cell execution budget of the default
        :class:`~repro.service.resilience.ResilientExecutor`: how many
        times a cell whose worker crashed or wedged is re-executed
        before it answers with an error.
    cell_timeout_s:
        Wall-clock watchdog for pool cells: a cell that has not
        finished within the budget is treated like a crash (pool
        respawned, cell retried). ``None`` disables the watchdog.
    rate_limit_per_client:
        Token-bucket refill rate (requests/second) applied per
        ``client_id``; an offer beyond the bucket is rejected with
        reason ``"rate_limited"``. ``None`` disables rate limiting.
    rate_limit_burst:
        Bucket capacity (the burst a quiet client may spend at once).
    """

    max_queue_depth: int = 256
    max_batch_size: int = 32
    workers: int = 1
    result_ttl_s: float | None = 300.0
    max_results: int = 1024
    profile_memory: bool = False
    high_water: int | None = None
    max_solve_attempts: int = 3
    cell_timeout_s: float | None = None
    rate_limit_per_client: float | None = None
    rate_limit_burst: float = 8.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ReproError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_solve_attempts < 1:
            raise ReproError(
                f"max_solve_attempts must be >= 1, "
                f"got {self.max_solve_attempts}"
            )
        if self.rate_limit_per_client is not None and (
            self.rate_limit_per_client <= 0
        ):
            raise ReproError(
                f"rate_limit_per_client must be positive, "
                f"got {self.rate_limit_per_client}"
            )


class SolveService:
    """Batched solve service: admission, dedup, execution, retention.

    Parameters
    ----------
    config:
        Service tunables; defaults to :class:`ServiceConfig`'s defaults.
    registry:
        Metrics registry to publish into; a private one is created when
        omitted (exposed as :attr:`registry` either way).
    executor:
        Batch executor override; defaults to
        ``SweepExecutor(workers=config.workers)``. Injectable for tests.
    clock:
        Monotonic time source shared by the queue, the store and the
        latency accounting; injectable for deterministic tests.
    tracer:
        Optional :class:`~repro.obs.spans.Tracer`. When set, every
        request gets a ``service.request`` span (parented under the
        submitter's :attr:`~repro.service.request.SolveRequest.
        trace_ctx` when present), every batch a ``service.batch`` span
        with per-unit ``service.unit`` children, and worker span
        subtrees are adopted back into this tracer on merge. Spans never
        touch ``result``/``manifest`` payloads — traced responses stay
        byte-identical to untraced ones.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        registry: MetricsRegistry | None = None,
        executor: SweepExecutor | None = None,
        clock: Callable[[], float] = time.monotonic,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self.tracer = tracer
        self._request_spans: dict[str, Span] = {}
        self.queue = AdmissionQueue(
            max_depth=self.config.max_queue_depth,
            clock=clock,
            high_water=self.config.high_water,
        )
        self.batcher = Batcher(
            executor=executor
            if executor is not None
            else ResilientExecutor(
                workers=self.config.workers,
                max_attempts=self.config.max_solve_attempts,
                cell_timeout_s=self.config.cell_timeout_s,
            )
        )
        self._draining = False
        self._buckets: dict[str, TokenBucket] = {}
        self.store = ResultStore(
            ttl_s=self.config.result_ttl_s,
            max_entries=self.config.max_results,
            clock=clock,
        )
        reg = self.registry
        self._requests = reg.counter(
            "service.requests", "admissions by status (accepted/rejected)"
        )
        self._responses = reg.counter(
            "service.responses", "completions by status (ok/timeout/error)"
        )
        self._batches = reg.counter("service.batches", "batches executed")
        self._batch_size = reg.histogram(
            "service.batch.size",
            "requests per executed batch (duplicates included)",
            buckets=_COUNT_BUCKETS,
        )
        self._batch_unique = reg.histogram(
            "service.batch.unique",
            "unique work units per executed batch",
            buckets=_COUNT_BUCKETS,
        )
        self._dedup_hits = reg.counter(
            "service.dedup.hits",
            "requests served by another request's solve in the same batch",
        )
        self._cache_hits = reg.counter(
            "service.cache.hits",
            "instance/LP memo-cache hits observed during batch execution",
        )
        self._queue_depth = reg.gauge(
            "service.queue.depth", "current admission-queue depth"
        )
        self._store_size = reg.gauge(
            "service.store.size", "current result-store size"
        )
        self._latency = reg.histogram(
            "service.latency.seconds",
            "admission-to-completion latency of solved requests",
            buckets=_LATENCY_BUCKETS,
        )
        self._timeouts = reg.counter(
            "service.timeouts",
            "requests expired before solving (phase=queue|execute)",
        )
        self._exec_retries = reg.counter(
            "service.exec.retries",
            "cell re-executions after a worker crash or stall",
        )
        self._exec_respawns = reg.counter(
            "service.exec.respawns",
            "worker pools discarded and respawned after a crash or stall",
        )
        self._sheds = reg.counter(
            "service.sheds",
            "requests shed under overload, labeled by priority",
        )
        self._rate_limited = reg.counter(
            "service.rate_limited",
            "admissions refused by the per-client token bucket",
        )
        self._drain_rejections = reg.counter(
            "service.drain.rejections",
            "requests answered with status=draining during shutdown",
        )
        self._queue_depth.set(0)
        self._store_size.set(0)

    # ------------------------------------------------------------------
    # Admission

    def submit(self, request: SolveRequest) -> AdmissionResult:
        """Admit ``request`` (or reject it under backpressure).

        A refused request is *also* answered: a ``status="rejected"``
        (or ``"draining"``) response is retained in the store so
        ``fetch`` tells the client what happened instead of silently
        knowing nothing. Refusal reasons, in resolution order: the
        service is draining; the client's token bucket is empty
        (``rate_limited``); the queue shed it for priority
        (``shed_low_priority``); the queue is full (``queue_full``).
        An accepted offer may itself evict queued lower-priority work —
        the victims are answered ``shed_low_priority`` on the spot and
        returned in :attr:`~repro.service.queue.AdmissionResult.shed`.
        """
        if self.tracer is not None:
            self._request_spans[request.request_id] = self.tracer.start_span(
                "service.request",
                parent=request.trace_ctx,
                attributes={"request_id": request.request_id},
                detached=True,
            )
        if self._draining:
            outcome = AdmissionResult(accepted=False, reason="draining")
            self._requests.inc(status="rejected")
            self._drain_rejections.inc()
            self._finish(
                SolveResponse(
                    request_id=request.request_id,
                    status="draining",
                    error="service is draining; request not admitted",
                )
            )
        elif not self._admit_rate(request):
            outcome = AdmissionResult(accepted=False, reason="rate_limited")
            self._requests.inc(status="rejected")
            self._rate_limited.inc()
            self._finish(
                SolveResponse(
                    request_id=request.request_id,
                    status="rejected",
                    error="rate_limited",
                )
            )
        else:
            outcome = self.queue.offer(request)
            for victim in outcome.shed:
                self._sheds.inc(priority=victim.request.priority)
                self._finish(
                    SolveResponse(
                        request_id=victim.request.request_id,
                        status="rejected",
                        error="shed_low_priority",
                        wait_s=self._wait(victim),
                    )
                )
            if outcome.accepted:
                self._requests.inc(status="accepted")
            else:
                self._requests.inc(status="rejected")
                if outcome.reason == "shed_low_priority":
                    self._sheds.inc(priority=request.priority)
                self._finish(
                    SolveResponse(
                        request_id=request.request_id,
                        status="rejected",
                        error=outcome.reason,
                    )
                )
        self._queue_depth.set(self.queue.depth)
        return outcome

    def _admit_rate(self, request: SolveRequest) -> bool:
        """Spend one token from the submitter's bucket (True = admitted)."""
        rate = self.config.rate_limit_per_client
        if rate is None:
            return True
        bucket = self._buckets.get(request.client_id)
        if bucket is None:
            bucket = TokenBucket(
                rate=rate,
                burst=self.config.rate_limit_burst,
                clock=self._clock,
            )
            self._buckets[request.client_id] = bucket
        return bucket.try_acquire()

    @property
    def pending(self) -> int:
        """Requests currently queued (not yet batched)."""
        return self.queue.depth

    # ------------------------------------------------------------------
    # Execution

    def process_pending(self) -> list[SolveResponse]:
        """Drain one batch, execute it, and answer every drained request.

        Returns responses in the drained requests' arrival order
        (timeouts included, marked ``status="timeout"``). A single
        failing work unit answers only its own requests with
        ``status="error"`` — the rest of the batch is unaffected. The
        returned list is also what a replay of the same submissions
        would produce: batch formation, execution and response assembly
        are all deterministic.
        """
        live, expired = self.queue.drain(max_items=self.config.max_batch_size)
        self._queue_depth.set(self.queue.depth)
        drained = live + expired
        responses: dict[int, SolveResponse] = {}
        for item in expired:
            self._timeouts.inc(phase="queue")
            responses[item.seq] = SolveResponse(
                request_id=item.request.request_id,
                status="timeout",
                error=f"deadline passed after {item.request.timeout_s}s",
                wait_s=self._wait(item),
            )
        if live:
            # Re-check deadlines at execution start: a request that
            # expired between drain and here must report `timeout`, not
            # be solved late. Counted separately (phase=execute).
            now = self._clock()
            still_live: list[QueuedRequest] = []
            for item in live:
                if item.expired(now):
                    self._timeouts.inc(phase="execute")
                    responses[item.seq] = SolveResponse(
                        request_id=item.request.request_id,
                        status="timeout",
                        error=(
                            f"deadline passed after {item.request.timeout_s}s"
                            " (before execution start)"
                        ),
                        wait_s=self._wait(item),
                    )
                else:
                    still_live.append(item)
            live = still_live
        if live:
            batch = self.batcher.form(live)
            batch_span: Span | None = None
            unit_spans: list[Span] = []
            trace_contexts = None
            if self.tracer is not None:
                parent = next(
                    (
                        req_span.context
                        for item in live
                        if (
                            req_span := self._request_spans.get(
                                item.request.request_id
                            )
                        )
                        is not None
                    ),
                    None,
                )
                batch_span = self.tracer.start_span(
                    "service.batch",
                    parent=parent,
                    attributes={
                        "requests": batch.num_requests,
                        "unique": batch.num_unique,
                    },
                    detached=True,
                )
                unit_spans = [
                    self.tracer.start_span(
                        "service.unit",
                        parent=batch_span,
                        attributes={
                            "request_id": unit.leader.request.request_id,
                            "followers": len(unit.followers),
                        },
                        detached=True,
                    )
                    for unit in batch.units
                ]
                trace_contexts = [span.context for span in unit_spans]
            before = cache_stats()
            outcomes = self.batcher.execute(
                batch,
                trace_contexts=trace_contexts,
                profile_memory=self.config.profile_memory,
            )
            after = cache_stats()
            for cache in ("instance", "lp"):
                delta = after[f"{cache}_hits"] - before[f"{cache}_hits"]
                if delta > 0:
                    self._cache_hits.inc(delta, cache=cache)
            report = getattr(self.batcher.executor, "last_report", None)
            if report is not None:
                if report.retries:
                    self._exec_retries.inc(report.retries)
                if report.respawns:
                    self._exec_respawns.inc(report.respawns)
                if batch_span is not None and (
                    report.retries or report.respawns
                ):
                    batch_span.annotate(
                        exec_retries=report.retries,
                        exec_respawns=report.respawns,
                    )
                if unit_spans and len(report.attempts) == len(unit_spans):
                    for span, count in zip(unit_spans, report.attempts):
                        if count > 1:
                            span.annotate(attempts=count)
            self._batches.inc()
            self._batch_size.observe(batch.num_requests)
            self._batch_unique.observe(batch.num_unique)
            self._dedup_hits.inc(batch.dedup_hits)
            batch_index = int(self._batches.total) - 1
            for index, (unit, outcome) in enumerate(zip(batch.units, outcomes)):
                # Unlike the spans pop (tracer-gated), the recording pop
                # is unconditional: a recorded unit ships its payload
                # whether or not the service itself is traced.
                recording = outcome.pop("recording", None)
                if self.tracer is not None:
                    worker_spans = outcome.pop("spans", None)
                    if worker_spans:
                        self.tracer.adopt(worker_spans)
                    unit_spans[index].end(
                        status="error" if "error" in outcome else "ok"
                    )
                for position, item in enumerate(unit.requests):
                    responses[item.seq] = self._respond(
                        item,
                        outcome,
                        dedup=position > 0,
                        batch=batch_index,
                        recording=recording,
                    )
            if batch_span is not None:
                batch_span.end()
        ordered = [
            responses[item.seq]
            for item in sorted(drained, key=lambda i: i.seq)
        ]
        for response in ordered:
            self._finish(response)
        return ordered

    def run_until_drained(self) -> list[SolveResponse]:
        """Process batches until the queue is empty; all responses."""
        out: list[SolveResponse] = []
        while self.queue.depth:
            out.extend(self.process_pending())
        return out

    # ------------------------------------------------------------------
    # Drain / shutdown

    @property
    def draining(self) -> bool:
        """True once drain has begun; new submissions are refused."""
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting new work; already-queued work keeps executing.

        Idempotent. Every submission after this point is answered with
        ``status="draining"`` (and counted in
        ``service.drain.rejections``).
        """
        self._draining = True

    def shutdown(
        self,
        drain: bool = True,
        drain_timeout_s: float | None = None,
    ) -> list[SolveResponse]:
        """Stop the service, optionally flushing queued work first.

        With ``drain=True`` (the default), admission stops and queued
        batches execute until the queue is empty or ``drain_timeout_s``
        of wall clock has elapsed. Whatever is still queued afterwards
        — everything, when ``drain=False`` — is answered with a typed
        ``status="draining"`` response (retained and fetchable like any
        other), so every admitted request still reaches a terminal
        response. Returns all responses produced, in completion order.
        """
        self.begin_drain()
        out: list[SolveResponse] = []
        if drain:
            deadline = (
                self._clock() + drain_timeout_s
                if drain_timeout_s is not None
                else None
            )
            while self.queue.depth and (
                deadline is None or self._clock() < deadline
            ):
                out.extend(self.process_pending())
        leftovers_live, leftovers_expired = self.queue.drain(max_items=None)
        for item in sorted(
            leftovers_live + leftovers_expired, key=lambda i: i.seq
        ):
            self._drain_rejections.inc()
            response = SolveResponse(
                request_id=item.request.request_id,
                status="draining",
                error="service shut down before this request executed",
                wait_s=self._wait(item),
            )
            self._finish(response)
            out.append(response)
        self._queue_depth.set(self.queue.depth)
        return out

    # ------------------------------------------------------------------
    # Retrieval and reporting

    def fetch(self, request_id: str) -> SolveResponse | None:
        """Retained response for ``request_id``, or ``None``."""
        found = self.lookup(request_id)
        return found if isinstance(found, SolveResponse) else None

    def lookup(self, request_id: str) -> SolveResponse | StoreMiss:
        """Retained response for ``request_id``, or a typed miss.

        The :class:`~repro.service.store.StoreMiss` says *why* the id is
        unavailable (``unknown`` / ``expired`` / ``evicted``) — the
        socket transport forwards the reason on its fetch-error line.
        """
        found = self.store.lookup(request_id)
        self._store_size.set(len(self.store))
        return found

    def metrics_summary(self) -> dict[str, Any]:
        """Flat scalar view of the service instruments.

        The dict is plain JSON: totals for every counter (per-status
        splits included), current gauge values, and count/mean/p50/p95
        for the latency histogram — the line ``repro serve --metrics``
        emits and the serving example prints.
        """
        return {
            "requests_accepted": self._requests.value(status="accepted"),
            "requests_rejected": self._requests.value(status="rejected"),
            "responses_ok": self._responses.value(status="ok"),
            "responses_error": self._responses.value(status="error"),
            "timeouts": self._timeouts.total,
            "timeouts_queue": self._timeouts.value(phase="queue"),
            "timeouts_execute": self._timeouts.value(phase="execute"),
            "exec_retries": self._exec_retries.total,
            "exec_respawns": self._exec_respawns.total,
            "sheds": self._sheds.total,
            "rate_limited": self._rate_limited.total,
            "drain_rejections": self._drain_rejections.total,
            "batches": self._batches.total,
            "batch_size_mean": self._batch_size.mean(),
            "batch_unique_mean": self._batch_unique.mean(),
            "dedup_hits": self._dedup_hits.total,
            "cache_hits_instance": self._cache_hits.value(cache="instance"),
            "cache_hits_lp": self._cache_hits.value(cache="lp"),
            "queue_depth": self.queue.depth,
            "store_size": len(self.store),
            "latency_count": self._latency.count(),
            "latency_mean_s": self._latency.mean(),
            "latency_p50_s": self._latency.quantile(0.5),
            "latency_p95_s": self._latency.quantile(0.95),
        }

    # ------------------------------------------------------------------
    # Internals

    def _wait(self, item: QueuedRequest) -> float:
        return max(self._clock() - item.arrival, 0.0)

    def _respond(
        self,
        item: QueuedRequest,
        outcome: dict[str, Any],
        dedup: bool,
        batch: int,
        recording: dict[str, Any] | None = None,
    ) -> SolveResponse:
        if "error" in outcome:
            return SolveResponse(
                request_id=item.request.request_id,
                status="error",
                error=str(outcome["error"]),
                dedup=dedup,
                batch_index=batch,
                wait_s=self._wait(item),
            )
        return SolveResponse(
            request_id=item.request.request_id,
            status="ok",
            result=outcome["result"],
            manifest=outcome["manifest"],
            dedup=dedup,
            batch_index=batch,
            wait_s=self._wait(item),
            recording=recording if recording is not None else {},
        )

    def _finish(self, response: SolveResponse) -> None:
        self._responses.inc(status=response.status)
        if response.status == "ok":
            self._latency.observe(response.wait_s)
        span = self._request_spans.pop(response.request_id, None)
        if span is not None:
            span.annotate(
                dedup=response.dedup, batch_index=response.batch_index
            ).end(status=response.status)
        self.store.put(response)
        self._store_size.set(len(self.store))
