"""Completed-result retention with TTL and capacity eviction.

The :class:`ResultStore` is the service's answer to "submit now, fetch
later": every finished :class:`~repro.service.request.SolveResponse` is
kept addressable by request id until either its TTL lapses or the store
hits capacity (oldest completion evicted first). Lookups are
non-destructive — a client may fetch the same result repeatedly inside
the window, which is what lets the ``repro serve`` socket transport
answer re-fetches without re-solving.

A miss is typed: :meth:`ResultStore.lookup` answers a
:class:`StoreMiss` carrying *why* the id is gone — ``"expired"`` (TTL
lapsed), ``"evicted"`` (capacity pressure) or ``"unknown"`` (never
stored, or so old its tombstone itself rotated out) — so a client
re-fetching after the window gets an actionable reason instead of a
bare ``None``. Tombstones are bounded by the same ``max_entries``
budget as live results.

Like the queue, the store takes an injectable monotonic clock so tests
can step time explicitly.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ReproError
from repro.service.request import SolveResponse

__all__ = ["ResultStore", "StoreMiss", "StoredResult"]


@dataclass(frozen=True)
class StoreMiss:
    """A typed fetch miss: which id, and why it is not retrievable.

    ``reason`` is ``"expired"`` (TTL eviction), ``"evicted"`` (capacity
    eviction) or ``"unknown"`` (the store never saw the id, or its
    tombstone has itself rotated out of the bounded tombstone budget).
    """

    request_id: str
    reason: str = "unknown"


@dataclass(frozen=True)
class StoredResult:
    """One retained response plus its expiry bookkeeping."""

    response: SolveResponse
    stored_at: float
    expires_at: float | None  # None = no TTL

    def expired(self, now: float) -> bool:
        """True once ``now`` has passed the entry's TTL."""
        return self.expires_at is not None and now > self.expires_at


class ResultStore:
    """Bounded, TTL-evicting map from request id to response.

    Parameters
    ----------
    ttl_s:
        Seconds a result stays fetchable after completion; ``None``
        disables time-based eviction.
    max_entries:
        Capacity; storing beyond it evicts the oldest completion.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        ttl_s: float | None = 300.0,
        max_entries: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl_s is not None and ttl_s <= 0:
            raise ReproError(f"ttl_s must be positive, got {ttl_s}")
        if max_entries < 1:
            raise ReproError(f"max_entries must be >= 1, got {max_entries}")
        self.ttl_s = ttl_s
        self.max_entries = int(max_entries)
        self._clock = clock
        self._entries: OrderedDict[str, StoredResult] = OrderedDict()
        self._tombstones: OrderedDict[str, str] = OrderedDict()
        self.evicted_ttl = 0
        self.evicted_capacity = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, response: SolveResponse) -> None:
        """Retain ``response``; re-putting an id refreshes its TTL."""
        now = self._clock()
        expires = now + self.ttl_s if self.ttl_s is not None else None
        self._entries.pop(response.request_id, None)
        self._tombstones.pop(response.request_id, None)
        self._entries[response.request_id] = StoredResult(
            response=response, stored_at=now, expires_at=expires
        )
        while len(self._entries) > self.max_entries:
            evicted_id, _ = self._entries.popitem(last=False)
            self._remember_miss(evicted_id, "evicted")
            self.evicted_capacity += 1

    def get(self, request_id: str) -> SolveResponse | None:
        """Fetch a retained response, or ``None`` if unknown/expired."""
        found = self.lookup(request_id)
        return found if isinstance(found, SolveResponse) else None

    def lookup(self, request_id: str) -> SolveResponse | StoreMiss:
        """Fetch a retained response, or a typed :class:`StoreMiss`."""
        self.sweep()
        entry = self._entries.get(request_id)
        if entry is not None:
            return entry.response
        return StoreMiss(
            request_id=request_id,
            reason=self._tombstones.get(request_id, "unknown"),
        )

    def sweep(self) -> int:
        """Drop every expired entry; returns how many were evicted."""
        now = self._clock()
        dead = [
            request_id
            for request_id, entry in self._entries.items()
            if entry.expired(now)
        ]
        for request_id in dead:
            del self._entries[request_id]
            self._remember_miss(request_id, "expired")
        self.evicted_ttl += len(dead)
        return len(dead)

    def _remember_miss(self, request_id: str, reason: str) -> None:
        """Tombstone an evicted id, bounded by the ``max_entries`` budget."""
        self._tombstones.pop(request_id, None)
        self._tombstones[request_id] = reason
        while len(self._tombstones) > self.max_entries:
            self._tombstones.popitem(last=False)
