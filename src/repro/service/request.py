"""Request/response model of the batched solve service.

A :class:`SolveRequest` is everything the service needs to reproduce one
solve: the *instance source* (a generator recipe or an inline instance),
the algorithm configuration, and per-request service options. Requests
are frozen and carry a canonical :meth:`SolveRequest.work_key` — two
requests with the same work key are guaranteed to produce the same
answer, which is what lets the batcher solve duplicates once.

The wire format (:meth:`SolveRequest.to_wire` / :meth:`SolveRequest.
from_wire`) is a flat JSON dict, one per JSONL line in the ``repro
serve`` protocol; inline instances travel as the standard
:func:`~repro.fl.io.instance_to_dict` payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.algorithm import Variant
from repro.exceptions import ReproError
from repro.fl.generators import FAMILIES
from repro.fl.instance import FacilityLocationInstance
from repro.fl.io import instance_from_dict, instance_to_dict
from repro.obs.manifest import instance_digest
from repro.obs.spans import SpanContext

__all__ = [
    "InstanceRecipe",
    "PRIORITY_CLASSES",
    "SERVICE_ENGINES",
    "SolveRequest",
    "SolveResponse",
    "priority_level",
]

#: Engines a request may select. ``"simulator"`` (the default) is the
#: message-passing simulator every pre-engine client gets; the emulation
#: engines skip network simulation (columnar additionally shards).
SERVICE_ENGINES: tuple[str, ...] = (
    "simulator",
    "loop",
    "vectorized",
    "columnar",
)

#: Admission priority classes, lowest first. Under overload the service
#: sheds the lowest class first (see
#: :class:`~repro.service.queue.AdmissionQueue`).
PRIORITY_CLASSES: tuple[str, ...] = ("low", "normal", "high")


def priority_level(priority: str) -> int:
    """Numeric rank of a priority class (higher = more important)."""
    try:
        return PRIORITY_CLASSES.index(priority)
    except ValueError:
        raise ReproError(
            f"priority must be one of {PRIORITY_CLASSES}, got {priority!r}"
        ) from None


@dataclass(frozen=True)
class InstanceRecipe:
    """A generator recipe: enough to rebuild an instance deterministically.

    Recipes are the cheap way to name an instance over the wire — four
    scalars instead of two cost matrices — and they key straight into
    :func:`repro.perf.cache.cached_instance`, so a batch of requests
    against the same recipe materializes the instance once per process.
    """

    family: str
    num_facilities: int
    num_clients: int
    seed: int

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ReproError(
                f"unknown family {self.family!r}; "
                f"known families: {sorted(FAMILIES)}"
            )
        if self.num_facilities < 1 or self.num_clients < 1:
            raise ReproError(
                f"recipe sizes must be positive, got "
                f"{self.num_facilities}x{self.num_clients}"
            )

    def key(self) -> tuple[str, int, int, int]:
        """Cache key tuple, matching :func:`repro.perf.cache.cached_instance`."""
        return (self.family, self.num_facilities, self.num_clients, self.seed)

    def to_wire(self) -> dict[str, Any]:
        """Flat JSON dict for the JSONL protocol."""
        return {
            "family": self.family,
            "m": self.num_facilities,
            "n": self.num_clients,
            "seed": self.seed,
        }

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "InstanceRecipe":
        """Inverse of :meth:`to_wire`."""
        return cls(
            family=str(data["family"]),
            num_facilities=int(data["m"]),
            num_clients=int(data["n"]),
            seed=int(data.get("seed", 0)),
        )


@dataclass(frozen=True)
class SolveRequest:
    """One unit of client work submitted to the service.

    Exactly one of ``recipe`` / ``instance`` must be set. ``seed`` is the
    *algorithm* seed (the instance seed lives in the recipe).
    ``timeout_s`` bounds how long the request may wait in the admission
    queue before execution starts; expired requests complete with status
    ``"timeout"`` instead of being solved. ``compute_lp`` adds the LP
    lower bound and ``ratio_vs_lp`` to the response (at the cost of one
    LP solve, memoized by instance digest); ``capture_events`` runs the
    solve under a bounded trace and reports per-kind protocol event
    counts.

    ``trace_ctx`` is the submitter's span context
    (:class:`~repro.obs.spans.SpanContext`): when set, every span the
    service opens for this request parents under it, making the client
    the root of one connected trace tree. Like ``request_id`` it is
    per-submission plumbing — it never participates in
    :meth:`work_key`, so tracing cannot perturb batching or dedup.

    ``record`` runs the solve under a deterministic flight recorder
    (:class:`~repro.obs.recorder.FlightRecorder`) and attaches the
    recording payload to the response. Unlike ``trace_ctx`` it *does*
    participate in :meth:`work_key` — a recorded and an unrecorded
    request produce different response bytes, so they must not dedup
    against each other. When off (the default) the recorder is never
    constructed and the response is byte-identical to current behavior.

    ``priority`` (one of :data:`PRIORITY_CLASSES`) and ``client_id``
    steer *admission only*: under overload the service sheds lower
    priorities first and rate-limits per client id. Like ``request_id``
    they are per-submission plumbing — neither participates in
    :meth:`work_key`, so a high- and a low-priority request for the same
    work still dedup onto one solve, and both ride the wire only when
    set away from their defaults (existing wire bytes are unchanged).

    ``engine`` (one of :data:`SERVICE_ENGINES`) selects the execution
    engine; non-simulator engines change the response bytes (no
    simulated network), so ``engine`` joins :meth:`work_key` — but only
    when set away from ``"simulator"``, keeping every pre-engine work
    key (and wire line) byte-identical. ``shards`` splits a columnar
    solve across worker processes; by the sharding determinism contract
    it can never change the answer bytes, so like ``priority`` it stays
    *out* of the work key — requests differing only in ``shards`` dedup
    onto one solve.
    """

    request_id: str
    recipe: InstanceRecipe | None = None
    instance: FacilityLocationInstance | None = None
    k: int = 9
    variant: str = Variant.GREEDY.value
    seed: int = 0
    rounding: str = "select_all"
    c_round: float = 1.0
    compute_lp: bool = False
    capture_events: bool = False
    record: bool = False
    timeout_s: float | None = None
    trace_ctx: SpanContext | None = None
    priority: str = "normal"
    client_id: str = ""
    engine: str = "simulator"
    shards: int = 1

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ReproError("request_id must be non-empty")
        if self.priority not in PRIORITY_CLASSES:
            raise ReproError(
                f"unknown priority {self.priority!r}; expected one of "
                f"{list(PRIORITY_CLASSES)}"
            )
        if (self.recipe is None) == (self.instance is None):
            raise ReproError(
                f"request {self.request_id!r} must set exactly one of "
                "recipe or instance"
            )
        if self.k < 1:
            raise ReproError(f"k must be >= 1, got {self.k}")
        if self.variant not in {v.value for v in Variant}:
            raise ReproError(
                f"unknown variant {self.variant!r}; expected one of "
                f"{sorted(v.value for v in Variant)}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ReproError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.engine not in SERVICE_ENGINES:
            raise ReproError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{list(SERVICE_ENGINES)}"
            )
        if self.shards < 1:
            raise ReproError(f"shards must be >= 1, got {self.shards}")
        if self.shards != 1 and self.engine != "columnar":
            raise ReproError(
                f"engine {self.engine!r} does not shard; "
                "shards > 1 needs engine='columnar'"
            )
        if self.capture_events and self.engine != "simulator":
            raise ReproError(
                "capture_events needs the simulator engine (the emulation "
                "engines produce no protocol events)"
            )

    def instance_key(self) -> tuple[Any, ...]:
        """Canonical identity of the instance this request solves.

        Recipes key by their four scalars; inline instances key by
        content digest, so two clients uploading equal-content instances
        still dedup against each other.
        """
        if self.recipe is not None:
            return ("recipe",) + self.recipe.key()
        assert self.instance is not None
        return ("digest", instance_digest(self.instance))

    def work_key(self) -> tuple[Any, ...]:
        """Canonical identity of the *work*: requests with equal work
        keys produce identical responses and are solved once per batch.

        The key covers everything that shapes the answer — instance,
        algorithm knobs, and the output options (``compute_lp`` /
        ``capture_events``, which add fields to the response) — but not
        ``request_id`` or ``timeout_s``, which are per-submission.
        """
        key: tuple[Any, ...] = (
            self.instance_key(),
            self.k,
            self.variant,
            self.seed,
            self.rounding,
            self.c_round,
            self.compute_lp,
            self.capture_events,
            self.record,
        )
        if self.engine != "simulator":
            # Appended only when set away from the default so every
            # pre-engine work key is unchanged; shards never joins —
            # by the sharding determinism contract it cannot change
            # the answer bytes, so shard counts dedup together.
            key += (self.engine,)
        return key

    def to_wire(self) -> dict[str, Any]:
        """Flat JSON dict for the JSONL protocol (``type: "solve"``)."""
        payload: dict[str, Any] = {
            "type": "solve",
            "request_id": self.request_id,
            "k": self.k,
            "variant": self.variant,
            "seed": self.seed,
            "rounding": self.rounding,
            "c_round": self.c_round,
            "compute_lp": self.compute_lp,
            "capture_events": self.capture_events,
        }
        if self.record:
            # Emitted only when set: the wire line of a non-recording
            # request stays byte-identical to the pre-recorder protocol.
            payload["record"] = True
        if self.priority != "normal":
            # Emitted only when set, like `record`: default-priority wire
            # lines stay byte-identical to the pre-priority protocol.
            payload["priority"] = self.priority
        if self.client_id:
            payload["client_id"] = self.client_id
        if self.engine != "simulator":
            # Emitted only when set, like `record`: default-engine wire
            # lines stay byte-identical to the pre-engine protocol.
            payload["engine"] = self.engine
        if self.shards != 1:
            payload["shards"] = self.shards
        if self.timeout_s is not None:
            payload["timeout_s"] = self.timeout_s
        if self.trace_ctx is not None:
            payload["trace"] = self.trace_ctx.to_wire()
        if self.recipe is not None:
            payload["recipe"] = self.recipe.to_wire()
        else:
            assert self.instance is not None
            payload["instance"] = instance_to_dict(self.instance)
        return payload

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "SolveRequest":
        """Build a request from one decoded JSONL line."""
        recipe = None
        instance = None
        if "recipe" in data and data["recipe"] is not None:
            recipe = InstanceRecipe.from_wire(data["recipe"])
        if "instance" in data and data["instance"] is not None:
            instance = instance_from_dict(dict(data["instance"]))
        timeout = data.get("timeout_s")
        trace_ctx = None
        if data.get("trace"):
            trace_ctx = SpanContext.from_wire(data["trace"])
        return cls(
            request_id=str(data.get("request_id", "")),
            recipe=recipe,
            instance=instance,
            k=int(data.get("k", 9)),
            variant=str(data.get("variant", Variant.GREEDY.value)),
            seed=int(data.get("seed", 0)),
            rounding=str(data.get("rounding", "select_all")),
            c_round=float(data.get("c_round", 1.0)),
            compute_lp=bool(data.get("compute_lp", False)),
            capture_events=bool(data.get("capture_events", False)),
            record=bool(data.get("record", False)),
            timeout_s=float(timeout) if timeout is not None else None,
            trace_ctx=trace_ctx,
            priority=str(data.get("priority", "normal")),
            client_id=str(data.get("client_id", "")),
            engine=str(data.get("engine", "simulator")),
            shards=int(data.get("shards", 1)),
        )


@dataclass(frozen=True)
class SolveResponse:
    """The service's answer to one request.

    ``status`` is one of ``"ok"`` (solved; ``result`` and ``manifest``
    are populated), ``"timeout"`` (deadline passed while queued or
    before execution started; ``error`` says which phase),
    ``"rejected"`` (admission refused: queue full, rate-limited, or
    shed for priority — ``error`` carries the reason),
    ``"draining"`` (the service is shutting down: the request was
    either refused at admission or still queued when the drain budget
    ran out) or ``"error"`` (the solve raised; ``error`` carries the
    message). ``manifest`` is the same
    :class:`~repro.obs.manifest.RunRecord` dict a direct
    ``repro solve --trace`` writes — byte-identical for equal work, which
    is the service's core correctness contract. ``dedup`` marks
    responses that were served from another request's solve in the same
    batch rather than a dedicated run.

    ``recording`` carries the flight-recorder payload when the request
    set ``record``; like worker spans it rides beside the result — the
    ``result`` and ``manifest`` fields are byte-identical with and
    without it, and it is absent from the wire when empty.
    """

    request_id: str
    status: str
    result: Mapping[str, Any] = field(default_factory=dict)
    manifest: Mapping[str, Any] = field(default_factory=dict)
    error: str = ""
    dedup: bool = False
    batch_index: int = -1
    wait_s: float = 0.0
    recording: Mapping[str, Any] = field(default_factory=dict)

    def to_wire(self) -> dict[str, Any]:
        """Flat JSON dict for the JSONL protocol (``type: "response"``)."""
        payload: dict[str, Any] = {
            "type": "response",
            "request_id": self.request_id,
            "status": self.status,
            "dedup": self.dedup,
            "batch_index": self.batch_index,
            "wait_s": self.wait_s,
        }
        if self.result:
            payload["result"] = dict(self.result)
        if self.manifest:
            payload["manifest"] = dict(self.manifest)
        if self.error:
            payload["error"] = self.error
        if self.recording:
            payload["recording"] = dict(self.recording)
        return payload

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "SolveResponse":
        """Inverse of :meth:`to_wire`."""
        return cls(
            request_id=str(data.get("request_id", "")),
            status=str(data.get("status", "error")),
            result=dict(data.get("result", {})),
            manifest=dict(data.get("manifest", {})),
            error=str(data.get("error", "")),
            dedup=bool(data.get("dedup", False)),
            batch_index=int(data.get("batch_index", -1)),
            wait_s=float(data.get("wait_s", 0.0)),
            recording=dict(data.get("recording", {})),
        )
