"""Transports of the solve service: stdin/JSONL and a Unix socket.

Both transports speak the same line protocol (the codec lives in
:mod:`repro.service.client`): each input line is one JSON object, and
every line produces at least one reply line, so clients are plain
synchronous request/response loops.

=================== ==================================================
input line          reply line(s)
=================== ==================================================
``{"type":"solve"}`` one ``ack`` line (``accepted`` true/false)
``{"type":"flush"}`` one ``response`` line per completed request, in
                    arrival order, then ``flush_done`` with the count
``{"type":"fetch"}`` the retained ``response`` line, or an ``error``
``{"type":"metrics"}`` one ``metrics`` line (the flat summary dict;
                    with ``"full": true`` the line also carries the
                    complete registry ``snapshot`` payload)
``{"type":"shutdown"}`` one ``bye`` line; the server then stops
=================== ==================================================

``repro serve`` (see :mod:`repro.cli`) reads stdin and writes stdout by
default; with ``--socket PATH`` it binds a Unix domain socket instead
and serves connections sequentially. Batching still happens inside the
shared :class:`~repro.service.service.SolveService` — a ``flush`` after
many ``solve`` lines executes them as deduplicated batches, which is the
entire point of the front-end. On stdin EOF any still-queued work is
flushed implicitly so piped workloads cannot lose requests.
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import IO, Any, Iterator, Mapping

from repro.exceptions import ReproError
from repro.obs.metrics_io import snapshot_payload
from repro.service.client import decode_line, encode_line
from repro.service.request import SolveRequest
from repro.service.service import SolveService

__all__ = ["ServiceProtocol", "serve_jsonl", "serve_socket"]


class ServiceProtocol:
    """Maps one decoded input payload to its reply payloads.

    Transport-independent: the stdin loop and the socket server both
    feed decoded lines through :meth:`handle` and write back whatever it
    yields. ``shutting_down`` flips once a ``shutdown`` payload is seen;
    the owning transport checks it after each line.
    """

    def __init__(self, service: SolveService) -> None:
        self.service = service
        self.shutting_down = False

    def handle(self, payload: Mapping[str, Any]) -> Iterator[dict[str, Any]]:
        """Yield the reply payloads for one input payload."""
        kind = payload.get("type", "solve")
        if kind == "solve":
            yield self._handle_solve(payload)
        elif kind == "flush":
            responses = self.service.run_until_drained()
            for response in responses:
                yield response.to_wire()
            yield {"type": "flush_done", "count": len(responses)}
        elif kind == "fetch":
            request_id = str(payload.get("request_id", ""))
            response = self.service.fetch(request_id)
            if response is None:
                yield {
                    "type": "error",
                    "error": f"no retained response for {request_id!r}",
                }
            else:
                yield response.to_wire()
        elif kind == "metrics":
            if payload.get("full"):
                yield {
                    "type": "metrics",
                    "metrics": self.service.metrics_summary(),
                    "snapshot": snapshot_payload(self.service.registry),
                }
            else:
                yield {
                    "type": "metrics",
                    "metrics": self.service.metrics_summary(),
                }
        elif kind == "shutdown":
            self.shutting_down = True
            yield {"type": "bye"}
        else:
            yield {"type": "error", "error": f"unknown line type {kind!r}"}

    def _handle_solve(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        try:
            request = SolveRequest.from_wire(payload)
        except (ReproError, KeyError, TypeError, ValueError) as error:
            return {
                "type": "ack",
                "request_id": str(payload.get("request_id", "")),
                "accepted": False,
                "reason": f"malformed request: {error}",
            }
        outcome = self.service.submit(request)
        ack: dict[str, Any] = {
            "type": "ack",
            "request_id": request.request_id,
            "accepted": outcome.accepted,
        }
        if not outcome.accepted:
            ack["reason"] = outcome.reason
        return ack


def serve_jsonl(
    service: SolveService,
    stream_in: IO[str],
    stream_out: IO[str],
    emit_metrics: bool = False,
) -> int:
    """Serve the line protocol over text streams until EOF or shutdown.

    On EOF, queued work is flushed implicitly (response lines plus the
    ``flush_done`` marker) so ``cat requests.jsonl | repro serve`` always
    answers everything it admitted; ``emit_metrics`` appends one final
    ``metrics`` line. Returns the number of lines served.
    """
    protocol = ServiceProtocol(service)
    served = 0
    for line in stream_in:
        if not line.strip():
            continue
        try:
            payload = decode_line(line)
        except ReproError as error:
            replies: Iterator[dict[str, Any]] = iter(
                [{"type": "error", "error": str(error)}]
            )
        else:
            replies = protocol.handle(payload)
        for reply in replies:
            stream_out.write(encode_line(reply))
        stream_out.flush()
        served += 1
        if protocol.shutting_down:
            break
    if not protocol.shutting_down and service.pending:
        for reply in protocol.handle({"type": "flush"}):
            stream_out.write(encode_line(reply))
    if emit_metrics:
        for reply in protocol.handle({"type": "metrics"}):
            stream_out.write(encode_line(reply))
    stream_out.flush()
    return served


def serve_socket(
    service: SolveService,
    path: str | Path,
    ready: Any | None = None,
) -> int:
    """Serve the line protocol on a Unix domain socket at ``path``.

    Connections are handled sequentially (the service itself is
    synchronous); state — queue, store, metrics — persists across
    connections, so a client may submit, disconnect, and re-fetch later
    within the result TTL. A ``shutdown`` line stops the server after
    its ``bye`` reply. ``ready``, when given, is an object with a
    ``set()`` method (e.g. ``threading.Event``) signalled once the
    socket is listening — the test hook that avoids connect races.
    Returns the number of connections served.
    """
    socket_path = Path(path)
    if socket_path.exists():
        socket_path.unlink()
    protocol = ServiceProtocol(service)
    connections = 0
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as server:
        server.bind(str(socket_path))
        server.listen(1)
        if ready is not None:
            ready.set()
        while not protocol.shutting_down:
            conn, _ = server.accept()
            connections += 1
            with conn, conn.makefile(
                "rw", encoding="utf-8", newline="\n"
            ) as stream:
                for line in stream:
                    if not line.strip():
                        continue
                    try:
                        payload = decode_line(line)
                    except ReproError as error:
                        stream.write(
                            encode_line({"type": "error", "error": str(error)})
                        )
                        stream.flush()
                        continue
                    for reply in protocol.handle(payload):
                        stream.write(encode_line(reply))
                    stream.flush()
                    if protocol.shutting_down:
                        break
    socket_path.unlink(missing_ok=True)
    return connections
