"""Transports of the solve service: stdin/JSONL and a Unix socket.

Both transports speak the same line protocol (the codec lives in
:mod:`repro.service.client`): each input line is one JSON object, and
every line produces at least one reply line, so clients are plain
synchronous request/response loops.

=================== ==================================================
input line          reply line(s)
=================== ==================================================
``{"type":"solve"}`` one ``ack`` line (``accepted`` true/false)
``{"type":"flush"}`` one ``response`` line per completed request, in
                    arrival order, then ``flush_done`` with the count
``{"type":"fetch"}`` the retained ``response`` line, or an ``error``
``{"type":"metrics"}`` one ``metrics`` line (the flat summary dict;
                    with ``"full": true`` the line also carries the
                    complete registry ``snapshot`` payload)
``{"type":"drain"}`` graceful shutdown: one ``response`` line per
                    flushed or drain-rejected request, then
                    ``drain_done`` with the count; the server then
                    stops (``timeout_s`` bounds the flush)
``{"type":"shutdown"}`` one ``bye`` line; the server then stops
=================== ==================================================

``repro serve`` (see :mod:`repro.cli`) reads stdin and writes stdout by
default; with ``--socket PATH`` it binds a Unix domain socket instead
and serves connections sequentially. Batching still happens inside the
shared :class:`~repro.service.service.SolveService` — a ``flush`` after
many ``solve`` lines executes them as deduplicated batches, which is the
entire point of the front-end. On stdin EOF any still-queued work is
flushed implicitly so piped workloads cannot lose requests.
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import IO, Any, Iterator, Mapping

from repro.exceptions import ReproError
from repro.obs.metrics_io import snapshot_payload
from repro.service.client import decode_line, encode_line
from repro.service.request import SolveRequest
from repro.service.service import SolveService
from repro.service.store import StoreMiss

__all__ = ["ServiceProtocol", "serve_jsonl", "serve_socket"]


class ServiceProtocol:
    """Maps one decoded input payload to its reply payloads.

    Transport-independent: the stdin loop and the socket server both
    feed decoded lines through :meth:`handle` and write back whatever it
    yields. ``shutting_down`` flips once a ``shutdown`` payload is seen;
    the owning transport checks it after each line.
    """

    def __init__(self, service: SolveService) -> None:
        self.service = service
        self.shutting_down = False

    def handle(self, payload: Mapping[str, Any]) -> Iterator[dict[str, Any]]:
        """Yield the reply payloads for one input payload."""
        kind = payload.get("type", "solve")
        if kind == "solve":
            yield self._handle_solve(payload)
        elif kind == "flush":
            responses = self.service.run_until_drained()
            for response in responses:
                yield response.to_wire()
            yield {"type": "flush_done", "count": len(responses)}
        elif kind == "fetch":
            request_id = str(payload.get("request_id", ""))
            found = self.service.lookup(request_id)
            if isinstance(found, StoreMiss):
                yield {
                    "type": "error",
                    "error": (
                        f"no retained response for {request_id!r} "
                        f"({found.reason})"
                    ),
                    "reason": found.reason,
                }
            else:
                yield found.to_wire()
        elif kind == "metrics":
            if payload.get("full"):
                yield {
                    "type": "metrics",
                    "metrics": self.service.metrics_summary(),
                    "snapshot": snapshot_payload(self.service.registry),
                }
            else:
                yield {
                    "type": "metrics",
                    "metrics": self.service.metrics_summary(),
                }
        elif kind == "drain":
            timeout = payload.get("timeout_s")
            responses = self.service.shutdown(
                drain=True,
                drain_timeout_s=float(timeout) if timeout is not None else None,
            )
            for response in responses:
                yield response.to_wire()
            yield {"type": "drain_done", "count": len(responses)}
            self.shutting_down = True
        elif kind == "shutdown":
            self.shutting_down = True
            yield {"type": "bye"}
        else:
            yield {"type": "error", "error": f"unknown line type {kind!r}"}

    def _handle_solve(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        try:
            request = SolveRequest.from_wire(payload)
        except (ReproError, KeyError, TypeError, ValueError) as error:
            return {
                "type": "ack",
                "request_id": str(payload.get("request_id", "")),
                "accepted": False,
                "reason": f"malformed request: {error}",
            }
        outcome = self.service.submit(request)
        ack: dict[str, Any] = {
            "type": "ack",
            "request_id": request.request_id,
            "accepted": outcome.accepted,
        }
        if not outcome.accepted:
            ack["reason"] = outcome.reason
        return ack


def serve_jsonl(
    service: SolveService,
    stream_in: IO[str],
    stream_out: IO[str],
    emit_metrics: bool = False,
    drain_signal: Any | None = None,
    drain_timeout_s: float | None = None,
) -> int:
    """Serve the line protocol over text streams until EOF or shutdown.

    On EOF, queued work is flushed implicitly (response lines plus the
    ``flush_done`` marker) so ``cat requests.jsonl | repro serve`` always
    answers everything it admitted; ``emit_metrics`` appends one final
    ``metrics`` line. ``drain_signal`` — any object with ``is_set()``,
    e.g. a ``threading.Event`` flipped by a SIGTERM handler — triggers a
    graceful drain when observed between lines: admission stops, queued
    work flushes for up to ``drain_timeout_s`` seconds, the remainder is
    answered ``status="draining"``, and the loop exits. Returns the
    number of lines served.
    """
    protocol = ServiceProtocol(service)
    served = 0

    def drain_requested() -> bool:
        return drain_signal is not None and drain_signal.is_set()

    for line in stream_in:
        if drain_requested():
            break
        if not line.strip():
            continue
        try:
            payload = decode_line(line)
        except ReproError as error:
            replies: Iterator[dict[str, Any]] = iter(
                [{"type": "error", "error": str(error)}]
            )
        else:
            replies = protocol.handle(payload)
        for reply in replies:
            stream_out.write(encode_line(reply))
        stream_out.flush()
        served += 1
        if protocol.shutting_down:
            break
    if drain_requested() and not protocol.shutting_down:
        drain_payload: dict[str, Any] = {"type": "drain"}
        if drain_timeout_s is not None:
            drain_payload["timeout_s"] = drain_timeout_s
        for reply in protocol.handle(drain_payload):
            stream_out.write(encode_line(reply))
    elif not protocol.shutting_down and service.pending:
        for reply in protocol.handle({"type": "flush"}):
            stream_out.write(encode_line(reply))
    if emit_metrics:
        for reply in protocol.handle({"type": "metrics"}):
            stream_out.write(encode_line(reply))
    stream_out.flush()
    return served


def serve_socket(
    service: SolveService,
    path: str | Path,
    ready: Any | None = None,
    drain_signal: Any | None = None,
    drain_timeout_s: float | None = None,
) -> int:
    """Serve the line protocol on a Unix domain socket at ``path``.

    Connections are handled sequentially (the service itself is
    synchronous); state — queue, store, metrics — persists across
    connections, so a client may submit, disconnect, and re-fetch later
    within the result TTL. A ``shutdown`` or ``drain`` line stops the
    server after its reply. ``ready``, when given, is an object with a
    ``set()`` method (e.g. ``threading.Event``) signalled once the
    socket is listening — the test hook that avoids connect races.

    The server survives misbehaving clients: a connection that resets,
    half-sends a frame, or vanishes mid-reply only ends *that*
    connection — the accept loop keeps serving (the chaos harness
    injects exactly these faults). ``drain_signal`` (an ``is_set()``
    object, e.g. a ``threading.Event`` flipped by SIGTERM) is polled
    between connections and while waiting for one: once set, the
    service drains gracefully (bounded by ``drain_timeout_s``) and the
    server exits. Returns the number of connections served.
    """
    socket_path = Path(path)
    if socket_path.exists():
        socket_path.unlink()
    protocol = ServiceProtocol(service)
    connections = 0

    def drain_requested() -> bool:
        return drain_signal is not None and drain_signal.is_set()

    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as server:
        server.bind(str(socket_path))
        server.listen(1)
        if drain_signal is not None:
            # Poll the drain signal between accepts instead of blocking
            # forever on a connection that may never come.
            server.settimeout(0.25)
        if ready is not None:
            ready.set()
        while not protocol.shutting_down:
            if drain_requested():
                service.shutdown(drain=True, drain_timeout_s=drain_timeout_s)
                break
            try:
                conn, _ = server.accept()
            except socket.timeout:
                continue
            connections += 1
            try:
                # Separate reader/writer streams: a combined "rw"
                # makefile drops its read-ahead buffer on write, losing
                # lines a pipelining client sent before our reply.
                with conn, conn.makefile(
                    "r", encoding="utf-8", newline="\n"
                ) as reader, conn.makefile(
                    "w", encoding="utf-8", newline="\n"
                ) as writer:
                    for line in reader:
                        if not line.strip():
                            continue
                        try:
                            payload = decode_line(line)
                        except ReproError as error:
                            writer.write(
                                encode_line(
                                    {"type": "error", "error": str(error)}
                                )
                            )
                            writer.flush()
                            continue
                        for reply in protocol.handle(payload):
                            writer.write(encode_line(reply))
                        writer.flush()
                        if protocol.shutting_down:
                            break
            except (OSError, ValueError):
                # A dropped/reset/half-closed client connection is the
                # client's failure, not the server's: keep serving.
                continue
    socket_path.unlink(missing_ok=True)
    return connections
