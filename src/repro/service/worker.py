"""The service's unit of solver work, shippable to pool workers.

A :class:`ServiceCell` is the executable form of one *unique* work unit
(one :meth:`~repro.service.request.SolveRequest.work_key`): the batcher
collapses duplicate requests onto one cell, and
:func:`run_service_cell` — a module-level function, so
:class:`~repro.perf.executor.SweepExecutor` can ship it to spawned
interpreters — performs the actual solve.

The correctness contract lives here: the cell calls the same
:func:`~repro.core.algorithm.solve_distributed` path with the same
arguments as the ``repro solve`` CLI and builds its manifest through the
same :meth:`~repro.obs.manifest.RunRecord.from_run` constructor, so a
batched answer is byte-identical (wall-clock fields aside) to a direct
one. Instances and LP bounds come from :mod:`repro.perf.cache`, which is
how a batch full of near-duplicate requests pays for its shared setup
once per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.algorithm import solve_distributed
from repro.core.dual_ascent_nodes import RoundingPolicy
from repro.fl.instance import FacilityLocationInstance
from repro.obs.manifest import RunRecord
from repro.obs.sinks import RingBufferTrace
from repro.obs.spans import SpanContext, Tracer
from repro.perf.cache import cached_instance, cached_lp_value
from repro.service.request import InstanceRecipe

__all__ = ["ServiceCell", "run_service_cell", "run_service_cell_guarded"]


@dataclass(frozen=True)
class ServiceCell:
    """One unique, picklable unit of solver work.

    Either ``recipe`` or ``instance`` is set (never both); the remaining
    fields mirror the request's algorithm knobs. Frozen + plain data, so
    cells pickle cheaply and pass :class:`~repro.perf.executor.
    SweepExecutor`'s spawn-safety checks.

    ``trace_ctx`` is the causal context of the work unit's span on the
    service side; it crosses the process boundary inside the pickled
    cell, and the worker parents its whole span subtree under it (ids
    namespaced by the parent span id, so the merged tree cannot
    collide). ``profile_memory`` opts the worker's solve span into
    ``tracemalloc`` peak sampling. ``record`` runs the solve under a
    flight recorder and ships the recording back under the extra
    ``"recording"`` key, riding beside the result exactly like spans.

    ``engine`` selects the execution path: ``"simulator"`` (the default)
    is the message-passing simulator; the emulation engines run through
    :func:`~repro.core.sequential_sim.run_sequential` and shape their
    outcome as a :class:`~repro.core.algorithm.DistributedRunResult` so
    the manifest/payload tail is shared. ``shards`` (columnar only)
    splits the solve across worker processes and — by the sharding
    determinism contract — never changes the answer bytes, which is why
    the batcher may execute a dedup group with any member's shard count.
    """

    recipe: InstanceRecipe | None
    instance: FacilityLocationInstance | None
    k: int
    variant: str
    seed: int
    rounding: str
    c_round: float
    compute_lp: bool
    capture_events: bool
    record: bool = False
    trace_ctx: SpanContext | None = None
    profile_memory: bool = False
    engine: str = "simulator"
    shards: int = 1


def run_service_cell(cell: ServiceCell) -> dict[str, Any]:
    """Solve one cell; return a plain-JSON ``{"result", "manifest"}`` dict.

    The returned ``manifest`` is exactly what ``repro solve --trace``
    writes for the same configuration (same parameters block, same
    extras), and ``result`` is the compact answer clients consume (cost,
    open facilities, rounds, message totals, optional LP ratio and
    per-kind event counts).

    When the cell carries a :class:`~repro.obs.spans.SpanContext`, the
    worker builds a span subtree under it — ``worker.solve`` wrapping
    ``worker.instance`` / ``worker.lp`` / the traced solve with its
    per-round children — and ships it back under the extra ``"spans"``
    key. The key rides *next to* ``result``/``manifest``, never inside
    them, so traced and untraced answers stay byte-identical.
    """
    tracer: Tracer | None = None
    root = None
    if cell.trace_ctx is not None:
        tracer = Tracer(
            trace_id=cell.trace_ctx.trace_id,
            id_prefix=f"{cell.trace_ctx.span_id}/",
            profile_memory=cell.profile_memory,
        )
        root = tracer.start_span(
            "worker.solve",
            parent=cell.trace_ctx,
            attributes={"k": cell.k, "variant": cell.variant},
        )
    if cell.recipe is not None:
        if tracer is not None:
            with tracer.span("worker.instance", family=cell.recipe.family):
                instance = cached_instance(*cell.recipe.key())
        else:
            instance = cached_instance(*cell.recipe.key())
    else:
        assert cell.instance is not None
        instance = cell.instance
    lp_value: float | None = None
    if cell.compute_lp:
        if tracer is not None:
            with tracer.span("worker.lp"):
                lp_value = cached_lp_value(instance)
        else:
            lp_value = cached_lp_value(instance)
    trace = RingBufferTrace() if cell.capture_events else None
    recorder = None
    if cell.record:
        from repro.obs.recorder import FlightRecorder

        recorder = FlightRecorder(
            engine=cell.engine,
            config={
                "k": cell.k,
                "variant": cell.variant,
                "seed": cell.seed,
                "rounding": cell.rounding,
                "c_round": cell.c_round,
            },
        )
    if cell.engine == "simulator":
        result = solve_distributed(
            instance,
            k=cell.k,
            variant=cell.variant,
            seed=cell.seed,
            rounding=RoundingPolicy(mode=cell.rounding, c_round=cell.c_round),
            trace=trace,
            tracer=tracer,
            recorder=recorder,
        )
    elif tracer is not None:
        with tracer.span("worker.engine", engine=cell.engine):
            result = _run_engine_result(cell, instance, recorder)
    else:
        result = _run_engine_result(cell, instance, recorder)
    extras: dict[str, Any] = {}
    if lp_value is not None:
        extras["ratio_vs_lp"] = result.cost / max(lp_value, 1e-12)
    parameters: dict[str, Any] = {
        "k": cell.k,
        "variant": cell.variant,
        "rounding": cell.rounding,
        "c_round": cell.c_round,
    }
    if cell.engine != "simulator":
        # Recorded only when set away from the default, so default
        # manifests stay byte-identical to the pre-engine service.
        # Shards never appears: it is outside the work key, so a dedup
        # group may mix shard counts yet must share one answer byte-run.
        parameters["engine"] = cell.engine
    manifest = RunRecord.from_run(
        result,
        seed=cell.seed,
        parameters=parameters,
        wall_seconds=result.wall_seconds,
        extras=extras,
    )
    payload: dict[str, Any] = {
        "instance": instance.name,
        "k": cell.k,
        "variant": cell.variant,
        "cost": result.cost,
        "open_facilities": sorted(result.open_facilities),
        "rounds": result.metrics.rounds,
        "total_messages": result.metrics.total_messages,
        "max_message_bits": result.metrics.max_message_bits,
    }
    if cell.engine != "simulator":
        payload["engine"] = cell.engine
    if lp_value is not None:
        payload["lp_value"] = lp_value
        payload["ratio_vs_lp"] = extras["ratio_vs_lp"]
    if trace is not None:
        counts: dict[str, int] = {}
        for event in trace:
            counts[event.event] = counts.get(event.event, 0) + 1
        payload["events_by_kind"] = dict(sorted(counts.items()))
    out: dict[str, Any] = {"result": payload, "manifest": manifest.to_dict()}
    if recorder is not None:
        # Beside — never inside — result/manifest, mirroring "spans".
        out["recording"] = recorder.to_payload()
    if tracer is not None:
        assert root is not None
        root.annotate(cost=result.cost, rounds=result.metrics.rounds).end()
        tracer.close()
        out["spans"] = tracer.export()
    return out


def _run_engine_result(cell: ServiceCell, instance, recorder):
    """Run an emulation engine, shaped as a DistributedRunResult.

    Columnar runs carry their modeled CONGEST traffic in a
    :class:`~repro.net.columnar.ColumnarBitLedger`; the in-memory
    engines report empty metrics (they exchange no messages). Either
    way the result quacks like the simulator's, so the manifest and
    payload construction downstream is one shared path.
    """
    import time

    import numpy as np

    from repro.core.algorithm import DistributedRunResult
    from repro.core.sequential_sim import run_sequential
    from repro.net.metrics import NetworkMetrics
    from repro.obs.timeline import RoundTimeline

    ledger = None
    if cell.engine == "columnar":
        from repro.net.columnar import ColumnarBitLedger

        ledger = ColumnarBitLedger(
            instance.num_facilities,
            instance.num_clients,
            int(np.isfinite(instance.connection_costs).sum()),
        )
    started = time.perf_counter()
    run = run_sequential(
        instance,
        k=cell.k,
        variant=cell.variant,
        seed=cell.seed,
        rounding=RoundingPolicy(mode=cell.rounding, c_round=cell.c_round),
        engine=cell.engine,
        shards=cell.shards,
        recorder=recorder,
        ledger=ledger,
    )
    wall_seconds = time.perf_counter() - started
    if ledger is not None:
        metrics = ledger.to_metrics()
        timeline = ledger.to_timeline(instance.num_nodes)
    else:
        metrics = NetworkMetrics()
        timeline = RoundTimeline()
    return DistributedRunResult(
        instance=instance,
        params=run.params,
        variant=run.variant,
        solution=run.solution,
        open_facilities=run.open_facilities,
        unserved_clients=(),
        metrics=metrics,
        timeline=timeline,
        wall_seconds=wall_seconds,
        diagnostics={"engine": cell.engine},
    )


def run_service_cell_guarded(cell: ServiceCell) -> dict[str, Any]:
    """Like :func:`run_service_cell`, but a failure answers only its cell.

    The batcher maps this over a whole batch; without the guard, one
    malformed request (bad rounding mode, infeasible faulted instance,
    ...) would abort the ``Executor.map`` and take every other request
    in the batch down with it. Errors come back as
    ``{"error": "<Type>: <message>"}`` and the service turns them into
    ``status="error"`` responses for just that unit's requests.
    """
    try:
        return run_service_cell(cell)
    except Exception as error:  # noqa: BLE001 — the boundary of the pool
        return {"error": f"{type(error).__name__}: {error}"}
