"""Pipelining client: many in-flight requests on one connection.

The synchronous stream clients round-trip every submit — send the solve
line, wait for its ack. That is one network round trip per request,
which caps a single connection's throughput at ``1 / RTT`` regardless
of how fast the server is. :class:`AsyncServiceClient` removes the cap
by *pipelining*: :meth:`submit` writes the solve line and returns
without reading the ack, so many requests ride the connection
back-to-back; acks are collected lazily (and matched to their requests
by ``request_id``) the next time the client reads — on
:meth:`drain_acks`, :meth:`flush` or :meth:`fetch`.

The protocol makes this safe: the server answers lines strictly in the
order it received them, so the reply stream is acks for the pipelined
submits (in order, each carrying its ``request_id``) followed by
whatever the next verb's replies are. Completion, however, is matched
by ``request_id``, never by position — :meth:`flush` files every
response into a per-id map (:meth:`take_response`), so callers that
submitted in one order may collect in any other, and interleaved
waves of submits resolve correctly.

``max_in_flight`` bounds the number of unread acks. This is not
decoration: the server writes each ack immediately, so a client that
pipelines unboundedly without ever reading would eventually fill both
TCP buffers and deadlock against its own submit. The bound drains the
oldest ack before admitting a new submit past the limit.

The client raises the same typed taxonomy as the synchronous clients
(via the shared :class:`~repro.service.transport.LineTransport`), and
it deliberately exposes the ``submit`` / ``flush`` / ``fetch`` /
``close`` verbs with compatible signatures — so
:class:`~repro.service.resilience.RetryingServiceClient` wraps it
unchanged for retry/backoff/reconnect semantics.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ReproError
from repro.obs.spans import Tracer
from repro.service.client import _stamp_trace
from repro.service.request import SolveRequest, SolveResponse
from repro.service.transport import (
    LineTransport,
    connect_tcp,
    connect_unix,
    parse_hostport,
)

__all__ = ["AsyncServiceClient"]


class AsyncServiceClient:
    """Pipelined line-protocol client over TCP or a Unix socket.

    Parameters
    ----------
    address:
        ``HOST:PORT`` of a ``repro serve --tcp`` front end (or pass
        ``host``/``port`` separately).
    path:
        Alternatively, the path of a ``repro serve --socket`` server —
        pipelining is a property of the protocol, not of TCP.
    timeout_s:
        Per-read/write transport timeout.
    max_in_flight:
        Bound on unread acks before :meth:`submit` drains the oldest
        (see the module docstring for why unbounded pipelining would
        deadlock).
    tracer:
        When given, submitted requests are stamped with the tracer's
        current span context, exactly like the synchronous clients.

    Usable as a context manager. Typical session::

        with AsyncServiceClient(address="127.0.0.1:9000") as client:
            for request in requests:         # no round trips here
                client.submit(request)
            responses = client.flush()       # acks + responses resolved
            by_id = {r.request_id: r for r in responses}
    """

    def __init__(
        self,
        address: str | None = None,
        host: str | None = None,
        port: int | None = None,
        path: str | None = None,
        timeout_s: float = 30.0,
        max_in_flight: int = 64,
        tracer: Tracer | None = None,
    ) -> None:
        if max_in_flight < 1:
            raise ReproError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        if address is not None:
            host, port = parse_hostport(address)
        self.timeout_s = float(timeout_s)
        self.max_in_flight = int(max_in_flight)
        self.tracer = tracer
        self._transport: LineTransport
        if path is not None:
            self._transport = connect_unix(str(path), self.timeout_s)
        elif host is not None and port is not None:
            self._transport = connect_tcp(host, int(port), self.timeout_s)
        else:
            raise ReproError(
                "AsyncServiceClient needs address='HOST:PORT', "
                "host and port, or path=<unix socket>"
            )
        #: Submitted ids whose acks have not been read yet, oldest first.
        self._awaiting_acks: list[str] = []
        #: Ack outcomes seen so far: request_id -> accepted bool.
        self._acks: dict[str, bool] = {}
        #: Rejection reasons for refused submits: request_id -> reason.
        self._rejections: dict[str, str] = {}
        #: Responses collected by flushes, keyed by request_id.
        self._responses: dict[str, SolveResponse] = {}

    # ------------------------------------------------------------------
    # Lifecycle

    def __enter__(self) -> "AsyncServiceClient":
        """Context-manager entry; the connection is already open."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: drop the connection."""
        self.close()

    def close(self) -> None:
        """Drop the connection (the server keeps serving others)."""
        self._transport.close()

    def abort(self) -> None:
        """Sever the transport abruptly — the chaos/reset simulation hook."""
        self._transport.abort()

    # ------------------------------------------------------------------
    # Pipelined submission

    @property
    def in_flight(self) -> int:
        """Pipelined submits whose acks have not been read yet."""
        return len(self._awaiting_acks)

    def _read_one_ack(self) -> None:
        """Read the oldest pending ack off the wire and file it."""
        expected = self._awaiting_acks.pop(0)
        payload = self._transport.recv_payload()
        if payload.get("type") != "ack":
            raise ReproError(
                f"protocol desync: expected ack for {expected!r}, "
                f"got {payload.get('type')!r}"
            )
        request_id = str(payload.get("request_id", expected))
        accepted = bool(payload.get("accepted", False))
        self._acks[request_id] = accepted
        if not accepted:
            self._rejections[request_id] = str(payload.get("reason", ""))

    def drain_acks(self) -> dict[str, bool]:
        """Read every pending ack; the full id → accepted map so far.

        Called implicitly by :meth:`flush`, :meth:`fetch`,
        :meth:`metrics` and :meth:`shutdown` — any verb that must read a
        non-ack reply first consumes the acks queued ahead of it.
        """
        while self._awaiting_acks:
            self._read_one_ack()
        return dict(self._acks)

    def submit(self, request: SolveRequest) -> bool:
        """Pipeline one solve request without waiting for its ack.

        Returns ``True``, meaning *pipelined* — admission is not known
        yet. The verdict lands in :meth:`accepted` /
        :meth:`rejection_reason` once acks are drained. When the
        in-flight bound is reached, the oldest ack is drained first, so
        a long submission loop self-regulates instead of deadlocking.
        """
        if self.tracer is not None:
            request = _stamp_trace(request, self.tracer)
        while len(self._awaiting_acks) >= self.max_in_flight:
            self._read_one_ack()
        self._transport.send_payload(request.to_wire())
        self._awaiting_acks.append(request.request_id)
        return True

    def accepted(self, request_id: str) -> bool | None:
        """Ack outcome for a submit: True/False, or None while unread."""
        return self._acks.get(request_id)

    def rejection_reason(self, request_id: str) -> str:
        """Server's rejection reason for a refused submit ("" if none)."""
        return self._rejections.get(request_id, "")

    # ------------------------------------------------------------------
    # Completion

    def flush(self) -> list[SolveResponse]:
        """Drain acks, flush the server, collect this wave's responses.

        Responses are returned in the server's completion order *and*
        filed by ``request_id`` for :meth:`take_response`, so
        out-of-order collection works no matter how submission and
        completion orders differ.
        """
        self.drain_acks()
        self._transport.send_payload({"type": "flush"})
        responses: list[SolveResponse] = []
        while True:
            payload = self._transport.recv_payload()
            if payload.get("type") == "flush_done":
                break
            response = SolveResponse.from_wire(payload)
            responses.append(response)
            self._responses[response.request_id] = response
        return responses

    def take_response(self, request_id: str) -> SolveResponse | None:
        """Pop a response collected by an earlier :meth:`flush`.

        Purely local — no wire traffic. ``None`` when no flush has
        delivered that id yet (use :meth:`fetch` to ask the server).
        """
        return self._responses.pop(request_id, None)

    def fetch(self, request_id: str) -> SolveResponse | None:
        """Fetch a retained response from the server by id.

        Checks the locally collected responses first; otherwise drains
        pending acks and round-trips a ``fetch`` line. ``None`` when the
        server does not retain the id.
        """
        local = self.take_response(request_id)
        if local is not None:
            return local
        self.drain_acks()
        self._transport.send_payload(
            {"type": "fetch", "request_id": request_id}
        )
        payload = self._transport.recv_payload()
        if payload.get("type") == "error":
            return None
        return SolveResponse.from_wire(payload)

    # ------------------------------------------------------------------
    # Service control

    def metrics(self) -> dict[str, Any]:
        """The server's flat metrics summary (drains acks first)."""
        self.drain_acks()
        self._transport.send_payload({"type": "metrics"})
        payload = self._transport.recv_payload()
        return dict(payload.get("metrics", {}))

    def shutdown(self) -> None:
        """Ask the server process to stop accepting and exit."""
        self.drain_acks()
        self._transport.send_payload({"type": "shutdown"})
        self._transport.recv_payload()  # the "bye" line
