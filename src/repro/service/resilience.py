"""Fault tolerance for the serving layer: crash recovery, retries, shedding.

Everything the fair-weather service in :mod:`repro.service.service`
assumes can fail, eventually does: a pool worker segfaults and poisons
its batch, a cell wedges forever, a socket drops mid-reply, a burst of
traffic fills the queue. This module holds the pieces that turn those
failures into bounded, typed, observable outcomes:

* a **typed error taxonomy** — :class:`ServiceError` split into
  :class:`RetriableServiceError` (transient; try again) and
  :class:`FatalServiceError` (retrying cannot help) — shared by the
  socket client, the retrying client and the chaos harness;
* :class:`ResilientExecutor` — a drop-in
  :class:`~repro.perf.executor.SweepExecutor` replacement that detects
  worker death (``BrokenProcessPool`` / :class:`WorkerCrashError`) and
  stuck cells (a wall-clock watchdog), respawns the pool, and re-executes
  only the affected cells under a bounded per-cell attempt budget —
  preserving the ordered-merge byte-identity guarantee because retried
  cells are deterministic;
* :class:`RetryingServiceClient` — idempotent client-side retries with
  exponential backoff and deterministic jitter, safe because resubmitted
  ``request_id``\\ s dedup server-side through the existing work-key
  machinery;
* :class:`RetryPolicy` and :class:`TokenBucket` — the shared retry and
  rate-limit primitives (the service uses the bucket per client id).

Nothing here imports the service orchestrator or the transports, so the
taxonomy can be raised from both without an import cycle.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import ReproError
from repro.perf.executor import _check_spawn_safe

__all__ = [
    "ExecutionReport",
    "FatalServiceError",
    "ResilientExecutor",
    "RetryPolicy",
    "RetryStats",
    "RetryingServiceClient",
    "RETRIABLE_REJECT_REASONS",
    "ServiceError",
    "TokenBucket",
    "WorkerCrashError",
]

#: Rejection reasons that are worth retrying: the condition that caused
#: them (a full queue, an exhausted token bucket, transient low-priority
#: shedding) clears on its own. ``"draining"`` is deliberately absent —
#: a draining service only gets further from accepting work.
RETRIABLE_REJECT_REASONS: frozenset[str] = frozenset(
    {"queue_full", "rate_limited", "shed_low_priority"}
)


class ServiceError(ReproError):
    """Base of the serving layer's typed error taxonomy."""


class RetriableServiceError(ServiceError):
    """A transient service failure: the same call may succeed if retried.

    Raised for dropped/reset/timed-out connections and worker crashes —
    conditions that clear on their own. :class:`RetryingServiceClient`
    catches exactly this type (reconnecting first when the transport
    broke); anything else propagates.
    """


class FatalServiceError(ServiceError):
    """A permanent service failure: retrying the same call cannot help.

    Raised for protocol misuse (operating on a connection already known
    to be broken, a closed client) and terminal server decisions.
    """


class WorkerCrashError(RetriableServiceError):
    """A batch worker died mid-cell (process kill or injected crash).

    In pool mode the pool surfaces crashes as ``BrokenProcessPool``; the
    serial in-process path (and the chaos harness's serial injection)
    raises this instead, so :class:`ResilientExecutor` handles both
    execution modes through one retry path.
    """


# ----------------------------------------------------------------------
# Retry and rate-limit primitives


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total tries (first attempt included) before giving up.
    backoff_base_s:
        Sleep before the second attempt; doubles (``backoff_factor``)
        per further attempt, capped at ``backoff_max_s``.
    backoff_factor:
        Multiplier applied per retry round.
    backoff_max_s:
        Upper bound on any single backoff sleep.
    jitter:
        Fraction of each backoff randomized away (0 disables jitter).
        The randomness comes from the caller-owned ``random.Random`` so
        retry schedules are reproducible under a fixed seed.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ReproError("backoff durations must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry number ``attempt`` (0-based), jittered."""
        raw = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor**attempt,
        )
        if self.jitter <= 0.0:
            return raw
        return raw * (1.0 - self.jitter * rng.random())


class TokenBucket:
    """Classic token-bucket rate limiter over an injectable clock.

    Tokens refill continuously at ``rate`` per second up to ``burst``;
    :meth:`try_acquire` spends one token or answers ``False`` without
    blocking — admission control wants a verdict, not a wait.
    """

    def __init__(
        self,
        rate: float,
        burst: float = 8.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ReproError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ReproError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    @property
    def tokens(self) -> float:
        """Tokens available right now (after refill)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(now - self._last, 0.0)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last = now

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Spend ``amount`` tokens if available; never blocks."""
        self._refill()
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False


# ----------------------------------------------------------------------
# Crash-resilient batch execution


@dataclass(frozen=True)
class ExecutionReport:
    """What one :meth:`ResilientExecutor.map_cells` call went through.

    ``attempts[i]`` counts executions of cell ``i`` (1 = clean first
    try); ``retries`` is the total number of re-executions, ``respawns``
    the number of pools discarded after a crash or a stuck cell. The
    service reads the report after each batch to publish
    ``service.exec.retries`` / ``service.exec.respawns`` and to annotate
    unit spans.
    """

    retries: int = 0
    respawns: int = 0
    attempts: tuple[int, ...] = ()


def _crash_outcome(index: int, attempts: int, cause: str) -> dict[str, Any]:
    """The error dict a cell that exhausted its attempt budget answers with."""
    return {
        "error": (
            f"WorkerCrashError: cell {index} failed {attempts} "
            f"attempt(s) ({cause}); retry budget exhausted"
        ),
        "crash": True,
    }


@dataclass(frozen=True)
class ResilientExecutor:
    """A :class:`~repro.perf.executor.SweepExecutor` that survives crashes.

    Drop-in for the plain executor (same :meth:`map_cells` signature and
    ordered-merge contract) with three additions:

    * **Crash detection.** In pool mode a dead worker surfaces as
      ``BrokenProcessPool``; serially, as :class:`WorkerCrashError`.
      Either way the affected cells are re-executed instead of poisoning
      the whole batch.
    * **Watchdog.** With ``cell_timeout_s`` set, a pool cell that fails
      to finish within the budget is treated like a crash: the pool is
      abandoned (its wedged worker with it) and the cell retried fresh.
    * **Bounded retries.** Every cell gets at most ``max_attempts``
      executions; a persistent crasher answers with an ``{"error": ...}``
      dict in its slot (the batch's other cells are unaffected), exactly
      the shape a deterministic cell exception produces.

    Because cells are deterministic, a retried cell returns the same
    bytes a first-try execution would — the byte-identity contract of
    the serving layer survives every recovery path (the equivalence
    suite asserts this with crash injection on).

    After a pool breaks, the affected cells re-run in *isolation* (one
    cell per pool round) so the attempt budget is charged only to cells
    that actually crashed or wedged, never to innocent neighbours that
    merely shared the broken pool.

    :attr:`last_report` holds the :class:`ExecutionReport` of the most
    recent :meth:`map_cells` call.
    """

    workers: int = 1
    max_attempts: int = 3
    cell_timeout_s: float | None = None
    _state: dict[str, Any] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ReproError(f"workers must be >= 1, got {self.workers}")
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ReproError(
                f"cell_timeout_s must be positive, got {self.cell_timeout_s}"
            )

    @property
    def last_report(self) -> ExecutionReport | None:
        """Report of the most recent :meth:`map_cells` call (or ``None``)."""
        return self._state.get("report")

    def _prepare(
        self, worker: Callable[[Any], Any], cells: list[Any]
    ) -> tuple[Callable[[Any], Any], list[Any]]:
        """Hook for subclasses to wrap the worker/cells (chaos injection).

        The default is the identity; the chaos harness overrides it to
        envelope each cell with a fault plan. Whatever comes back must
        still be spawn-safe when ``workers > 1``.
        """
        return worker, cells

    def map_cells(
        self,
        worker: Callable[[Any], Any],
        cells: Iterable[Any],
    ) -> list[Any]:
        """Apply ``worker`` to every cell; results in cell order.

        Identical output to :meth:`SweepExecutor.map_cells` on the happy
        path; under worker crashes / stuck cells, affected cells are
        retried up to ``max_attempts`` times and answer with an error
        dict only once the budget is spent.
        """
        items = list(cells)
        if not items:
            self._state["report"] = ExecutionReport(attempts=())
            return []
        run, prepared = self._prepare(worker, items)
        if self.workers == 1:
            results, report = self._map_serial(run, prepared)
        else:
            _check_spawn_safe(run, prepared)
            results, report = self._map_pool(run, prepared)
        self._state["report"] = report
        return results

    def _map_serial(
        self, worker: Callable[[Any], Any], cells: Sequence[Any]
    ) -> tuple[list[Any], ExecutionReport]:
        results: list[Any] = [None] * len(cells)
        attempts = [0] * len(cells)
        retries = 0
        for index, cell in enumerate(cells):
            while True:
                attempts[index] += 1
                try:
                    results[index] = worker(cell)
                    break
                except WorkerCrashError as error:
                    if attempts[index] >= self.max_attempts:
                        results[index] = _crash_outcome(
                            index, attempts[index], str(error)
                        )
                        break
                    retries += 1
        return results, ExecutionReport(
            retries=retries, respawns=0, attempts=tuple(attempts)
        )

    def _map_pool(
        self, worker: Callable[[Any], Any], cells: Sequence[Any]
    ) -> tuple[list[Any], ExecutionReport]:
        n = len(cells)
        results: list[Any] = [None] * n
        attempts = [0] * n
        retries = 0
        respawns = 0
        # Fast path: one pool, every cell in flight at once. A crash or
        # a wedged cell abandons this pool; whatever finished before the
        # break is kept (attempt charged), the rest fall through to the
        # isolation phase with their first attempt *not* charged — the
        # pool's death was not provably their fault.
        unfinished: list[int] = []
        pool = ProcessPoolExecutor(max_workers=min(self.workers, n))
        try:
            futures: dict[int, Future[Any]] = {
                index: pool.submit(worker, cell)
                for index, cell in enumerate(cells)
            }
            broken = False
            for index in range(n):
                timeout = None if not broken else 0.0
                if self.cell_timeout_s is not None and timeout is None:
                    timeout = self.cell_timeout_s
                try:
                    results[index] = futures[index].result(timeout=timeout)
                    attempts[index] += 1
                except (BrokenExecutor, WorkerCrashError, OSError):
                    broken = True
                    unfinished.append(index)
                except FutureTimeoutError:
                    # Wedged (or queued behind a wedged cell): abandon
                    # this pool, sort it out in isolation.
                    broken = True
                    unfinished.append(index)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if unfinished:
            respawns += 1  # the fast-path pool was lost
        # Isolation phase: one cell per pool round, so a failure is
        # attributable and the budget charges the right cell.
        isolated: ProcessPoolExecutor | None = None
        try:
            for index in unfinished:
                while True:
                    attempts[index] += 1
                    if isolated is None:
                        isolated = ProcessPoolExecutor(max_workers=1)
                    try:
                        results[index] = isolated.submit(
                            worker, cells[index]
                        ).result(timeout=self.cell_timeout_s)
                        break
                    except (
                        BrokenExecutor,
                        WorkerCrashError,
                        FutureTimeoutError,
                        OSError,
                    ) as error:
                        isolated.shutdown(wait=False, cancel_futures=True)
                        isolated = None
                        respawns += 1
                        if attempts[index] >= self.max_attempts:
                            cause = type(error).__name__
                            results[index] = _crash_outcome(
                                index, attempts[index], cause
                            )
                            break
                        retries += 1
        finally:
            if isolated is not None:
                isolated.shutdown(wait=False, cancel_futures=True)
        return results, ExecutionReport(
            retries=retries, respawns=respawns, attempts=tuple(attempts)
        )


# ----------------------------------------------------------------------
# Client-side retries


@dataclass
class RetryStats:
    """Mutable tally of what a :class:`RetryingServiceClient` did."""

    attempts: int = 0
    retries: int = 0
    reconnects: int = 0
    exhausted: int = 0


class RetryingServiceClient:
    """Retry/backoff wrapper over any service client (in-process or socket).

    Parameters
    ----------
    client_factory:
        Zero-argument callable building a fresh client (e.g.
        ``lambda: SocketServiceClient(path)`` or
        ``lambda: ServiceClient(service)``). A *factory* rather than an
        instance because recovering from a transport failure means
        reconnecting — the broken client is dropped and a new one built.
    policy:
        The :class:`RetryPolicy`; defaults to its defaults.
    sleep:
        Backoff sleep function; injectable so tests run instantly.
    retriable_rejections:
        Server rejection reasons worth resubmitting
        (:data:`RETRIABLE_REJECT_REASONS` by default). Any other
        rejection — ``"draining"`` above all — is terminal.

    Retrying is safe because requests are idempotent by construction:
    a resubmitted ``request_id`` either dedups onto in-flight work via
    the work-key machinery or overwrites the store entry with
    byte-identical content, so the server never double-answers
    divergently. On a :class:`RetriableServiceError` the current client
    is dropped and rebuilt (reconnect); :class:`FatalServiceError` and
    every non-service exception propagate immediately.
    """

    def __init__(
        self,
        client_factory: Callable[[], Any],
        policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
        retriable_rejections: frozenset[str] = RETRIABLE_REJECT_REASONS,
    ) -> None:
        self._factory = client_factory
        self.policy = policy if policy is not None else RetryPolicy()
        self._sleep = sleep
        self.retriable_rejections = frozenset(retriable_rejections)
        self._rng = random.Random(0)
        self._client: Any | None = None
        self.stats = RetryStats()

    @property
    def current(self) -> Any:
        """The live underlying client, (re)built on demand."""
        if self._client is None:
            self._client = self._factory()
        return self._client

    def drop_connection(self) -> None:
        """Discard the current client; the next call reconnects.

        Public so chaos tooling can simulate mid-session connection
        drops; also the internal recovery step after any
        :class:`RetriableServiceError`.
        """
        client = self._client
        self._client = None
        if client is None:
            return
        close = getattr(client, "close", None)
        if close is not None:
            try:
                close()
            except Exception:
                pass  # a broken transport may refuse even to close

    def fetch(self, request_id: str) -> Any:
        """Fetch a retained response, reconnect-and-retry on transport loss."""
        last_error: RetriableServiceError | None = None
        for attempt in range(self.policy.max_attempts):
            self.stats.attempts += 1
            try:
                return self.current.fetch(request_id)
            except RetriableServiceError as error:
                last_error = error
                self.stats.reconnects += 1
                self.drop_connection()
                if attempt + 1 < self.policy.max_attempts:
                    self.stats.retries += 1
                    self._sleep(self.policy.backoff_s(attempt, self._rng))
        self.stats.exhausted += 1
        raise FatalServiceError(
            f"fetch({request_id!r}) failed after "
            f"{self.policy.max_attempts} attempt(s): {last_error}"
        ) from last_error

    def solve(self, request: Any) -> Any:
        """Drive one request to a terminal response, retrying as allowed."""
        return self.solve_many([request])[0]

    def solve_many(self, requests: Sequence[Any]) -> list[Any]:
        """Drive a batch to terminal responses, retrying as allowed.

        Responses come back in submission order. Each attempt resubmits
        only the still-unanswered requests (same ``request_id``\\ s, so
        the server dedups), flushes, and fetches. A request whose budget
        runs out is answered with a synthesized ``status="error"``
        response rather than an exception, so one poisoned request
        cannot discard its batchmates' answers.
        """
        from repro.service.request import SolveResponse

        order = [request.request_id for request in requests]
        pending = {request.request_id: request for request in requests}
        answers: dict[str, Any] = {}
        last_error: Exception | None = None
        for attempt in range(self.policy.max_attempts):
            if not pending:
                break
            self.stats.attempts += 1
            try:
                client = self.current
                for request in pending.values():
                    client.submit(request)
                client.flush()
                for request_id in list(pending):
                    response = client.fetch(request_id)
                    if response is None:
                        continue  # lost/evicted: resubmit next attempt
                    answers[request_id] = response
                    if (
                        response.status == "rejected"
                        and response.error in self.retriable_rejections
                    ):
                        continue  # keep as best-so-far, retry
                    del pending[request_id]
            except RetriableServiceError as error:
                last_error = error
                self.stats.reconnects += 1
                self.drop_connection()
            if pending and attempt + 1 < self.policy.max_attempts:
                self.stats.retries += len(pending)
                self._sleep(self.policy.backoff_s(attempt, self._rng))
        out: list[Any] = []
        for request_id in order:
            response = answers.get(request_id)
            if response is None:
                self.stats.exhausted += 1
                response = SolveResponse(
                    request_id=request_id,
                    status="error",
                    error=(
                        "retry budget exhausted after "
                        f"{self.policy.max_attempts} attempt(s)"
                        + (f": {last_error}" if last_error else "")
                    ),
                )
            out.append(response)
        return out

    def close(self) -> None:
        """Release the underlying client, if any."""
        self.drop_connection()

    def __enter__(self) -> "RetryingServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
