"""Deterministic batch formation with duplicate-work collapse.

The batcher's job is purely structural: given the drained queue slice,
group requests by :meth:`~repro.service.request.SolveRequest.work_key`
into :class:`WorkUnit`\\ s (first arrival wins the slot; later
duplicates ride along as ``followers``), preserve arrival order among
unique units, and execute the unique cells through a
:class:`~repro.perf.executor.SweepExecutor`.

Determinism falls out of two properties: unit order is arrival order
(no hashing, no racing), and the executor's ordered merge returns
results in cell order whatever the worker count. So a batch's responses
are a pure function of its requests — the same batch replayed yields
the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.exceptions import ReproError
from repro.obs.spans import SpanContext
from repro.perf.executor import SweepExecutor
from repro.service.queue import QueuedRequest
from repro.service.worker import ServiceCell, run_service_cell_guarded

__all__ = ["Batch", "Batcher", "WorkUnit"]


@dataclass
class WorkUnit:
    """One unique work key and every queued request that maps onto it."""

    leader: QueuedRequest
    followers: list[QueuedRequest] = field(default_factory=list)

    @property
    def requests(self) -> list[QueuedRequest]:
        """Leader first, then followers, in arrival order."""
        return [self.leader, *self.followers]

    def cell(
        self,
        trace_ctx: SpanContext | None = None,
        profile_memory: bool = False,
    ) -> ServiceCell:
        """The executable form of this unit.

        ``trace_ctx`` — the unit span's context on the service side —
        is pickled into the cell so the worker (possibly another
        process) can parent its span subtree under it.
        """
        request = self.leader.request
        return ServiceCell(
            recipe=request.recipe,
            instance=request.instance,
            k=request.k,
            variant=request.variant,
            seed=request.seed,
            rounding=request.rounding,
            c_round=request.c_round,
            compute_lp=request.compute_lp,
            capture_events=request.capture_events,
            record=request.record,
            trace_ctx=trace_ctx,
            profile_memory=profile_memory,
            engine=request.engine,
            shards=request.shards,
        )


@dataclass
class Batch:
    """One formed batch: unique units in arrival order, plus counts."""

    units: list[WorkUnit]

    @property
    def num_requests(self) -> int:
        """Total requests covered, duplicates included."""
        return sum(len(unit.requests) for unit in self.units)

    @property
    def num_unique(self) -> int:
        """Number of distinct work units (actual solves)."""
        return len(self.units)

    @property
    def dedup_hits(self) -> int:
        """Requests served by another request's solve."""
        return self.num_requests - self.num_unique


class Batcher:
    """Forms batches and runs their unique cells through an executor."""

    def __init__(self, executor: SweepExecutor | None = None) -> None:
        self.executor = executor if executor is not None else SweepExecutor()

    @staticmethod
    def form(queued: Sequence[QueuedRequest]) -> Batch:
        """Group a drained queue slice into a deterministic batch.

        Requests with equal work keys collapse onto one
        :class:`WorkUnit`; unit order is the arrival order of each
        key's first request.
        """
        units: dict[tuple[Any, ...], WorkUnit] = {}
        order: list[tuple[Any, ...]] = []
        for item in queued:
            key = item.request.work_key()
            unit = units.get(key)
            if unit is None:
                units[key] = WorkUnit(leader=item)
                order.append(key)
            else:
                unit.followers.append(item)
        return Batch(units=[units[key] for key in order])

    def execute(
        self,
        batch: Batch,
        trace_contexts: Sequence[SpanContext | None] | None = None,
        profile_memory: bool = False,
    ) -> list[dict[str, Any]]:
        """Solve the batch's unique cells, one result dict per unit.

        Results come back in unit (arrival) order regardless of the
        executor's worker count — see
        :meth:`repro.perf.executor.SweepExecutor.map_cells`. A failing
        cell yields an ``{"error": ...}`` dict in its slot instead of
        aborting the batch. ``trace_contexts``, when given, must align
        with ``batch.units``; each context is pickled into its unit's
        cell and the worker's spans come back under the ``"spans"`` key
        of that unit's result dict.
        """
        if not batch.units:
            return []
        if trace_contexts is None:
            trace_contexts = [None] * len(batch.units)
        cells = [
            unit.cell(trace_ctx=ctx, profile_memory=profile_memory)
            for unit, ctx in zip(batch.units, trace_contexts)
        ]
        for cell in cells:
            # Inline instances submitted in-process may be arbitrary
            # objects; recipes always ship. Validate before the pool does.
            if cell.recipe is None and cell.instance is None:
                raise ReproError("work unit lost its instance source")
        return self.executor.map_cells(run_service_cell_guarded, cells)
