"""Clients of the solve service, plus the JSONL wire codec.

Two clients share one mental model — submit requests, flush, collect
responses by request id:

* :class:`ServiceClient` wraps an in-process
  :class:`~repro.service.service.SolveService`; tests, examples and the
  stdin transport use it.
* :class:`SocketServiceClient` speaks the same line protocol over a
  Unix domain socket to a ``repro serve --socket PATH`` process; every
  sent line yields at least one reply line, so the client stays a
  simple synchronous request/response loop (see
  :mod:`repro.service.server` for the protocol table).

The codec pair :func:`encode_line` / :func:`decode_line` defines the
wire format both transports use: one compact, key-sorted JSON object per
line. Key sorting makes encoded bytes deterministic, which the
equivalence tests rely on when diffing served against direct results.
"""

from __future__ import annotations

import dataclasses
import json
import socket
from typing import Any, Iterable, Mapping

from repro.exceptions import ReproError
from repro.obs.spans import Tracer
from repro.service.request import SolveRequest, SolveResponse
from repro.service.resilience import (
    FatalServiceError,
    RetriableServiceError,
)
from repro.service.service import SolveService

__all__ = [
    "ServiceClient",
    "SocketServiceClient",
    "decode_line",
    "encode_line",
]


def encode_line(payload: Mapping[str, Any]) -> str:
    """One wire line: compact key-sorted JSON plus the newline."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def decode_line(line: str) -> dict[str, Any]:
    """Inverse of :func:`encode_line`; raises ``ReproError`` on junk."""
    stripped = line.strip()
    if not stripped:
        raise ReproError("empty wire line")
    try:
        payload = json.loads(stripped)
    except json.JSONDecodeError as error:
        raise ReproError(f"undecodable wire line: {error}") from error
    if not isinstance(payload, dict):
        raise ReproError(
            f"wire line must decode to an object, got {type(payload).__name__}"
        )
    return payload


def _stamp_trace(request: SolveRequest, tracer: Tracer) -> SolveRequest:
    """Return ``request`` carrying the tracer's current span context.

    Requests that already carry a ``trace_ctx`` keep it — the caller's
    causal chain wins over the client's session span.
    """
    if request.trace_ctx is not None:
        return request
    context = tracer.current_context()
    if context is None:
        return request
    return dataclasses.replace(request, trace_ctx=context)


class ServiceClient:
    """In-process convenience wrapper around a :class:`SolveService`.

    ``tracer``, when given, makes each :meth:`solve_many` call a
    ``client.session`` root span and stamps its context onto every
    submitted request (unless the request already carries one), so the
    whole pipeline — queue, batch, worker, simulator rounds — hangs off
    one connected trace tree.
    """

    def __init__(
        self,
        service: SolveService | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.service = service if service is not None else SolveService()
        self.tracer = tracer

    def submit(self, request: SolveRequest) -> bool:
        """Offer one request; True when admitted."""
        return self.service.submit(request).accepted

    def flush(self) -> list[SolveResponse]:
        """Process every queued request; responses in arrival order."""
        return self.service.run_until_drained()

    def fetch(self, request_id: str) -> SolveResponse | None:
        """Retained response for ``request_id``, or ``None``."""
        return self.service.fetch(request_id)

    def metrics(self) -> dict[str, Any]:
        """The service's flat metrics summary."""
        return self.service.metrics_summary()

    def solve(self, request: SolveRequest) -> SolveResponse:
        """Submit one request and drive it to completion."""
        return self.solve_many([request])[0]

    def solve_many(self, requests: Iterable[SolveRequest]) -> list[SolveResponse]:
        """Submit a batch and drive it to completion.

        Responses come back in submission order; rejected requests are
        answered in place (``status="rejected"``) rather than raising,
        so one overloaded moment doesn't discard the whole batch.
        """
        submitted = list(requests)
        if self.tracer is not None:
            with self.tracer.span(
                "client.session", requests=len(submitted)
            ):
                submitted = [
                    _stamp_trace(request, self.tracer)
                    for request in submitted
                ]
                for request in submitted:
                    self.service.submit(request)
                self.service.run_until_drained()
        else:
            for request in submitted:
                self.service.submit(request)
            self.service.run_until_drained()
        out: list[SolveResponse] = []
        for request in submitted:
            response = self.service.fetch(request.request_id)
            if response is None:  # store evicted it already: tiny TTLs only
                response = SolveResponse(
                    request_id=request.request_id,
                    status="error",
                    error="response evicted before fetch",
                )
            out.append(response)
        return out


class SocketServiceClient:
    """Synchronous client for the ``repro serve --socket`` transport.

    Usable as a context manager; :meth:`close` just drops the
    connection (the server keeps running), while :meth:`shutdown` asks
    the server process to exit. With a ``tracer``, submitted requests
    are stamped with the tracer's current span context (``trace`` wire
    field), so a tracing server parents its spans under this client —
    one trace tree across the socket boundary.

    Transport failures surface as the typed taxonomy from
    :mod:`repro.service.resilience`: a receive timeout, connection
    reset, broken pipe or server-side EOF raises
    :class:`~repro.service.resilience.RetriableServiceError` — and marks
    the connection *broken*, because after a half-read the line buffer
    is in an undefined state. Every later call on a broken client
    raises :class:`~repro.service.resilience.FatalServiceError` until a
    fresh client is built (which is what
    :class:`~repro.service.resilience.RetryingServiceClient` does
    automatically).
    """

    def __init__(
        self,
        path: str,
        timeout_s: float = 30.0,
        tracer: Tracer | None = None,
    ) -> None:
        self.path = str(path)
        self.timeout_s = float(timeout_s)
        self.tracer = tracer
        self._broken = False
        try:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout_s)
            self._sock.connect(self.path)
        except OSError as error:
            raise RetriableServiceError(
                f"cannot connect to service socket {self.path!r}: {error}"
            ) from error
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")

    def __enter__(self) -> "SocketServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Drop the connection (the server keeps serving others)."""
        try:
            self._file.close()
        except (OSError, ValueError):
            pass  # a broken transport may refuse even to close
        finally:
            self._sock.close()

    def abort(self) -> None:
        """Sever the transport abruptly, with no clean close.

        A testing/chaos hook: the next operation on this client fails
        with a :class:`~repro.service.resilience.RetriableServiceError`,
        which is exactly what a mid-session connection reset looks like
        from the caller's side.
        """
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already disconnected: aborting is a no-op

    def _check_usable(self) -> None:
        if self._broken:
            raise FatalServiceError(
                "connection is in an undefined state after a transport "
                "error; build a fresh client to reconnect"
            )

    def _send(self, payload: Mapping[str, Any]) -> None:
        self._check_usable()
        try:
            self._file.write(encode_line(payload))
            self._file.flush()
        except socket.timeout as error:
            self._broken = True
            raise RetriableServiceError(
                f"timed out sending to the service after {self.timeout_s}s"
            ) from error
        except (BrokenPipeError, ConnectionResetError, OSError) as error:
            self._broken = True
            raise RetriableServiceError(
                f"service connection lost mid-send: {error}"
            ) from error
        except ValueError as error:  # write on a closed file object
            self._broken = True
            raise FatalServiceError(
                f"client is closed: {error}"
            ) from error

    def _recv(self) -> dict[str, Any]:
        self._check_usable()
        try:
            line = self._file.readline()
        except socket.timeout as error:
            # After a timeout mid-recv the line buffer may hold a
            # partial frame — nothing on this connection can be trusted.
            self._broken = True
            raise RetriableServiceError(
                f"timed out waiting for the service after {self.timeout_s}s"
            ) from error
        except (ConnectionResetError, OSError) as error:
            self._broken = True
            raise RetriableServiceError(
                f"service connection reset mid-recv: {error}"
            ) from error
        except ValueError as error:  # read on a closed file object
            self._broken = True
            raise FatalServiceError(
                f"client is closed: {error}"
            ) from error
        if not line:
            self._broken = True
            raise RetriableServiceError("service closed the connection")
        return decode_line(line)

    def raw_request(self, line: str) -> dict[str, Any]:
        """Send one raw line (no codec) and decode the reply.

        Exists for protocol and chaos testing — it is how the chaos
        harness injects malformed frames through a live connection. The
        newline is appended when missing.
        """
        self._check_usable()
        if not line.endswith("\n"):
            line += "\n"
        try:
            self._file.write(line)
            self._file.flush()
        except (OSError, ValueError) as error:
            self._broken = True
            raise RetriableServiceError(
                f"service connection lost mid-send: {error}"
            ) from error
        return self._recv()

    def submit(self, request: SolveRequest) -> bool:
        """Send one solve request; True when the server admitted it."""
        if self.tracer is not None:
            request = _stamp_trace(request, self.tracer)
        self._send(request.to_wire())
        ack = self._recv()
        return bool(ack.get("accepted", False))

    def flush(self) -> list[SolveResponse]:
        """Ask the server to process everything queued.

        The server answers with one response line per completed request
        followed by a ``flush_done`` line carrying the count, so the
        client knows exactly how many lines to read.
        """
        self._send({"type": "flush"})
        responses: list[SolveResponse] = []
        while True:
            payload = self._recv()
            if payload.get("type") == "flush_done":
                break
            responses.append(SolveResponse.from_wire(payload))
        return responses

    def fetch(self, request_id: str) -> SolveResponse | None:
        """Re-fetch a retained response by id (``None`` when unknown)."""
        self._send({"type": "fetch", "request_id": request_id})
        payload = self._recv()
        if payload.get("type") == "error":
            return None
        return SolveResponse.from_wire(payload)

    def metrics(self) -> dict[str, Any]:
        """The server's flat metrics summary."""
        self._send({"type": "metrics"})
        payload = self._recv()
        return dict(payload.get("metrics", {}))

    def shutdown(self) -> None:
        """Ask the server process to stop accepting and exit."""
        self._send({"type": "shutdown"})
        self._recv()  # the "bye" line
