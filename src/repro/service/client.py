"""Clients of the solve service, plus the JSONL wire codec.

Three synchronous clients share one mental model — submit requests,
flush, collect responses by request id:

* :class:`ServiceClient` wraps an in-process
  :class:`~repro.service.service.SolveService`; tests, examples and the
  stdin transport use it.
* :class:`SocketServiceClient` speaks the line protocol over a Unix
  domain socket to a ``repro serve --socket PATH`` process.
* :class:`TcpServiceClient` speaks the same protocol over TCP to a
  ``repro serve --tcp HOST:PORT`` front end (usually a
  :class:`~repro.service.router.ServiceRouter` fronting several service
  workers).

Every sent line yields at least one reply line, so the stream clients
stay simple request/response loops (see :mod:`repro.service.server` for
the protocol table); the framed I/O, typed-error mapping and
broken-connection poisoning they share live in
:class:`~repro.service.transport.LineTransport`. For many in-flight
requests per connection, use
:class:`~repro.service.async_client.AsyncServiceClient` instead.

The codec pair :func:`encode_line` / :func:`decode_line` (re-exported
from :mod:`repro.service.transport`) defines the wire format: one
compact, key-sorted JSON object per line. Key sorting makes encoded
bytes deterministic, which the equivalence tests rely on when diffing
served against direct results.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Mapping

from repro.exceptions import ReproError
from repro.obs.spans import Tracer
from repro.service.request import SolveRequest, SolveResponse
from repro.service.service import SolveService
from repro.service.transport import (
    LineTransport,
    connect_tcp,
    connect_unix,
    decode_line,
    encode_line,
    parse_hostport,
)

__all__ = [
    "ServiceClient",
    "SocketServiceClient",
    "TcpServiceClient",
    "decode_line",
    "encode_line",
]


def _stamp_trace(request: SolveRequest, tracer: Tracer) -> SolveRequest:
    """Return ``request`` carrying the tracer's current span context.

    Requests that already carry a ``trace_ctx`` keep it — the caller's
    causal chain wins over the client's session span.
    """
    if request.trace_ctx is not None:
        return request
    context = tracer.current_context()
    if context is None:
        return request
    return dataclasses.replace(request, trace_ctx=context)


class ServiceClient:
    """In-process convenience wrapper around a :class:`SolveService`.

    ``tracer``, when given, makes each :meth:`solve_many` call a
    ``client.session`` root span and stamps its context onto every
    submitted request (unless the request already carries one), so the
    whole pipeline — queue, batch, worker, simulator rounds — hangs off
    one connected trace tree.
    """

    def __init__(
        self,
        service: SolveService | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.service = service if service is not None else SolveService()
        self.tracer = tracer

    def submit(self, request: SolveRequest) -> bool:
        """Offer one request; True when admitted."""
        return self.service.submit(request).accepted

    def flush(self) -> list[SolveResponse]:
        """Process every queued request; responses in arrival order."""
        return self.service.run_until_drained()

    def fetch(self, request_id: str) -> SolveResponse | None:
        """Retained response for ``request_id``, or ``None``."""
        return self.service.fetch(request_id)

    def metrics(self) -> dict[str, Any]:
        """The service's flat metrics summary."""
        return self.service.metrics_summary()

    def solve(self, request: SolveRequest) -> SolveResponse:
        """Submit one request and drive it to completion."""
        return self.solve_many([request])[0]

    def solve_many(self, requests: Iterable[SolveRequest]) -> list[SolveResponse]:
        """Submit a batch and drive it to completion.

        Responses come back in submission order; rejected requests are
        answered in place (``status="rejected"``) rather than raising,
        so one overloaded moment doesn't discard the whole batch.
        """
        submitted = list(requests)
        if self.tracer is not None:
            with self.tracer.span(
                "client.session", requests=len(submitted)
            ):
                submitted = [
                    _stamp_trace(request, self.tracer)
                    for request in submitted
                ]
                for request in submitted:
                    self.service.submit(request)
                self.service.run_until_drained()
        else:
            for request in submitted:
                self.service.submit(request)
            self.service.run_until_drained()
        out: list[SolveResponse] = []
        for request in submitted:
            response = self.service.fetch(request.request_id)
            if response is None:  # store evicted it already: tiny TTLs only
                response = SolveResponse(
                    request_id=request.request_id,
                    status="error",
                    error="response evicted before fetch",
                )
            out.append(response)
        return out


class _StreamServiceClient:
    """Shared body of the synchronous stream clients (Unix and TCP).

    Subclasses open the connection (a
    :class:`~repro.service.transport.LineTransport`) in ``__init__``;
    everything else — the request/response verbs, the context-manager
    protocol, the chaos hooks — is transport-agnostic and lives here.

    Transport failures surface as the typed taxonomy from
    :mod:`repro.service.resilience`: a receive timeout, connection
    reset, broken pipe or server-side EOF raises
    :class:`~repro.service.resilience.RetriableServiceError` — and marks
    the connection *broken*, because after a half-read the line buffer
    is in an undefined state. Every later call on a broken client
    raises :class:`~repro.service.resilience.FatalServiceError` until a
    fresh client is built (which is what
    :class:`~repro.service.resilience.RetryingServiceClient` does
    automatically).
    """

    _transport: LineTransport

    tracer: Tracer | None = None

    def __enter__(self) -> "_StreamServiceClient":
        """Context-manager entry; the connection is already open."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: drop the connection."""
        self.close()

    def close(self) -> None:
        """Drop the connection (the server keeps serving others)."""
        self._transport.close()

    def abort(self) -> None:
        """Sever the transport abruptly, with no clean close.

        A testing/chaos hook: the next operation on this client fails
        with a :class:`~repro.service.resilience.RetriableServiceError`,
        which is exactly what a mid-session connection reset looks like
        from the caller's side.
        """
        self._transport.abort()

    def raw_request(self, line: str) -> dict[str, Any]:
        """Send one raw line (no codec) and decode the reply.

        Exists for protocol and chaos testing — it is how the chaos
        harness injects malformed frames through a live connection. The
        newline is appended when missing.
        """
        self._transport.send_raw(line)
        return self._transport.recv_payload()

    def submit(self, request: SolveRequest) -> bool:
        """Send one solve request; True when the server admitted it."""
        if self.tracer is not None:
            request = _stamp_trace(request, self.tracer)
        self._transport.send_payload(request.to_wire())
        ack = self._transport.recv_payload()
        return bool(ack.get("accepted", False))

    def flush(self) -> list[SolveResponse]:
        """Ask the server to process everything queued.

        The server answers with one response line per completed request
        followed by a ``flush_done`` line carrying the count, so the
        client knows exactly how many lines to read.
        """
        self._transport.send_payload({"type": "flush"})
        responses: list[SolveResponse] = []
        while True:
            payload = self._transport.recv_payload()
            if payload.get("type") == "flush_done":
                break
            responses.append(SolveResponse.from_wire(payload))
        return responses

    def fetch(self, request_id: str) -> SolveResponse | None:
        """Re-fetch a retained response by id (``None`` when unknown)."""
        self._transport.send_payload(
            {"type": "fetch", "request_id": request_id}
        )
        payload = self._transport.recv_payload()
        if payload.get("type") == "error":
            return None
        return SolveResponse.from_wire(payload)

    def metrics(self) -> dict[str, Any]:
        """The server's flat metrics summary."""
        self._transport.send_payload({"type": "metrics"})
        payload = self._transport.recv_payload()
        return dict(payload.get("metrics", {}))

    def shutdown(self) -> None:
        """Ask the server process to stop accepting and exit."""
        self._transport.send_payload({"type": "shutdown"})
        self._transport.recv_payload()  # the "bye" line


class SocketServiceClient(_StreamServiceClient):
    """Synchronous client for the ``repro serve --socket`` transport.

    Usable as a context manager; :meth:`close` just drops the
    connection (the server keeps running), while :meth:`shutdown` asks
    the server process to exit. With a ``tracer``, submitted requests
    are stamped with the tracer's current span context (``trace`` wire
    field), so a tracing server parents its spans under this client —
    one trace tree across the socket boundary.
    """

    def __init__(
        self,
        path: str,
        timeout_s: float = 30.0,
        tracer: Tracer | None = None,
    ) -> None:
        self.path = str(path)
        self.timeout_s = float(timeout_s)
        self.tracer = tracer
        self._transport = connect_unix(self.path, self.timeout_s)


class TcpServiceClient(_StreamServiceClient):
    """Synchronous client for the ``repro serve --tcp`` front end.

    ``address`` is a ``HOST:PORT`` string (or pass ``host``/``port``
    explicitly). The protocol — and therefore every verb, the tracing
    behavior and the typed failure taxonomy — is identical to
    :class:`SocketServiceClient`; only the connection differs, which is
    the point of the shared
    :class:`~repro.service.transport.LineTransport`.
    """

    def __init__(
        self,
        address: str | None = None,
        host: str | None = None,
        port: int | None = None,
        timeout_s: float = 30.0,
        tracer: Tracer | None = None,
    ) -> None:
        if address is not None:
            host, port = parse_hostport(address)
        if host is None or port is None:
            raise ReproError(
                "TcpServiceClient needs address='HOST:PORT' or host and port"
            )
        self.host = str(host)
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.tracer = tracer
        self._transport = connect_tcp(self.host, self.port, self.timeout_s)
