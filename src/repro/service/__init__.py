"""Batched solve serving layer (``repro.service``).

This package turns the repo's one-shot ``solve`` entry points into a
throughput-oriented service front-end, the shape a deployment that
"serves heavy traffic" needs:

* :class:`~repro.service.request.SolveRequest` — one unit of client
  work: an instance *recipe* (generator family + sizes + seed) or an
  inline instance, the algorithm knobs (k, variant, seed, rounding) and
  per-request options (LP ratio, event capture, timeout).
* :class:`~repro.service.queue.AdmissionQueue` — bounded FIFO admission
  with backpressure (full queue rejects instead of buffering without
  limit) and per-request deadlines checked at drain time.
* :class:`~repro.service.batcher.Batcher` — coalesces queued requests
  into deterministic batches, collapses duplicate work units so each is
  solved exactly once per batch, and fans the unique cells out through
  :class:`~repro.perf.executor.SweepExecutor`; batched results are
  byte-identical to direct :func:`~repro.core.algorithm.solve_distributed`
  calls (the equivalence suite asserts it).
* :class:`~repro.service.store.ResultStore` — completed responses
  addressable by request id with TTL + capacity eviction.
* :class:`~repro.service.service.SolveService` — the orchestrator wiring
  the above together and publishing queue depth, batch size, dedup and
  cache hits, latency quantiles, timeout and rejection counts into a
  :class:`~repro.obs.registry.MetricsRegistry`.
* :class:`~repro.service.client.ServiceClient` — the in-process helper
  used by tests, examples and the ``repro serve`` CLI; plus the JSONL
  wire codec and the synchronous Unix-socket / TCP stream clients over
  the shared :class:`~repro.service.transport.LineTransport`.
* :mod:`~repro.service.resilience` — the fault-tolerance layer: the
  typed ``Retriable``/``Fatal`` service-error taxonomy, the
  crash-surviving :class:`~repro.service.resilience.ResilientExecutor`
  (pool respawn + bounded per-cell retries + stuck-cell watchdog), the
  backoff-and-reconnect
  :class:`~repro.service.resilience.RetryingServiceClient`, and the
  per-client :class:`~repro.service.resilience.TokenBucket` rate
  limiter behind admission control.
* :mod:`~repro.service.router` — the horizontal half:
  :class:`~repro.service.router.ServiceRouter` consistent-hash-routes
  each request on its canonical work key across K backend workers
  (:class:`~repro.service.router.HashRing`) behind a cross-worker
  :class:`~repro.service.router.SharedResultCache`, so dedup and result
  reuse survive sharding; ``repro serve --service-workers K`` builds
  one.
* :func:`~repro.service.tcp.serve_tcp` — the concurrent TCP front end
  (``repro serve --tcp HOST:PORT``), one reader thread per connection,
  same line protocol as every other transport.
* :class:`~repro.service.async_client.AsyncServiceClient` — the
  pipelining client: many in-flight requests per connection, acks and
  responses matched out-of-order by request id, wrappable by
  :class:`~repro.service.resilience.RetryingServiceClient`.

See ``docs/SERVING.md`` for the full serving guide,
``docs/ARCHITECTURE.md`` ("Serving layer", "Serving resilience") for
the data flow and ``examples/serving.py`` for a worked mixed-batch
session.
"""

from repro.service.async_client import AsyncServiceClient
from repro.service.batcher import Batch, Batcher, WorkUnit
from repro.service.client import (
    ServiceClient,
    SocketServiceClient,
    TcpServiceClient,
    decode_line,
    encode_line,
)
from repro.service.queue import AdmissionQueue, AdmissionResult
from repro.service.request import (
    PRIORITY_CLASSES,
    InstanceRecipe,
    SolveRequest,
    SolveResponse,
    priority_level,
)
from repro.service.resilience import (
    RETRIABLE_REJECT_REASONS,
    ExecutionReport,
    FatalServiceError,
    ResilientExecutor,
    RetriableServiceError,
    RetryingServiceClient,
    RetryPolicy,
    RetryStats,
    ServiceError,
    TokenBucket,
    WorkerCrashError,
)
from repro.service.router import (
    HashRing,
    RouterConfig,
    ServiceRouter,
    SharedResultCache,
)
from repro.service.server import ServiceProtocol, serve_jsonl, serve_socket
from repro.service.service import ServiceConfig, SolveService
from repro.service.store import ResultStore, StoreMiss
from repro.service.tcp import serve_tcp
from repro.service.transport import LineTransport, parse_hostport
from repro.service.worker import (
    ServiceCell,
    run_service_cell,
    run_service_cell_guarded,
)

__all__ = [
    "AdmissionQueue",
    "AdmissionResult",
    "AsyncServiceClient",
    "Batch",
    "Batcher",
    "ExecutionReport",
    "FatalServiceError",
    "HashRing",
    "InstanceRecipe",
    "LineTransport",
    "PRIORITY_CLASSES",
    "RETRIABLE_REJECT_REASONS",
    "ResilientExecutor",
    "ResultStore",
    "RetriableServiceError",
    "RetryPolicy",
    "RetryStats",
    "RetryingServiceClient",
    "RouterConfig",
    "ServiceCell",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceProtocol",
    "ServiceRouter",
    "SharedResultCache",
    "SocketServiceClient",
    "SolveRequest",
    "SolveResponse",
    "SolveService",
    "StoreMiss",
    "TcpServiceClient",
    "TokenBucket",
    "WorkUnit",
    "WorkerCrashError",
    "decode_line",
    "encode_line",
    "parse_hostport",
    "priority_level",
    "run_service_cell",
    "run_service_cell_guarded",
    "serve_jsonl",
    "serve_socket",
    "serve_tcp",
]
