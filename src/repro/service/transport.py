"""Shared line-framed transport for the service's stream clients.

Every stream transport of the serving layer — the original Unix-domain
socket, the multi-worker TCP front end, and the pipelining async client
— speaks the same frame: one compact, key-sorted JSON object per
newline-terminated line. What they also share, and what used to be
duplicated inside :class:`~repro.service.client.SocketServiceClient`,
is the *failure* discipline:

* a receive timeout, connection reset, broken pipe or server-side EOF
  is a transient transport loss and surfaces as
  :class:`~repro.service.resilience.RetriableServiceError`;
* after any such failure the line buffer may hold half a frame, so the
  connection is *poisoned* — every later call raises
  :class:`~repro.service.resilience.FatalServiceError` until the owner
  builds a fresh connection (which is what
  :class:`~repro.service.resilience.RetryingServiceClient` does);
* operating on a closed file object is protocol misuse and is fatal
  immediately.

:class:`LineTransport` owns exactly that behavior in one place; the
socket clients and the async client compose it rather than re-implement
it. The codec pair :func:`encode_line` / :func:`decode_line` defines
the frame bytes both directions use — key sorting makes encoded bytes
deterministic, which the equivalence suite relies on when diffing
served against direct results.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Mapping

from repro.exceptions import ReproError
from repro.service.resilience import (
    FatalServiceError,
    RetriableServiceError,
)

__all__ = [
    "LineTransport",
    "connect_tcp",
    "connect_unix",
    "decode_line",
    "encode_line",
    "parse_hostport",
]


def encode_line(payload: Mapping[str, Any]) -> str:
    """One wire line: compact key-sorted JSON plus the newline."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def decode_line(line: str) -> dict[str, Any]:
    """Inverse of :func:`encode_line`; raises ``ReproError`` on junk."""
    stripped = line.strip()
    if not stripped:
        raise ReproError("empty wire line")
    try:
        payload = json.loads(stripped)
    except json.JSONDecodeError as error:
        raise ReproError(f"undecodable wire line: {error}") from error
    if not isinstance(payload, dict):
        raise ReproError(
            f"wire line must decode to an object, got {type(payload).__name__}"
        )
    return payload


def parse_hostport(address: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` string into its parts.

    The port is the text after the *last* colon, so bracketed IPv6
    literals (``[::1]:9000``) work; the brackets are stripped from the
    host. Raises ``ReproError`` on anything unparsable.
    """
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ReproError(
            f"bad TCP address {address!r}: expected HOST:PORT"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ReproError(
            f"bad TCP port in {address!r}: {port_text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ReproError(f"TCP port out of range in {address!r}")
    return host.strip("[]"), port


class LineTransport:
    """Framed line I/O over a connected stream socket, with poisoning.

    Wraps an already-connected ``socket.socket`` (Unix domain or TCP —
    the frame protocol does not care) behind four operations:
    :meth:`send_payload`, :meth:`recv_payload`, the chaos hooks
    :meth:`send_raw` / :meth:`abort`, and :meth:`close`. All failure
    mapping onto the typed taxonomy of
    :mod:`repro.service.resilience`, and the broken-connection
    poisoning that follows a half-read, live here — shared by every
    stream client instead of copied into each.
    """

    def __init__(self, sock: socket.socket, timeout_s: float, peer: str) -> None:
        self.timeout_s = float(timeout_s)
        self.peer = str(peer)
        self._sock = sock
        self._sock.settimeout(self.timeout_s)
        # Separate reader and writer file objects, deliberately: a
        # combined mode-"rw" makefile discards its read-ahead buffer on
        # every write, silently losing any lines (e.g. pipelined acks)
        # that arrived but were not yet read.
        self._reader = sock.makefile("r", encoding="utf-8", newline="\n")
        self._writer = sock.makefile("w", encoding="utf-8", newline="\n")
        self._broken = False

    @property
    def broken(self) -> bool:
        """True once a transport error has poisoned this connection."""
        return self._broken

    def check_usable(self) -> None:
        """Raise the poisoning error if the connection is broken."""
        if self._broken:
            raise FatalServiceError(
                "connection is in an undefined state after a transport "
                "error; build a fresh client to reconnect"
            )

    def send_payload(self, payload: Mapping[str, Any]) -> None:
        """Write one encoded frame; typed errors on transport failure."""
        self.send_raw(encode_line(payload))

    def send_raw(self, line: str) -> None:
        """Write one raw line (the chaos hook for malformed frames).

        The newline is appended when missing so a deliberately truncated
        frame still terminates and the server can answer it.
        """
        self.check_usable()
        if not line.endswith("\n"):
            line += "\n"
        try:
            self._writer.write(line)
            self._writer.flush()
        except socket.timeout as error:
            self._broken = True
            raise RetriableServiceError(
                f"timed out sending to {self.peer} after {self.timeout_s}s"
            ) from error
        except (BrokenPipeError, ConnectionResetError, OSError) as error:
            self._broken = True
            raise RetriableServiceError(
                f"connection to {self.peer} lost mid-send: {error}"
            ) from error
        except ValueError as error:  # write on a closed file object
            self._broken = True
            raise FatalServiceError(f"client is closed: {error}") from error

    def recv_payload(self) -> dict[str, Any]:
        """Read and decode one frame; typed errors on transport failure."""
        self.check_usable()
        try:
            line = self._reader.readline()
        except socket.timeout as error:
            # After a timeout mid-recv the line buffer may hold a
            # partial frame — nothing on this connection can be trusted.
            self._broken = True
            raise RetriableServiceError(
                f"timed out waiting for {self.peer} after {self.timeout_s}s"
            ) from error
        except (ConnectionResetError, OSError) as error:
            self._broken = True
            raise RetriableServiceError(
                f"connection to {self.peer} reset mid-recv: {error}"
            ) from error
        except ValueError as error:  # read on a closed file object
            self._broken = True
            raise FatalServiceError(f"client is closed: {error}") from error
        if not line:
            self._broken = True
            raise RetriableServiceError(f"{self.peer} closed the connection")
        return decode_line(line)

    def abort(self) -> None:
        """Sever the transport abruptly, with no clean close.

        A testing/chaos hook: the next operation fails with a
        :class:`~repro.service.resilience.RetriableServiceError`, which
        is exactly what a mid-session connection reset looks like from
        the caller's side.
        """
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already disconnected: aborting is a no-op

    def close(self) -> None:
        """Release the connection (never raises)."""
        for stream in (self._writer, self._reader):
            try:
                stream.close()
            except (OSError, ValueError):
                pass  # a broken transport may refuse even to close
        self._sock.close()


def connect_unix(path: str, timeout_s: float) -> LineTransport:
    """Open a :class:`LineTransport` to a Unix-domain socket server."""
    try:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout_s)
        sock.connect(str(path))
    except OSError as error:
        raise RetriableServiceError(
            f"cannot connect to service socket {str(path)!r}: {error}"
        ) from error
    return LineTransport(sock, timeout_s, peer=f"unix:{path}")


def connect_tcp(host: str, port: int, timeout_s: float) -> LineTransport:
    """Open a :class:`LineTransport` to a TCP service front end."""
    try:
        sock = socket.create_connection((host, int(port)), timeout=timeout_s)
    except OSError as error:
        raise RetriableServiceError(
            f"cannot connect to service at {host}:{port}: {error}"
        ) from error
    return LineTransport(sock, timeout_s, peer=f"{host}:{port}")
