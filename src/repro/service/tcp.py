"""TCP front end of the serving layer: many connections, one service.

``repro serve --tcp HOST:PORT`` binds this server. It speaks exactly
the line protocol of :mod:`repro.service.server` — the
:class:`~repro.service.server.ServiceProtocol` table is the contract,
and the service behind it may be a single
:class:`~repro.service.service.SolveService` or (with
``--service-workers K``) a :class:`~repro.service.router.ServiceRouter`
fronting K workers; the transport cannot tell the difference.

What TCP adds over the Unix-socket transport is *concurrent
connections*: each accepted connection gets its own reader thread, so a
slow or idle client never blocks the others — which is what lets many
users pipeline requests against one front end
(:class:`~repro.service.async_client.AsyncServiceClient` exploits
this). The service itself stays synchronous; a connection lock
serializes protocol handling, so batching, dedup and the byte-identity
contract are exactly what the sequential transports guarantee.

Like :func:`~repro.service.server.serve_socket`, the server survives
misbehaving clients (resets, half-frames, vanishing mid-reply end that
connection only) and honors ``drain_signal`` for graceful SIGTERM
shutdown.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Callable

from repro.exceptions import ReproError
from repro.service.server import ServiceProtocol
from repro.service.transport import decode_line, encode_line

__all__ = ["serve_tcp"]


def _serve_connection(
    conn: socket.socket,
    protocol: ServiceProtocol,
    lock: threading.Lock,
) -> None:
    """Serve one client connection until EOF, shutdown, or failure.

    Frames are decoded outside the lock and handled inside it — the
    service is synchronous, so the lock is what makes interleaved
    connections equivalent to some sequential order of their lines
    (which is all the protocol ever promises).
    """
    try:
        # Separate reader/writer streams: a combined "rw" makefile drops
        # its read-ahead buffer on write, which would lose pipelined
        # lines that arrived while a reply was being written.
        with conn, conn.makefile(
            "r", encoding="utf-8", newline="\n"
        ) as reader, conn.makefile(
            "w", encoding="utf-8", newline="\n"
        ) as writer:
            for line in reader:
                if not line.strip():
                    continue
                try:
                    payload = decode_line(line)
                except ReproError as error:
                    replies = [{"type": "error", "error": str(error)}]
                else:
                    with lock:
                        replies = list(protocol.handle(payload))
                for reply in replies:
                    writer.write(encode_line(reply))
                writer.flush()
                if protocol.shutting_down:
                    break
    except (OSError, ValueError):
        # A dropped/reset/half-closed client connection is the client's
        # failure, not the server's: keep serving the rest.
        pass


def serve_tcp(
    service: Any,
    host: str,
    port: int,
    ready: Any | None = None,
    on_bound: Callable[[int], None] | None = None,
    drain_signal: Any | None = None,
    drain_timeout_s: float | None = None,
) -> int:
    """Serve the line protocol on a TCP socket, one thread per connection.

    ``service`` is anything exposing the
    :class:`~repro.service.service.SolveService` surface — including a
    :class:`~repro.service.router.ServiceRouter`. ``port=0`` binds an
    ephemeral port; ``on_bound``, when given, is called with the actual
    port before the first accept (how tests and the CLI learn the
    address), and ``ready`` (an object with ``set()``, e.g. a
    ``threading.Event``) is signalled once the socket is listening.

    ``drain_signal`` (an ``is_set()`` object, e.g. an event flipped by
    SIGTERM) is polled between accepts: once set, the service drains
    gracefully — bounded by ``drain_timeout_s`` — and the server exits.
    A client-sent ``drain`` or ``shutdown`` line stops the server the
    same way it stops the sequential transports. Returns the number of
    connections served.
    """
    protocol = ServiceProtocol(service)
    lock = threading.Lock()
    connections = 0
    threads: list[threading.Thread] = []
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as server:
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            server.bind((host, int(port)))
        except OSError as error:
            raise ReproError(
                f"cannot bind TCP server to {host}:{port}: {error}"
            ) from error
        server.listen(16)
        bound_port = server.getsockname()[1]
        if on_bound is not None:
            on_bound(bound_port)
        # Poll between accepts so the drain signal and a shutdown line
        # handled on a connection thread are both noticed promptly.
        server.settimeout(0.25)
        if ready is not None:
            ready.set()
        while not protocol.shutting_down:
            if drain_signal is not None and drain_signal.is_set():
                with lock:
                    service.shutdown(
                        drain=True, drain_timeout_s=drain_timeout_s
                    )
                break
            try:
                conn, _ = server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            connections += 1
            thread = threading.Thread(
                target=_serve_connection,
                args=(conn, protocol, lock),
                daemon=True,
                name=f"repro-serve-tcp-{connections}",
            )
            thread.start()
            threads.append(thread)
    for thread in threads:
        # Bounded join: an idle client blocked in readline must not pin
        # the server's exit; the threads are daemons either way.
        thread.join(timeout=1.0)
    return connections
