"""Horizontal scaling: consistent-hash routing over service workers.

One :class:`~repro.service.service.SolveService` saturates one process.
The :class:`ServiceRouter` is the horizontal half: it fronts ``K``
backend service workers and routes every request on its canonical
:meth:`~repro.service.request.SolveRequest.work_key` through a
:class:`HashRing`, so the two properties that make the single-process
service efficient *survive sharding*:

* **Dedup keeps working.** Two requests with equal work keys hash to
  the same worker, land in the same admission queue, and the worker's
  batcher answers the duplicate from the leader's solve — exactly as
  if there were one worker. (This is the instance-identity partitioning
  the k-machine / MPC framings of distributed facility location assume
  when spreading one problem family across machines.)
* **Result reuse keeps working — and gets wider.** A router-side
  :class:`SharedResultCache`, keyed by work key and TTL'd, answers
  repeat work without touching any worker, including repeats that
  previously ran on a *different* worker. Entries store the exact
  ``result``/``manifest`` payloads a worker produced, so a cache hit is
  byte-identical to a fresh solve (the equivalence suite asserts it).

The router exposes the same surface a
:class:`~repro.service.service.SolveService` does (``submit`` /
``run_until_drained`` / ``lookup`` / ``fetch`` / ``metrics_summary`` /
``shutdown``), so every transport —
:func:`~repro.service.server.serve_jsonl`,
:func:`~repro.service.server.serve_socket`, and the TCP front end in
:mod:`repro.service.tcp` — serves a router exactly the way it serves a
single service. ``repro serve --service-workers K`` builds one.

Everything is measured: routing decisions land in ``service.route.*``
and cache traffic in ``service.shared_cache.*`` (see
``docs/OBSERVABILITY.md``). Worker-level instruments stay in each
worker's private registry; :meth:`ServiceRouter.metrics_summary` sums
them so the aggregate view a client polls matches the single-service
shape field for field.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Mapping

from repro.exceptions import ReproError
from repro.obs.registry import MetricsRegistry
from repro.service.queue import AdmissionResult
from repro.service.request import SolveRequest, SolveResponse
from repro.service.service import ServiceConfig, SolveService
from repro.service.store import ResultStore, StoreMiss

__all__ = [
    "CachedResult",
    "HashRing",
    "RouterConfig",
    "ServiceRouter",
    "SharedResultCache",
    "canonical_key_bytes",
]


def canonical_key_bytes(key: Hashable) -> bytes:
    """Stable bytes for a work key (the hash input of the ring).

    Work keys are nested tuples of JSON scalars, so key-sorted JSON of
    the tuple (tuples serialize as arrays) is canonical: equal keys give
    equal bytes on every process, platform and run — which is what makes
    routing deterministic across restarts and across machines.
    """
    return json.dumps(key, sort_keys=True, separators=(",", ":")).encode()


class HashRing:
    """Consistent-hash ring mapping work keys onto worker indices.

    Each worker owns ``replicas`` pseudo-random points (vnodes) on a
    ring of SHA-256 positions; a key is assigned to the worker owning
    the first point clockwise of the key's own position. The classic
    consequences, both load-bearing here and asserted by tests:

    * **Deterministic** — positions derive only from worker index and
      replica number, so the same key maps to the same worker on every
      run and every process.
    * **Stable under resizing** — growing ``K`` workers to ``K+1``
      moves only the keys whose arc the new worker's points claim,
      about ``1/(K+1)`` of them; everything else keeps its worker (and
      therefore its worker-local queue/store locality).
    * **Duplicate-preserving** — equal work keys trivially land on the
      same worker, which is what keeps batcher dedup working across a
      sharded deployment.
    """

    def __init__(self, num_workers: int, replicas: int = 64) -> None:
        if num_workers < 1:
            raise ReproError(f"num_workers must be >= 1, got {num_workers}")
        if replicas < 1:
            raise ReproError(f"replicas must be >= 1, got {replicas}")
        self.num_workers = int(num_workers)
        self.replicas = int(replicas)
        points: list[tuple[int, int]] = []
        for worker in range(self.num_workers):
            for replica in range(self.replicas):
                digest = hashlib.sha256(
                    f"worker:{worker}:replica:{replica}".encode()
                ).digest()
                points.append((int.from_bytes(digest[:8], "big"), worker))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [owner for _, owner in points]

    def position_of(self, key: Hashable) -> int:
        """The key's own point on the ring (an unsigned 64-bit value)."""
        digest = hashlib.sha256(canonical_key_bytes(key)).digest()
        return int.from_bytes(digest[:8], "big")

    def worker_for(self, key: Hashable) -> int:
        """Worker index owning ``key`` (first vnode clockwise of it)."""
        index = bisect_right(self._positions, self.position_of(key))
        if index == len(self._positions):
            index = 0  # wrap past the highest vnode back to the first
        return self._owners[index]


@dataclass(frozen=True)
class CachedResult:
    """One shared-cache entry: the byte-identical payload of a solve.

    Stores exactly the fields of the producing ``status="ok"`` response
    that are work-determined (``result`` / ``manifest`` / ``recording``)
    and none that are submission-determined (``request_id``, ``wait_s``,
    ``batch_index``), so a hit can be re-wrapped for any requester
    without changing answer bytes.
    """

    result: Mapping[str, Any]
    manifest: Mapping[str, Any]
    recording: Mapping[str, Any]
    stored_at: float
    expires_at: float | None  # None = no TTL

    def expired(self, now: float) -> bool:
        """True once ``now`` has passed the entry's TTL."""
        return self.expires_at is not None and now > self.expires_at

    def response_for(self, request_id: str) -> SolveResponse:
        """Wrap the cached payload as a response to ``request_id``.

        ``dedup=True`` because — like a batch follower — the requester
        is served from another request's solve; ``batch_index=-1``
        because no batch ran for it.
        """
        return SolveResponse(
            request_id=request_id,
            status="ok",
            result=self.result,
            manifest=self.manifest,
            recording=self.recording,
            dedup=True,
            batch_index=-1,
        )


class SharedResultCache:
    """Cross-worker result cache keyed by canonical work key.

    The worker-local :class:`~repro.service.store.ResultStore` answers
    "fetch *this request id* again"; this cache answers the bigger
    question "has *anyone*, on *any worker*, already solved this exact
    work?" — the router consults it before routing, so repeat work
    (zipf-skewed duplicate recipes are the motivating traffic shape)
    never re-queues.

    Entries are TTL'd and capacity-bounded (oldest store evicted
    first); only ``status="ok"`` responses are cached, since errors and
    timeouts are submission outcomes, not work outcomes. Traffic is
    counted in the owning registry: ``service.shared_cache.hits`` /
    ``.misses`` / ``.stores`` / ``.evictions{reason=ttl|capacity}``
    plus the ``service.shared_cache.size`` gauge.
    """

    def __init__(
        self,
        ttl_s: float | None = 300.0,
        max_entries: int = 512,
        clock: Callable[[], float] = time.monotonic,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if ttl_s is not None and ttl_s <= 0:
            raise ReproError(f"ttl_s must be positive, got {ttl_s}")
        if max_entries < 1:
            raise ReproError(f"max_entries must be >= 1, got {max_entries}")
        self.ttl_s = ttl_s
        self.max_entries = int(max_entries)
        self._clock = clock
        self._entries: "OrderedDict[bytes, CachedResult]" = OrderedDict()
        registry = registry if registry is not None else MetricsRegistry()
        self._hits = registry.counter(
            "service.shared_cache.hits",
            "requests answered from the cross-worker result cache",
        )
        self._misses = registry.counter(
            "service.shared_cache.misses",
            "cache probes that had to route to a worker",
        )
        self._stores = registry.counter(
            "service.shared_cache.stores",
            "ok responses written into the cross-worker result cache",
        )
        self._evictions = registry.counter(
            "service.shared_cache.evictions",
            "cache entries dropped, labeled reason=ttl|capacity",
        )
        self._size = registry.gauge(
            "service.shared_cache.size",
            "current cross-worker result cache size",
        )
        self._size.set(0)

    def __len__(self) -> int:
        return len(self._entries)

    def sweep(self) -> int:
        """Drop every expired entry; returns how many were evicted."""
        now = self._clock()
        dead = [
            key
            for key, entry in self._entries.items()
            if entry.expired(now)
        ]
        for key in dead:
            del self._entries[key]
            self._evictions.inc(reason="ttl")
        self._size.set(len(self._entries))
        return len(dead)

    def get(self, work_key: Hashable) -> CachedResult | None:
        """Cached payload for ``work_key``, or ``None`` (both counted)."""
        self.sweep()
        entry = self._entries.get(canonical_key_bytes(work_key))
        if entry is None:
            self._misses.inc()
            return None
        self._hits.inc()
        return entry

    def put(self, work_key: Hashable, response: SolveResponse) -> bool:
        """Cache an ``ok`` response's payload; True when stored.

        Non-``ok`` responses are refused (their outcome belongs to one
        submission, not to the work); re-putting a key refreshes its
        TTL with identical bytes, which is harmless by the work-key
        contract.
        """
        if response.status != "ok":
            return False
        now = self._clock()
        key = canonical_key_bytes(work_key)
        self._entries.pop(key, None)
        self._entries[key] = CachedResult(
            result=response.result,
            manifest=response.manifest,
            recording=response.recording,
            stored_at=now,
            expires_at=now + self.ttl_s if self.ttl_s is not None else None,
        )
        self._stores.inc()
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions.inc(reason="capacity")
        self._size.set(len(self._entries))
        return True


@dataclass(frozen=True)
class RouterConfig:
    """Tunables of one :class:`ServiceRouter`.

    Parameters
    ----------
    num_workers:
        Backend service workers (``repro serve --service-workers``).
    replicas:
        Vnodes per worker on the :class:`HashRing`; more replicas →
        smoother key balance, slightly larger ring.
    shared_cache_ttl_s:
        Seconds a shared-cache entry stays servable (``None`` = keep
        until capacity eviction).
    shared_cache_entries:
        Shared-cache capacity (oldest store evicted past it).
    parallel_flush:
        Drive the workers' flushes on concurrent threads. Responses are
        merged by global admission order either way, so this changes
        wall-clock only, never bytes.
    """

    num_workers: int = 2
    replicas: int = 64
    shared_cache_ttl_s: float | None = 300.0
    shared_cache_entries: int = 512
    parallel_flush: bool = True

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ReproError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )


class ServiceRouter:
    """K service workers behind one consistent-hash front door.

    Parameters
    ----------
    config:
        Router tunables (:class:`RouterConfig` defaults).
    service_config:
        The :class:`~repro.service.service.ServiceConfig` every backend
        worker is built with (each worker gets a private registry so
        per-worker instruments never collide).
    registry:
        Registry for the router-level instruments (``service.route.*``,
        ``service.shared_cache.*``); a private one is created when
        omitted (exposed as :attr:`registry` either way — the ``metrics
        full`` wire op snapshots it).
    clock:
        Monotonic time source shared with the cache and the router-side
        store; injectable for deterministic tests.
    worker_factory:
        Override building the backend services (tests inject services
        with chaos executors); called once per worker index with the
        worker's :class:`~repro.service.service.ServiceConfig`.

    The router deliberately mirrors the :class:`SolveService` surface
    so the transports and the protocol layer cannot tell the
    difference; byte-identity of routed responses to direct solves is
    asserted by ``tests/test_service_equivalence.py``.
    """

    def __init__(
        self,
        config: RouterConfig | None = None,
        service_config: ServiceConfig | None = None,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        worker_factory: Callable[[ServiceConfig], SolveService] | None = None,
    ) -> None:
        self.config = config if config is not None else RouterConfig()
        self.service_config = (
            service_config if service_config is not None else ServiceConfig()
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        factory = (
            worker_factory
            if worker_factory is not None
            else lambda cfg: SolveService(config=cfg, clock=clock)
        )
        self.workers = [
            factory(self.service_config)
            for _ in range(self.config.num_workers)
        ]
        self.ring = HashRing(
            num_workers=self.config.num_workers,
            replicas=self.config.replicas,
        )
        self.shared_cache = SharedResultCache(
            ttl_s=self.config.shared_cache_ttl_s,
            max_entries=self.config.shared_cache_entries,
            clock=clock,
            registry=self.registry,
        )
        # Cache-served responses are retained router-side so `fetch`
        # works for them exactly like for worker-solved requests; the
        # store shares the workers' TTL/capacity settings.
        self._cache_store = ResultStore(
            ttl_s=self.service_config.result_ttl_s,
            max_entries=self.service_config.max_results,
            clock=clock,
        )
        self._routes = self.registry.counter(
            "service.route.requests",
            "requests routed to a backend worker, labeled worker=<index>",
        )
        self._short_circuits = self.registry.counter(
            "service.route.cache_short_circuits",
            "requests answered at the router from the shared cache "
            "(never routed)",
        )
        self._moved = self.registry.gauge(
            "service.route.workers", "backend service workers behind the ring"
        )
        self._moved.set(self.config.num_workers)
        self._seq = 0
        self._draining = False
        #: request_id → (global seq, owning worker index or None when the
        #: request was answered at the router).
        self._placements: "OrderedDict[str, tuple[int, int | None]]" = (
            OrderedDict()
        )
        #: work keys awaiting their first solve, to backfill the shared
        #: cache at flush time: request_id → work key.
        self._pending_keys: dict[str, Hashable] = {}
        #: cache-hit responses not yet returned by a flush, by seq.
        self._pending_cached: dict[int, SolveResponse] = {}

    # ------------------------------------------------------------------
    # Admission / routing

    @property
    def num_workers(self) -> int:
        """Backend worker count (the ``K`` of ``--service-workers K``)."""
        return self.config.num_workers

    @property
    def pending(self) -> int:
        """Requests queued across all workers plus unreturned cache hits."""
        return sum(worker.pending for worker in self.workers) + len(
            self._pending_cached
        )

    @property
    def draining(self) -> bool:
        """True once drain has begun; new submissions are refused."""
        return self._draining

    def _place(self, request_id: str, worker: int | None) -> int:
        self._seq += 1
        self._placements[request_id] = (self._seq, worker)
        # The placement map is bookkeeping, not retention: bound it by
        # the workers' combined store budget so a long-lived router
        # cannot grow without limit.
        limit = self.service_config.max_results * (self.num_workers + 1)
        while len(self._placements) > limit:
            self._placements.popitem(last=False)
        return self._seq

    def submit(self, request: SolveRequest) -> AdmissionResult:
        """Admit ``request``: shared cache first, then the hash ring.

        A shared-cache hit is answered at the router — the synthesized
        response is retained (fetchable) and returned by the next
        flush, in global admission order with everything else. A miss
        routes to ``ring.worker_for(work_key)``, so duplicates — in
        this flush window or a later one — always share a worker.
        While draining, the cache is bypassed and the routed worker
        answers ``status="draining"``, mirroring single-service
        semantics.
        """
        work_key = request.work_key()
        if not self._draining:
            cached = self.shared_cache.get(work_key)
            if cached is not None:
                response = cached.response_for(request.request_id)
                seq = self._place(request.request_id, None)
                self._pending_cached[seq] = response
                self._cache_store.put(response)
                self._short_circuits.inc()
                return AdmissionResult(accepted=True)
        worker = self.ring.worker_for(work_key)
        self._routes.inc(worker=worker)
        outcome = self.workers[worker].submit(request)
        self._place(request.request_id, worker)
        if outcome.accepted:
            self._pending_keys[request.request_id] = work_key
        return outcome

    # ------------------------------------------------------------------
    # Execution

    def _flush_workers(self) -> list[tuple[int, list[SolveResponse]]]:
        """Drain every worker; (worker index, its responses) pairs."""
        busy = [
            (index, worker)
            for index, worker in enumerate(self.workers)
            if worker.pending
        ]
        results: list[tuple[int, list[SolveResponse]]] = []
        if self.config.parallel_flush and len(busy) > 1:
            lock = threading.Lock()

            def drain(index: int, worker: SolveService) -> None:
                responses = worker.run_until_drained()
                with lock:
                    results.append((index, responses))

            threads = [
                threading.Thread(target=drain, args=(index, worker))
                for index, worker in busy
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results.sort(key=lambda pair: pair[0])
        else:
            for index, worker in busy:
                results.append((index, worker.run_until_drained()))
        return results

    def run_until_drained(self) -> list[SolveResponse]:
        """Flush every worker and merge responses in admission order.

        Worker flushes run concurrently (``parallel_flush``), but the
        merge is by the router's global admission sequence, so the
        returned order is deterministic whatever the thread timing —
        the same merge-by-order trick the parallel
        :class:`~repro.perf.executor.SweepExecutor` uses. Fresh ``ok``
        responses are folded into the shared cache here, which is the
        moment a work key becomes servable to *every* worker's future
        traffic.
        """
        merged: list[tuple[int, SolveResponse]] = []
        for _, responses in self._flush_workers():
            for response in responses:
                placement = self._placements.get(response.request_id)
                seq = placement[0] if placement is not None else self._seq + 1
                merged.append((seq, response))
                key = self._pending_keys.pop(response.request_id, None)
                if key is not None:
                    self.shared_cache.put(key, response)
        for seq, response in self._pending_cached.items():
            merged.append((seq, response))
        self._pending_cached = {}
        merged.sort(key=lambda pair: pair[0])
        return [response for _, response in merged]

    # ------------------------------------------------------------------
    # Drain / shutdown

    def begin_drain(self) -> None:
        """Stop admitting new work on every worker; idempotent."""
        self._draining = True
        for worker in self.workers:
            worker.begin_drain()

    def shutdown(
        self,
        drain: bool = True,
        drain_timeout_s: float | None = None,
    ) -> list[SolveResponse]:
        """Stop all workers, optionally flushing queued work first.

        The drain budget is shared: each worker's shutdown gets the
        time remaining on the router's clock, so ``drain_timeout_s``
        bounds the whole front end, not each worker separately.
        Responses (flushed plus typed ``draining`` leftovers, plus any
        unreturned cache hits) merge in global admission order.
        """
        self.begin_drain()
        deadline = (
            self._clock() + drain_timeout_s
            if drain_timeout_s is not None
            else None
        )
        merged: list[tuple[int, SolveResponse]] = []
        for worker in self.workers:
            remaining = (
                max(deadline - self._clock(), 0.0)
                if deadline is not None
                else None
            )
            for response in worker.shutdown(
                drain=drain, drain_timeout_s=remaining
            ):
                placement = self._placements.get(response.request_id)
                seq = placement[0] if placement is not None else self._seq + 1
                merged.append((seq, response))
                key = self._pending_keys.pop(response.request_id, None)
                if key is not None:
                    self.shared_cache.put(key, response)
        for seq, response in self._pending_cached.items():
            merged.append((seq, response))
        self._pending_cached = {}
        merged.sort(key=lambda pair: pair[0])
        return [response for _, response in merged]

    # ------------------------------------------------------------------
    # Retrieval and reporting

    def lookup(self, request_id: str) -> SolveResponse | StoreMiss:
        """Retained response for ``request_id``, or a typed miss.

        Resolution order: the router-side store of cache-served
        responses, then the owning worker recorded at submit time, then
        — for ids this router never placed (e.g. after a restart) —
        every worker in index order.
        """
        found = self._cache_store.lookup(request_id)
        if isinstance(found, SolveResponse):
            return found
        placement = self._placements.get(request_id)
        if placement is not None and placement[1] is not None:
            return self.workers[placement[1]].lookup(request_id)
        miss: SolveResponse | StoreMiss = StoreMiss(request_id=request_id)
        for worker in self.workers:
            found = worker.lookup(request_id)
            if isinstance(found, SolveResponse):
                return found
            if found.reason != "unknown":
                miss = found
        return miss

    def fetch(self, request_id: str) -> SolveResponse | None:
        """Retained response for ``request_id``, or ``None``."""
        found = self.lookup(request_id)
        return found if isinstance(found, SolveResponse) else None

    def route_counts(self) -> dict[int, float]:
        """Requests routed per worker index (the balance view)."""
        return {
            worker: self._routes.value(worker=worker)
            for worker in range(self.num_workers)
        }

    def metrics_summary(self) -> dict[str, Any]:
        """Aggregate metrics across workers, plus the router's own.

        Worker summaries are summed field-wise (latency quantiles are
        recomputed from the merged histograms' summaries as max, the
        conservative aggregate), then the router adds routing balance
        and shared-cache traffic under ``route_*`` / ``shared_cache_*``
        keys — one flat dict, same shape the single-service summary
        has, so dashboards work unchanged behind a router.
        """
        summaries = [worker.metrics_summary() for worker in self.workers]
        aggregate: dict[str, Any] = {}
        sum_keys = {
            key
            for summary in summaries
            for key in summary
            if not key.startswith("latency_")
        }
        for key in sorted(sum_keys):
            aggregate[key] = sum(summary.get(key, 0) or 0 for summary in summaries)
        counts = [summary.get("latency_count", 0) for summary in summaries]
        total = sum(counts)
        aggregate["latency_count"] = total
        aggregate["latency_mean_s"] = (
            sum(
                summary.get("latency_mean_s", 0.0) * count
                for summary, count in zip(summaries, counts)
            )
            / total
            if total
            else 0.0
        )
        for quantile in ("latency_p50_s", "latency_p95_s"):
            aggregate[quantile] = max(
                (summary.get(quantile, 0.0) for summary in summaries),
                default=0.0,
            )
        aggregate["route_workers"] = self.num_workers
        for worker, routed in self.route_counts().items():
            aggregate[f"route_worker_{worker}"] = routed
        aggregate["route_cache_short_circuits"] = self._short_circuits.total
        aggregate["shared_cache_hits"] = self.shared_cache._hits.total
        aggregate["shared_cache_misses"] = self.shared_cache._misses.total
        aggregate["shared_cache_stores"] = self.shared_cache._stores.total
        aggregate["shared_cache_size"] = len(self.shared_cache)
        return aggregate
