"""Service-level chaos: fault injection against a live solve service.

:mod:`repro.analysis.chaos` stresses the *protocol* (message loss, node
crashes, self-healing); this module stresses the *serving layer* built
in :mod:`repro.service`. It runs a real :class:`~repro.service.service.
SolveService` — in-process or behind the Unix-socket transport — while
injecting the faults a deployment actually sees:

* **worker kills** — a cell's worker process dies mid-solve
  (``os._exit`` in pool workers, :class:`~repro.service.resilience.
  WorkerCrashError` in the serial path), exercising pool respawn and
  the bounded per-cell retry budget;
* **slow cells** — a cell sleeps past the watchdog budget once,
  exercising the stuck-cell timeout path;
* **connection drops** — the client tears its socket down mid-session
  (plus a half-sent frame from a vanishing client), exercising typed
  transport errors, reconnects and idempotent resubmission;
* **malformed frames** — junk lines through a live connection,
  exercising the server's reject-and-continue path.

Faults are assigned deterministically (a hash of the cell and the plan
seed) and fire *once* per cell via marker files, so a retried cell
succeeds — which is exactly the recovery contract under test. The
gates: every request reaches at least one terminal response, no two
terminal responses for one id disagree on payload, and every ``ok``
payload is byte-identical (wall-clock fields aside) to a direct
un-served solve. ``repro chaos-serve`` drives this from the CLI and CI
(``chaos-serve-smoke``) fails the build on any gate breach.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.experiments import ExperimentResult
from repro.exceptions import ReproError
from repro.service.batcher import WorkUnit
from repro.service.client import ServiceClient, SocketServiceClient
from repro.service.queue import QueuedRequest
from repro.service.request import InstanceRecipe, SolveRequest, SolveResponse
from repro.service.resilience import (
    FatalServiceError,
    ResilientExecutor,
    RetriableServiceError,
    RetryingServiceClient,
    RetryPolicy,
    WorkerCrashError,
)
from repro.service.server import serve_socket
from repro.service.service import ServiceConfig, SolveService
from repro.service.worker import run_service_cell_guarded

__all__ = [
    "CellFault",
    "ChaosCellEnvelope",
    "ChaosResilientExecutor",
    "ChaosServePlan",
    "ChaosServeReport",
    "build_chaos_workload",
    "run_chaos_envelope",
    "run_chaos_serve",
]


@dataclass(frozen=True)
class ChaosServePlan:
    """What to break, and how often.

    ``crash_rate`` / ``slow_rate`` are per-*cell* probabilities (decided
    by a deterministic hash, so the same plan against the same workload
    injects the same faults); ``drop_every`` / ``malformed_every``
    trigger on every Nth request of the socket client loop (0 disables).
    """

    crash_rate: float = 0.25
    slow_rate: float = 0.0
    slow_sleep_s: float = 0.4
    drop_every: int = 0
    malformed_every: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash_rate <= 1.0:
            raise ReproError(
                f"crash_rate must be in [0, 1], got {self.crash_rate}"
            )
        if not 0.0 <= self.slow_rate <= 1.0:
            raise ReproError(
                f"slow_rate must be in [0, 1], got {self.slow_rate}"
            )
        if self.crash_rate + self.slow_rate > 1.0:
            raise ReproError("crash_rate + slow_rate must not exceed 1")
        if self.slow_sleep_s <= 0:
            raise ReproError(
                f"slow_sleep_s must be positive, got {self.slow_sleep_s}"
            )
        if self.drop_every < 0 or self.malformed_every < 0:
            raise ReproError("drop_every/malformed_every must be >= 0")


@dataclass(frozen=True)
class CellFault:
    """One injected fault: what fires, and the marker that arms it once.

    The marker file is touched *before* the fault fires, so a retried
    cell finds it and runs clean — crash-once / slow-once semantics,
    shared between pool children and the parent via the filesystem.
    """

    kind: str  # "crash" | "slow"
    marker: str
    sleep_s: float = 0.0
    in_pool: bool = False


@dataclass(frozen=True)
class ChaosCellEnvelope:
    """A service cell plus its (optional) fault, picklable for the pool."""

    cell: Any
    fault: CellFault | None = None


def run_chaos_envelope(envelope: ChaosCellEnvelope) -> dict[str, Any]:
    """Execute one enveloped cell, firing its fault first if still armed.

    Module-level so pool children can import it. Crashes are injected
    *before* the guarded worker runs — ``run_service_cell_guarded``
    would otherwise swallow them into an error dict — via ``os._exit``
    in pool children (a real process death, surfacing as
    ``BrokenProcessPool``) and :class:`~repro.service.resilience.
    WorkerCrashError` in the serial path.
    """
    fault = envelope.fault
    if fault is not None:
        marker = Path(fault.marker)
        if not marker.exists():
            try:
                marker.touch()
            except OSError:
                pass  # worst case the fault fires again; retries absorb it
            if fault.kind == "crash":
                if fault.in_pool:
                    os._exit(17)
                raise WorkerCrashError("chaos: injected worker crash")
            time.sleep(fault.sleep_s)
    return run_service_cell_guarded(envelope.cell)


@dataclass(frozen=True)
class ChaosResilientExecutor(ResilientExecutor):
    """A :class:`~repro.service.resilience.ResilientExecutor` that breaks.

    Overrides the ``_prepare`` hook to wrap every cell in a
    :class:`ChaosCellEnvelope`, assigning faults by a deterministic
    hash of the cell and ``plan.seed``. Everything downstream — crash
    detection, respawn, retry budget, ordered merge — is the production
    code path, which is the point: the harness injects, the executor
    recovers.
    """

    plan: ChaosServePlan = field(default_factory=ChaosServePlan)
    marker_dir: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        needs_markers = self.plan.crash_rate > 0 or self.plan.slow_rate > 0
        if needs_markers and not self.marker_dir:
            raise ReproError(
                "marker_dir is required when crash/slow faults are enabled"
            )

    def _fault_for(self, cell: Any) -> CellFault | None:
        digest = hashlib.sha256(
            f"{self.plan.seed}|{cell!r}".encode()
        ).hexdigest()
        draw = int(digest[:8], 16) / float(0xFFFFFFFF)
        marker = os.path.join(self.marker_dir, f"fault-{digest[:16]}")
        if draw < self.plan.crash_rate:
            return CellFault(
                kind="crash", marker=marker, in_pool=self.workers > 1
            )
        if draw < self.plan.crash_rate + self.plan.slow_rate:
            return CellFault(
                kind="slow",
                marker=marker,
                sleep_s=self.plan.slow_sleep_s,
                in_pool=self.workers > 1,
            )
        return None

    def _prepare(
        self, worker: Any, cells: list[Any]
    ) -> tuple[Any, list[Any]]:
        """Envelope every cell with its deterministic fault assignment."""
        return run_chaos_envelope, [
            ChaosCellEnvelope(cell=cell, fault=self._fault_for(cell))
            for cell in cells
        ]


def build_chaos_workload(
    family: str = "uniform",
    num_facilities: int = 6,
    num_clients: int = 15,
    ks: Sequence[int] = (4, 9),
    seeds: Sequence[int] = (1, 2, 3),
    num_requests: int = 12,
    duplicate_every: int = 3,
) -> list[SolveRequest]:
    """A deterministic mixed workload for the chaos harness.

    Cycles instance seeds and ``k`` values; every ``duplicate_every``-th
    request re-solves an earlier request's work under a fresh id, so
    dedup is exercised *under* fault injection.
    """
    if num_requests < 1:
        raise ReproError(f"num_requests must be >= 1, got {num_requests}")
    requests: list[SolveRequest] = []
    for index in range(num_requests):
        if (
            duplicate_every
            and requests
            and (index + 1) % duplicate_every == 0
        ):
            original = requests[(index // duplicate_every) % len(requests)]
            requests.append(
                SolveRequest(
                    request_id=f"cs-{index}-dup",
                    recipe=original.recipe,
                    k=original.k,
                    variant=original.variant,
                )
            )
            continue
        requests.append(
            SolveRequest(
                request_id=f"cs-{index}",
                recipe=InstanceRecipe(
                    family,
                    num_facilities,
                    num_clients,
                    seeds[index % len(seeds)],
                ),
                k=ks[index % len(ks)],
            )
        )
    return requests


def _terminal_signature(response: SolveResponse) -> str:
    """Canonical payload bytes of a terminal response.

    Scheduling metadata (``wait_s``, ``batch_index``, ``dedup``) is
    excluded: a legitimately re-executed request may land in a later
    batch, but its *payload* must never diverge. Wall-clock manifest
    fields are stripped for the same reason the equivalence suite
    strips them.
    """
    return json.dumps(
        {
            "status": response.status,
            "error": response.error,
            "result": dict(response.result),
            "manifest": _strip_wall_clock(dict(response.manifest)),
        },
        sort_keys=True,
    )


def _strip_wall_clock(manifest: dict[str, Any]) -> dict[str, Any]:
    cleaned = json.loads(json.dumps(manifest))
    if cleaned:
        cleaned["wall_seconds"] = 0.0
        cleaned.get("timeline_summary", {}).pop("total_wall_ms", None)
    return cleaned


def _direct_signature(request: SolveRequest) -> str:
    """The oracle: the same work solved directly, no service in between."""
    cell = WorkUnit(
        leader=QueuedRequest(
            request=request, arrival=0.0, seq=0, deadline=None
        )
    ).cell()
    outcome = run_service_cell_guarded(cell)
    return json.dumps(
        {
            "result": dict(outcome.get("result", {})),
            "manifest": _strip_wall_clock(dict(outcome.get("manifest", {}))),
        },
        sort_keys=True,
    )


@dataclass(frozen=True)
class ChaosServeReport:
    """Outcome of one chaos-serve run, with the gates made explicit.

    ``lost`` — request ids that never reached a server-issued terminal
    response; ``conflicting`` — ids whose collected terminal responses
    disagree on payload (a duplicated-but-divergent answer);
    ``divergent`` — ``ok`` ids whose payload differs from the direct
    solve. All three must be empty (and at least one request must have
    completed ``ok``) for :attr:`passed`.
    """

    total_requests: int
    statuses: Mapping[str, int]
    lost: tuple[str, ...]
    conflicting: tuple[str, ...]
    divergent: tuple[str, ...]
    injected: Mapping[str, int]
    client_stats: Mapping[str, int]
    service_metrics: Mapping[str, Any]
    config: Mapping[str, Any]

    def failures(self) -> list[dict[str, Any]]:
        """Every gate breach, machine-readable."""
        found: list[dict[str, Any]] = []
        if self.lost:
            found.append(
                {"gate": "no_lost_responses", "request_ids": list(self.lost)}
            )
        if self.conflicting:
            found.append(
                {
                    "gate": "exactly_one_terminal_payload",
                    "request_ids": list(self.conflicting),
                }
            )
        if self.divergent:
            found.append(
                {
                    "gate": "ok_byte_identical_to_direct",
                    "request_ids": list(self.divergent),
                }
            )
        if not self.statuses.get("ok"):
            found.append(
                {"gate": "at_least_one_ok", "observed": dict(self.statuses)}
            )
        return found

    @property
    def passed(self) -> bool:
        """Whether every gate held."""
        return not self.failures()

    def to_experiment_result(self) -> ExperimentResult:
        """Summarize as an :class:`ExperimentResult` (id ``CHAOS_SERVE``).

        Its ``to_record()`` is the bench-record JSON ``repro compare``
        consumes, so resilience regressions (lost responses, divergence,
        runaway retries) show up next to perf regressions.
        """
        row = (
            self.total_requests,
            self.statuses.get("ok", 0),
            len(self.lost),
            len(self.conflicting),
            len(self.divergent),
            self.injected.get("crash_cells", 0)
            + self.injected.get("slow_cells", 0),
            self.injected.get("drops", 0),
            self.injected.get("malformed", 0),
            int(self.client_stats.get("retries", 0)),
            int(self.service_metrics.get("exec_retries", 0)),
            int(self.service_metrics.get("exec_respawns", 0)),
            int(self.passed),
        )
        notes = dict(self.config)
        notes["statuses"] = dict(self.statuses)
        return ExperimentResult(
            experiment_id="CHAOS_SERVE",
            title="service chaos: fault-tolerant serving gates",
            headers=(
                "requests",
                "ok",
                "lost",
                "conflicting",
                "divergent",
                "cell_faults",
                "drops",
                "malformed",
                "client_retries",
                "exec_retries",
                "exec_respawns",
                "gate_ok",
            ),
            rows=(row,),
            notes=notes,
        )


def _collect(
    terminals: dict[str, list[SolveResponse]],
    response: SolveResponse | None,
) -> None:
    if response is None:
        return
    if response.batch_index == -1 and response.error.startswith(
        "retry budget exhausted"
    ):
        return  # synthesized client-side giveup, not a server answer
    terminals.setdefault(response.request_id, []).append(response)


def _drive_inprocess(
    service: SolveService,
    requests: Sequence[SolveRequest],
    policy: RetryPolicy,
) -> tuple[dict[str, list[SolveResponse]], dict[str, int], dict[str, int]]:
    """Drive the workload through the in-process client path."""
    retrying = RetryingServiceClient(
        lambda: ServiceClient(service), policy=policy, sleep=lambda _s: None
    )
    terminals: dict[str, list[SolveResponse]] = {}
    for response in retrying.solve_many(list(requests)):
        _collect(terminals, response)
    for request in requests:  # a re-fetch must agree with the first answer
        _collect(terminals, retrying.fetch(request.request_id))
    stats = vars(retrying.stats).copy()
    return terminals, {"drops": 0, "malformed": 0}, stats


def _stab_partial_frame(path: str) -> None:
    """Connect, half-send a frame, vanish — the rudest client there is."""
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as stab:
            stab.settimeout(2.0)
            stab.connect(path)
            stab.sendall(b'{"type":"solve","request_id":"half')
    except OSError:
        pass  # the stab is best-effort; the server may already be busy


def _drive_socket(
    service: SolveService,
    requests: Sequence[SolveRequest],
    plan: ChaosServePlan,
    policy: RetryPolicy,
    socket_path: str,
) -> tuple[dict[str, list[SolveResponse]], dict[str, int], dict[str, int]]:
    """Drive the workload over the socket transport, injecting transport
    faults (connection drops, half-sent frames, malformed lines) between
    requests."""
    ready = threading.Event()
    server = threading.Thread(
        target=serve_socket,
        args=(service, socket_path),
        kwargs={"ready": ready},
        daemon=True,
    )
    server.start()
    if not ready.wait(timeout=10.0):
        raise ReproError("socket server failed to start")
    injected = {"drops": 0, "malformed": 0}
    terminals: dict[str, list[SolveResponse]] = {}
    retrying = RetryingServiceClient(
        lambda: SocketServiceClient(socket_path, timeout_s=60.0),
        policy=policy,
        sleep=lambda _s: None,
    )
    try:
        for index, request in enumerate(requests):
            if plan.malformed_every and (
                (index + 1) % plan.malformed_every == 0
            ):
                injected["malformed"] += 1
                try:
                    reply = retrying.current.raw_request('{"type":"solve",')
                    if reply.get("type") != "error":
                        raise ReproError(
                            f"malformed frame was not rejected: {reply}"
                        )
                except RetriableServiceError:
                    retrying.drop_connection()
            if plan.drop_every and (index + 1) % plan.drop_every == 0:
                # Sever the live connection *before* the request, so the
                # retrying client hits a mid-operation transport error
                # and must reconnect + resubmit; then stab the server
                # with a half-sent frame from a vanishing client.
                injected["drops"] += 1
                retrying.current.abort()
                _stab_partial_frame(socket_path)
            _collect(terminals, retrying.solve(request))
        for request in requests:  # re-fetch pass: answers must be stable
            _collect(terminals, retrying.fetch(request.request_id))
        try:
            retrying.current.shutdown()
        except (RetriableServiceError, FatalServiceError):
            retrying.drop_connection()
            retrying.current.shutdown()
    finally:
        retrying.close()
        server.join(timeout=10.0)
    stats = vars(retrying.stats).copy()
    return terminals, injected, stats


def run_chaos_serve(
    requests: Sequence[SolveRequest] | None = None,
    plan: ChaosServePlan | None = None,
    workers: int = 2,
    max_attempts: int = 4,
    cell_timeout_s: float | None = 30.0,
    use_socket: bool = False,
    marker_dir: str | None = None,
    socket_path: str | None = None,
    retry_policy: RetryPolicy | None = None,
) -> ChaosServeReport:
    """Run the full service-level chaos experiment and gate it.

    Builds a :class:`ChaosResilientExecutor` around ``plan``, serves
    ``requests`` (default: :func:`build_chaos_workload`) through the
    in-process or socket client path with retries enabled, then checks
    the gates: no lost terminal responses, no conflicting duplicate
    answers, and every ``ok`` payload byte-identical to a direct solve.
    ``marker_dir`` / ``socket_path`` default to fresh temp locations.
    """
    plan = plan if plan is not None else ChaosServePlan()
    requests = (
        list(requests) if requests is not None else build_chaos_workload()
    )
    policy = (
        retry_policy
        if retry_policy is not None
        else RetryPolicy(max_attempts=5, backoff_base_s=0.0, jitter=0.0)
    )
    with tempfile.TemporaryDirectory(prefix="chaos-serve-") as scratch:
        executor = ChaosResilientExecutor(
            workers=workers,
            max_attempts=max_attempts,
            cell_timeout_s=cell_timeout_s,
            plan=plan,
            marker_dir=marker_dir if marker_dir is not None else scratch,
        )
        service = SolveService(
            config=ServiceConfig(workers=workers), executor=executor
        )
        if use_socket:
            terminals, injected, client_stats = _drive_socket(
                service,
                requests,
                plan,
                policy,
                socket_path
                if socket_path is not None
                else os.path.join(scratch, "chaos.sock"),
            )
        else:
            terminals, injected, client_stats = _drive_inprocess(
                service, requests, policy
            )
        fault_kinds = {"crash_cells": 0, "slow_cells": 0}
        for request in requests:
            cell = WorkUnit(
                leader=QueuedRequest(
                    request=request, arrival=0.0, seq=0, deadline=None
                )
            ).cell()
            fault = executor._fault_for(cell)
            if fault is not None:
                fault_kinds[f"{fault.kind}_cells"] += 1
        injected = {**injected, **fault_kinds}
        metrics = service.metrics_summary()
    statuses: dict[str, int] = {}
    lost: list[str] = []
    conflicting: list[str] = []
    divergent: list[str] = []
    direct_cache: dict[tuple[Any, ...], str] = {}
    for request in requests:
        rid = request.request_id
        answers = terminals.get(rid, [])
        if not answers:
            lost.append(rid)
            continue
        first = answers[0]
        statuses[first.status] = statuses.get(first.status, 0) + 1
        signatures = {_terminal_signature(answer) for answer in answers}
        if len(signatures) > 1:
            conflicting.append(rid)
        if first.status == "ok":
            key = request.work_key()
            if key not in direct_cache:
                direct_cache[key] = _direct_signature(request)
            served = json.dumps(
                {
                    "result": dict(first.result),
                    "manifest": _strip_wall_clock(dict(first.manifest)),
                },
                sort_keys=True,
            )
            if served != direct_cache[key]:
                divergent.append(rid)
    return ChaosServeReport(
        total_requests=len(requests),
        statuses=statuses,
        lost=tuple(lost),
        conflicting=tuple(conflicting),
        divergent=tuple(divergent),
        injected=injected,
        client_stats=client_stats,
        service_metrics=metrics,
        config={
            "workers": workers,
            "max_attempts": max_attempts,
            "cell_timeout_s": cell_timeout_s,
            "use_socket": use_socket,
            "crash_rate": plan.crash_rate,
            "slow_rate": plan.slow_rate,
            "drop_every": plan.drop_every,
            "malformed_every": plan.malformed_every,
            "seed": plan.seed,
        },
    )
