"""Canonical experiment configurations E1–E17.

The original paper proves analytical bounds and has no measurement
section; this module instantiates every stated claim as a measurable
table/figure (see the experiment index in DESIGN.md). Each ``run_*``
function is deterministic given its arguments, returns an
:class:`ExperimentResult` (structured rows + a rendered ASCII table), and
is called both by the ``benchmarks/`` suite (small configurations) and by
``examples/`` / EXPERIMENTS.md generation (full configurations).

Every function takes a ``quick`` flag that shrinks the workload to
benchmark-friendly size without changing its structure.
"""

from __future__ import annotations

import functools
import math
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.aggregate import aggregate, linear_fit
from repro.analysis.tables import render_table
from repro.baselines import (
    exact_solve,
    greedy_solve,
    jain_vazirani_solve,
    local_search_solve,
    lp_rounding_solve,
    mettu_plaxton_solve,
    solve_lp,
)
from repro.core.algorithm import (
    DistributedFacilityLocation,
    Variant,
    solve_distributed,
)
from repro.core.bounds import approximation_envelope, round_budget
from repro.core.dual_ascent_nodes import RoundingPolicy
from repro.core.parameters import TradeoffParameters
from repro.core.sequential_sim import run_sequential
from repro.fl.generators import decoy_instance, high_spread_instance, make_instance
from repro.net.faults import FaultPlan
from repro.perf.cache import cached_instance, cached_lp_value
from repro.perf.cells import (
    CellOutcome,
    SequentialCell,
    SolveCell,
    run_sequential_cell,
    run_solve_cell,
)
from repro.perf.executor import SweepExecutor

__all__ = [
    "ExperimentResult",
    "run_e1_tradeoff_table",
    "run_e2_ratio_vs_k",
    "run_e3_rounds_vs_k",
    "run_e4_message_bits",
    "run_e5_baselines_table",
    "run_e6_rounding_ablation",
    "run_e7_rho_sensitivity",
    "run_e8_families_table",
    "run_e9_scalability",
    "run_e10_variants_table",
    "run_e11_faults",
    "run_e12_ladder_necessity",
    "run_e13_settle_ablation",
    "run_e14_anytime",
    "run_e15_concentration",
    "run_e16_opening_rule",
    "run_e17_fault_families",
    "DEFAULT_K_VALUES",
    "DEFAULT_FAMILIES",
]

DEFAULT_K_VALUES: tuple[int, ...] = (1, 4, 9, 16, 25, 36, 49)
QUICK_K_VALUES: tuple[int, ...] = (1, 4, 9, 16)
DEFAULT_FAMILIES: tuple[str, ...] = ("uniform", "euclidean", "clustered", "set_cover")
QUICK_FAMILIES: tuple[str, ...] = ("uniform", "euclidean")


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one experiment."""

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]
    notes: Mapping[str, Any] = field(default_factory=dict)

    @property
    def table(self) -> str:
        """Rendered ASCII table (what EXPERIMENTS.md embeds)."""
        return render_table(
            self.headers, self.rows, title=f"{self.experiment_id}: {self.title}"
        )

    def column(self, header: str) -> list[Any]:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    @property
    def wall_seconds(self) -> float:
        """Wall-clock the experiment took (0.0 for hand-built results)."""
        return float(self.notes.get("wall_seconds", 0.0))

    def to_record(self) -> dict[str, Any]:
        """Structured JSON record for benchmark trajectories.

        This is what ``benchmarks/`` writes next to each rendered table
        and what ``repro bench`` folds into ``BENCH_<name>.json`` files.
        ``params`` carries the experiment configuration (the notes);
        ``metrics`` carries per-column mean/max of every numeric table
        column, which is what cross-version regression comparison keys
        on. NaN/inf cells are dropped (they encode "not applicable").
        """
        from repro import __version__

        params = {
            key: _json_safe(value)
            for key, value in sorted(self.notes.items())
            if key != "wall_seconds"
        }
        metrics: dict[str, float] = {}
        for idx, header in enumerate(self.headers):
            values = [
                float(row[idx])
                for row in self.rows
                if isinstance(row[idx], (int, float))
                and not isinstance(row[idx], bool)
                and math.isfinite(row[idx])
            ]
            if values:
                metrics[f"{header}_mean"] = sum(values) / len(values)
                metrics[f"{header}_max"] = max(values)
        return {
            "type": "bench_record",
            "schema": 1,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "version": __version__,
            "wall_seconds": self.wall_seconds,
            "num_rows": len(self.rows),
            "params": params,
            "metrics": metrics,
        }


def _json_safe(value: Any) -> Any:
    """Make one record value strict-JSON representable (NaN/inf -> None)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, tuple):
        return [_json_safe(v) for v in value]
    return value


def _timed(
    func: Callable[..., ExperimentResult]
) -> Callable[..., ExperimentResult]:
    """Attach the experiment's wall-clock to its record.

    Benchmark artifacts and EXPERIMENTS.md snapshots carry the timing in
    ``notes["wall_seconds"]``, so cross-version trajectories (BENCH_*.json)
    can track cost *and* speed from the same record.
    """

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> ExperimentResult:
        start = time.perf_counter()
        result = func(*args, **kwargs)
        notes = dict(result.notes)
        notes["wall_seconds"] = time.perf_counter() - start
        return replace(result, notes=notes)

    return wrapper


#: In-process fallback used whenever a sweep gets no explicit executor.
_SERIAL = SweepExecutor()


def _sweep(
    cells: Sequence[SolveCell], executor: SweepExecutor | None
) -> list[CellOutcome]:
    """Run distributed-solve cells, serially or fanned out, in cell order.

    The ordered merge is what keeps parallel experiments byte-identical
    to serial ones: every aggregation below consumes results positionally.
    """
    return (executor or _SERIAL).map_cells(run_solve_cell, cells)


def _sweep_sequential(
    cells: Sequence[SequentialCell], executor: SweepExecutor | None
) -> list[CellOutcome]:
    """Run sequential-emulation cells, serially or fanned out, in order."""
    return (executor or _SERIAL).map_cells(run_sequential_cell, cells)


def _ratio_sweep(
    family: str,
    m: int,
    n: int,
    k_values: Sequence[int],
    seeds: Sequence[int],
    instance_seed: int = 3,
    executor: SweepExecutor | None = None,
) -> tuple[dict[int, list[float]], float]:
    """Measured distributed ratios per k over seeds, plus the cost spread."""
    instance = cached_instance(family, m, n, instance_seed)
    bound = max(cached_lp_value(instance), 1e-12)
    cells = [
        SolveCell(instance=instance, k=k, seed=s) for k in k_values for s in seeds
    ]
    outcomes = _sweep(cells, executor)
    ratios: dict[int, list[float]] = {}
    for cell, outcome in zip(cells, outcomes):
        ratios.setdefault(cell.k, []).append(outcome.cost / bound)
    return ratios, instance.rho


# ----------------------------------------------------------------------
# E1 (Table 1): the main trade-off
# ----------------------------------------------------------------------


@_timed
def run_e1_tradeoff_table(
    m: int = 20,
    n: int = 60,
    k_values: Sequence[int] | None = None,
    families: Sequence[str] | None = None,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Measured ratio vs the analytic envelope for every ``k`` and family.

    Reproduces the paper's main theorem as a table: for each ``k`` and
    instance family, the measured ratio (vs the LP lower bound) must stay
    below the envelope ``sqrt(k) (m rho)^(1/sqrt k) log(m+n)``; the table
    reports the implied constant ``ratio / envelope``, whose boundedness
    across ``k`` *is* the reproduced claim.
    """
    if quick:
        k_values = k_values or QUICK_K_VALUES
        families = families or QUICK_FAMILIES
        seeds = seeds[:2]
    else:
        k_values = k_values or DEFAULT_K_VALUES
        families = families or DEFAULT_FAMILIES
    rows: list[tuple[Any, ...]] = []
    max_constant = 0.0
    for family in families:
        ratios, rho = _ratio_sweep(
            family, m, n, k_values, seeds, executor=executor
        )
        for k in k_values:
            agg = aggregate(ratios[k])
            envelope = approximation_envelope(k, m, n, rho)
            constant = agg.maximum / envelope
            max_constant = max(max_constant, constant)
            rows.append(
                (family, k, agg.mean, agg.std, agg.maximum, envelope, constant)
            )
    return ExperimentResult(
        experiment_id="E1",
        title="round/approximation trade-off vs analytic envelope",
        headers=(
            "family",
            "k",
            "ratio_mean",
            "ratio_std",
            "ratio_max",
            "envelope",
            "implied_C",
        ),
        rows=tuple(rows),
        notes={"m": m, "n": n, "seeds": len(seeds), "max_implied_C": max_constant},
    )


# ----------------------------------------------------------------------
# E2 (Fig 1): ratio vs k series
# ----------------------------------------------------------------------


@_timed
def run_e2_ratio_vs_k(
    m: int = 20,
    n: int = 60,
    k_values: Sequence[int] | None = None,
    family: str = "euclidean",
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """The trade-off curve: measured ratio falls with ``k`` toward greedy.

    Reproduces the qualitative content of the main theorem as a figure
    series: the measured curve, the envelope curve, and the (k-independent)
    greedy reference line the algorithm converges to.
    """
    if quick:
        k_values = k_values or QUICK_K_VALUES
        seeds = seeds[:2]
    else:
        k_values = k_values or DEFAULT_K_VALUES
    instance = cached_instance(family, m, n, 3)
    bound = max(cached_lp_value(instance), 1e-12)
    greedy_ratio = greedy_solve(instance).cost / bound
    cells = [
        SolveCell(instance=instance, k=k, seed=s) for k in k_values for s in seeds
    ]
    outcomes = _sweep(cells, executor)
    rows: list[tuple[Any, ...]] = []
    for idx, k in enumerate(k_values):
        batch = outcomes[idx * len(seeds) : (idx + 1) * len(seeds)]
        agg = aggregate([o.cost / bound for o in batch])
        envelope = approximation_envelope(k, m, n, instance.rho)
        rows.append((k, agg.mean, agg.ci95_half_width, envelope, greedy_ratio))
    return ExperimentResult(
        experiment_id="E2",
        title=f"ratio vs k on {family} (m={m}, n={n})",
        headers=("k", "ratio_mean", "ratio_ci95", "envelope", "greedy_ref"),
        rows=tuple(rows),
        notes={"family": family, "rho": instance.rho},
    )


# ----------------------------------------------------------------------
# E3 (Fig 2): rounds are Theta(k)
# ----------------------------------------------------------------------


@_timed
def run_e3_rounds_vs_k(
    m: int = 20,
    n: int = 60,
    k_values: Sequence[int] | None = None,
    family: str = "uniform",
    quick: bool = False,
) -> ExperimentResult:
    """Measured simulator rounds vs ``k`` with a linear fit.

    Reproduces the ``O(k)`` round-complexity claim: measured rounds must
    stay below :func:`~repro.core.bounds.round_budget` and fit a line with
    small residuals.
    """
    k_values = k_values or (QUICK_K_VALUES if quick else DEFAULT_K_VALUES)
    instance = cached_instance(family, m, n, 3)
    rows: list[tuple[Any, ...]] = []
    measured: list[float] = []
    for k in k_values:
        result = solve_distributed(instance, k=k, seed=0)
        measured.append(float(result.metrics.rounds))
        rows.append((k, result.metrics.rounds, round_budget(k)))
    slope, intercept = linear_fit([float(k) for k in k_values], measured)
    return ExperimentResult(
        experiment_id="E3",
        title="rounds grow linearly in k",
        headers=("k", "rounds", "budget"),
        rows=tuple(rows),
        notes={"fit_slope": slope, "fit_intercept": intercept},
    )


# ----------------------------------------------------------------------
# E4 (Fig 3): message size is O(log N)
# ----------------------------------------------------------------------


@_timed
def run_e4_message_bits(
    sizes: Sequence[tuple[int, int]] | None = None,
    k: int = 9,
    family: str = "uniform",
    quick: bool = False,
) -> ExperimentResult:
    """Max bits per message vs network size.

    Reproduces the CONGEST claim: as ``N = m + n`` grows, the largest
    single message stays under the ``O(log2 N)`` envelope (with the float
    payload convention of :mod:`repro.net.message`).
    """
    if sizes is None:
        sizes = (
            [(5, 25), (10, 50), (20, 100)]
            if quick
            else [(5, 25), (10, 50), (20, 100), (40, 200), (80, 400)]
        )
    rows: list[tuple[Any, ...]] = []
    for m, n in sizes:
        instance = cached_instance(family, m, n, 3)
        result = solve_distributed(instance, k=k, seed=0)
        total = m + n
        from repro.core.bounds import message_bits_envelope

        rows.append(
            (
                total,
                result.metrics.max_message_bits,
                result.metrics.mean_message_bits,
                message_bits_envelope(total),
            )
        )
    return ExperimentResult(
        experiment_id="E4",
        title="per-message bits vs network size",
        headers=("N", "max_bits", "mean_bits", "envelope"),
        rows=tuple(rows),
        notes={"k": k, "family": family},
    )


# ----------------------------------------------------------------------
# E5 (Table 2): baseline comparison
# ----------------------------------------------------------------------


@_timed
def run_e5_baselines_table(
    m: int = 15,
    n: int = 45,
    families: Sequence[str] | None = None,
    k: int = 25,
    seeds: Sequence[int] = (0, 1, 2),
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Distributed@k against every sequential baseline, per family.

    Reports cost ratios vs the LP bound. Metric-only baselines (JV, MP, LP
    rounding) are skipped on families where they do not apply (missing
    edges); the exact optimum is included when ``m`` permits.
    """
    if quick:
        families = families or QUICK_FAMILIES
        seeds = seeds[:1]
    else:
        families = families or DEFAULT_FAMILIES
    instances = {
        family: cached_instance(family, m, n, 3) for family in families
    }
    cells = [
        SolveCell(instance=instances[family], k=k, seed=s)
        for family in families
        for s in seeds
    ]
    outcomes = _sweep(cells, executor)
    rows: list[tuple[Any, ...]] = []
    for idx, family in enumerate(families):
        instance = instances[family]
        lp = solve_lp(instance)
        bound = max(lp.value, 1e-12)

        def ratio(cost: float) -> float:
            return cost / bound

        batch = outcomes[idx * len(seeds) : (idx + 1) * len(seeds)]
        dist = aggregate([o.cost / bound for o in batch])
        greedy_r = ratio(greedy_solve(instance).cost)
        jv_r = ratio(jain_vazirani_solve(instance).cost)
        mp_r = ratio(mettu_plaxton_solve(instance).cost)
        ls_r = ratio(local_search_solve(instance).cost)
        if instance.is_complete_bipartite():
            sta_r = ratio(lp_rounding_solve(instance, lp=lp).cost)
        else:
            sta_r = float("nan")
        if m <= 16:
            exact_r = ratio(exact_solve(instance).cost)
        else:
            exact_r = float("nan")
        rows.append(
            (family, dist.mean, greedy_r, jv_r, mp_r, ls_r, sta_r, exact_r)
        )
    return ExperimentResult(
        experiment_id="E5",
        title=f"ratios vs LP bound (distributed @ k={k})",
        headers=(
            "family",
            "distributed",
            "greedy",
            "jain_vazirani",
            "mettu_plaxton",
            "local_search",
            "lp_rounding",
            "exact",
        ),
        rows=tuple(rows),
        notes={"m": m, "n": n, "k": k},
    )


# ----------------------------------------------------------------------
# E6 (Fig 4): rounding ablation
# ----------------------------------------------------------------------


@_timed
def run_e6_rounding_ablation(
    m: int = 20,
    n: int = 60,
    k: int = 16,
    family: str = "uniform",
    c_rounds: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Ablation of the rounding step (dual-ascent variant).

    Compares the deterministic ``select_all`` policy against randomized
    rounding at several constants, reporting ratio and how often the
    deterministic fallback had to fire (the paper's "with high
    probability" story: larger constants buy fewer fallbacks at higher
    opening cost).
    """
    if quick:
        c_rounds = c_rounds[:2]
        seeds = seeds[:2]
    instance = cached_instance(family, m, n, 3)
    bound = max(cached_lp_value(instance), 1e-12)
    rows: list[tuple[Any, ...]] = []
    policies: list[tuple[str, RoundingPolicy]] = [
        ("select_all", RoundingPolicy(mode="select_all"))
    ]
    policies.extend(
        (f"randomized(c={c:g})", RoundingPolicy(mode="randomized", c_round=c))
        for c in c_rounds
    )
    cells = [
        SolveCell(
            instance=instance,
            k=k,
            variant=Variant.DUAL_ASCENT.value,
            seed=s,
            rounding=policy,
        )
        for _label, policy in policies
        for s in seeds
    ]
    outcomes = _sweep(cells, executor)
    for idx, (label, _policy) in enumerate(policies):
        batch = outcomes[idx * len(seeds) : (idx + 1) * len(seeds)]
        agg = aggregate([o.cost / bound for o in batch])
        fallbacks = aggregate(
            [float(o.diagnostics["num_forced_clients"]) for o in batch]
        )
        rows.append((label, agg.mean, agg.maximum, fallbacks.mean))
    return ExperimentResult(
        experiment_id="E6",
        title=f"rounding ablation (dual ascent, k={k}, {family})",
        headers=("policy", "ratio_mean", "ratio_max", "fallbacks_mean"),
        rows=tuple(rows),
        notes={"m": m, "n": n, "k": k},
    )


# ----------------------------------------------------------------------
# E7 (Fig 5): sensitivity to the cost spread rho
# ----------------------------------------------------------------------


@_timed
def run_e7_rho_sensitivity(
    m: int = 20,
    n: int = 60,
    k: int = 16,
    rhos: Sequence[float] = (2.0, 10.0, 100.0, 1000.0),
    seeds: Sequence[int] = (0, 1, 2),
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Measured ratio vs the instance cost spread ``rho`` at fixed ``k``.

    Reproduces the ``(m rho)^(1/sqrt k)`` dependence: at a fixed round
    budget, instances with a wider cost spread are harder, and the
    envelope grows accordingly.
    """
    if quick:
        rhos = rhos[:2]
        seeds = seeds[:2]
    instances = [
        high_spread_instance(m, n, seed=3, target_rho=target_rho)
        for target_rho in rhos
    ]
    cells = [
        SolveCell(instance=instance, k=k, seed=s)
        for instance in instances
        for s in seeds
    ]
    outcomes = _sweep(cells, executor)
    rows: list[tuple[Any, ...]] = []
    for idx, (target_rho, instance) in enumerate(zip(rhos, instances)):
        bound = max(cached_lp_value(instance), 1e-12)
        batch = outcomes[idx * len(seeds) : (idx + 1) * len(seeds)]
        agg = aggregate([o.cost / bound for o in batch])
        envelope = approximation_envelope(k, m, n, instance.rho)
        rows.append((target_rho, instance.rho, agg.mean, agg.maximum, envelope))
    return ExperimentResult(
        experiment_id="E7",
        title=f"ratio vs cost spread rho (k={k})",
        headers=("rho_target", "rho_actual", "ratio_mean", "ratio_max", "envelope"),
        rows=tuple(rows),
        notes={"m": m, "n": n, "k": k},
    )


# ----------------------------------------------------------------------
# E8 (Table 3): metric vs non-metric families
# ----------------------------------------------------------------------


@_timed
def run_e8_families_table(
    m: int = 20,
    n: int = 60,
    k: int = 16,
    families: Sequence[str] | None = None,
    seeds: Sequence[int] = (0, 1, 2),
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Behaviour across metric and non-metric families at fixed ``k``.

    The paper's algorithm is for *non-metric* instances; this table shows
    it degrades gracefully from metric (euclidean/grid) to coverage-style
    non-metric (set_cover, sparse) structure.
    """
    if quick:
        families = families or QUICK_FAMILIES
        seeds = seeds[:2]
    else:
        families = families or (
            "uniform",
            "euclidean",
            "clustered",
            "grid",
            "set_cover",
            "sparse",
        )
    instances = {
        family: cached_instance(family, m, n, 3) for family in families
    }
    cells = [
        SolveCell(instance=instances[family], k=k, seed=s)
        for family in families
        for s in seeds
    ]
    outcomes = _sweep(cells, executor)
    rows: list[tuple[Any, ...]] = []
    for idx, family in enumerate(families):
        instance = instances[family]
        bound = max(cached_lp_value(instance), 1e-12)
        batch = outcomes[idx * len(seeds) : (idx + 1) * len(seeds)]
        agg = aggregate([o.cost / bound for o in batch])
        rows.append(
            (
                family,
                instance.is_metric() if instance.is_complete_bipartite() else False,
                instance.rho,
                agg.mean,
                agg.maximum,
            )
        )
    return ExperimentResult(
        experiment_id="E8",
        title=f"metric vs non-metric families (k={k})",
        headers=("family", "metric", "rho", "ratio_mean", "ratio_max"),
        rows=tuple(rows),
        notes={"m": m, "n": n, "k": k},
    )


# ----------------------------------------------------------------------
# E9 (Fig 6): scalability
# ----------------------------------------------------------------------


@_timed
def run_e9_scalability(
    sizes: Sequence[tuple[int, int]] | None = None,
    k: int = 9,
    family: str = "uniform",
    quick: bool = False,
) -> ExperimentResult:
    """Wall-clock of the message simulator vs the sequential emulation.

    The repro band notes "simulation simple; slow at scale": this figure
    quantifies it, and shows the sequential emulation (identical output)
    extends the reachable sizes by an order of magnitude.
    """
    if sizes is None:
        sizes = (
            [(10, 50), (20, 100)]
            if quick
            else [(10, 50), (20, 100), (40, 200), (80, 400), (160, 800)]
        )
    rows: list[tuple[Any, ...]] = []
    for m, n in sizes:
        instance = cached_instance(family, m, n, 3)
        start = time.perf_counter()
        dist = solve_distributed(instance, k=k, seed=0)
        sim_seconds = time.perf_counter() - start
        start = time.perf_counter()
        seq = run_sequential(instance, k=k, seed=0)
        seq_seconds = time.perf_counter() - start
        # Identical solutions (cost floats may differ in the last ulp
        # because the two paths sum assignments in different orders).
        assert seq.open_facilities == dist.open_facilities
        assert seq.assignment == dist.solution.assignment
        rows.append(
            (
                m + n,
                sim_seconds,
                seq_seconds,
                sim_seconds / max(seq_seconds, 1e-9),
                dist.metrics.total_messages,
            )
        )
    return ExperimentResult(
        experiment_id="E9",
        title=f"scalability of simulator vs sequential emulation (k={k})",
        headers=("N", "simulator_s", "sequential_s", "speedup", "messages"),
        rows=tuple(rows),
        notes={"k": k, "family": family},
    )


# ----------------------------------------------------------------------
# E10 (Table 4): variant comparison
# ----------------------------------------------------------------------


@_timed
def run_e10_variants_table(
    m: int = 20,
    n: int = 60,
    k_values: Sequence[int] = (4, 16, 36),
    family: str = "uniform",
    seeds: Sequence[int] = (0, 1, 2),
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Flagship scaled greedy vs the dual-ascent variant, same ``k``.

    Both realize the trade-off; this table shows their measured ratio and
    rounds side by side (the dual ascent spends its budget on a finer
    threshold ladder, the greedy on conflict resolution).
    """
    if quick:
        k_values = k_values[:2]
        seeds = seeds[:2]
    instance = cached_instance(family, m, n, 3)
    bound = max(cached_lp_value(instance), 1e-12)
    grid = [
        (k, variant)
        for k in k_values
        for variant in (Variant.GREEDY, Variant.DUAL_ASCENT)
    ]
    cells = [
        SolveCell(instance=instance, k=k, variant=variant.value, seed=s)
        for k, variant in grid
        for s in seeds
    ]
    outcomes = _sweep(cells, executor)
    rows: list[tuple[Any, ...]] = []
    for idx, (k, variant) in enumerate(grid):
        batch = outcomes[idx * len(seeds) : (idx + 1) * len(seeds)]
        agg = aggregate([o.cost / bound for o in batch])
        rows.append((k, variant.value, agg.mean, agg.maximum, batch[0].rounds))
    return ExperimentResult(
        experiment_id="E10",
        title=f"variant comparison on {family}",
        headers=("k", "variant", "ratio_mean", "ratio_max", "rounds"),
        rows=tuple(rows),
        notes={"m": m, "n": n},
    )


# ----------------------------------------------------------------------
# E11 (Fig 7): fault tolerance extension
# ----------------------------------------------------------------------


@_timed
def run_e11_faults(
    m: int = 20,
    n: int = 60,
    k: int = 16,
    family: str = "uniform",
    drop_probabilities: Sequence[float] = (0.0, 0.01, 0.05, 0.1),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Behaviour under message loss (extension; the paper assumes
    reliable links).

    Measures how often runs stay complete, how many clients end unserved,
    and the cost of the repaired solution relative to the LP bound.
    """
    if quick:
        drop_probabilities = drop_probabilities[:2]
        seeds = seeds[:2]
    instance = cached_instance(family, m, n, 3)
    bound = max(cached_lp_value(instance), 1e-12)
    cells = [
        SolveCell(
            instance=instance,
            k=k,
            seed=s,
            fault_plan=FaultPlan(drop_probability=p, seed=1000 + s),
        )
        for p in drop_probabilities
        for s in seeds
    ]
    outcomes = _sweep(cells, executor)
    rows: list[tuple[Any, ...]] = []
    for idx, p in enumerate(drop_probabilities):
        batch = outcomes[idx * len(seeds) : (idx + 1) * len(seeds)]
        complete = sum(o.feasible for o in batch)
        unserved_counts = [float(len(o.unserved)) for o in batch]
        repaired_ratios = [o.repaired_cost / bound for o in batch]
        finite = [r for r in repaired_ratios if r == r]
        rows.append(
            (
                p,
                complete / len(seeds),
                aggregate(unserved_counts).mean,
                aggregate(finite).mean if finite else float("nan"),
            )
        )
    return ExperimentResult(
        experiment_id="E11",
        title=f"message loss extension (k={k}, {family})",
        headers=("drop_p", "complete_frac", "unserved_mean", "repaired_ratio"),
        rows=tuple(rows),
        notes={"m": m, "n": n, "k": k},
    )


# ----------------------------------------------------------------------
# E12 (Fig 8): necessity of the threshold ladder
# ----------------------------------------------------------------------


@_timed
def run_e12_ladder_necessity(
    m: int = 20,
    n: int = 60,
    gap: float = 100.0,
    k_values: Sequence[int] = (1, 4, 9, 16),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """The decoy instance: a single scale is provably lured by decoys.

    On :func:`~repro.fl.generators.decoy_instance` the optimum serves
    everyone through the one good facility (cost ~ n). With ``k = 1`` the
    only threshold equals ``eff_max``, every decoy qualifies with a
    full-size star, and random acceptance hands decoys most clients —
    cost ~ gap * n. Any ``k >= 4`` puts the good facility on an earlier
    rung of the ladder where decoys do not qualify. This is the
    lower-bound-flavoured side of the trade-off: few rounds genuinely
    cost approximation quality, matching the spirit of the paper's
    round/approximation *trade-off* being real rather than an analysis
    artifact.
    """
    if quick:
        k_values = k_values[:3]
        seeds = seeds[:2]
    instance = decoy_instance(m, n, seed=3, gap=gap)
    bound = max(cached_lp_value(instance), 1e-12)
    cells = [
        SolveCell(instance=instance, k=k, seed=s)
        for k in k_values
        for s in seeds
    ]
    outcomes = _sweep(cells, executor)
    rows: list[tuple[Any, ...]] = []
    for idx, k in enumerate(k_values):
        batch = outcomes[idx * len(seeds) : (idx + 1) * len(seeds)]
        agg = aggregate([o.cost / bound for o in batch])
        rows.append((k, agg.mean, agg.minimum, agg.maximum))
    return ExperimentResult(
        experiment_id="E12",
        title=f"threshold-ladder necessity (decoy instance, gap={gap:g})",
        headers=("k", "ratio_mean", "ratio_min", "ratio_max"),
        rows=tuple(rows),
        notes={"m": m, "n": n, "gap": gap, "seeds": len(seeds)},
    )


# ----------------------------------------------------------------------
# E13 (Fig 9): settle-iteration ablation
# ----------------------------------------------------------------------


@_timed
def run_e13_settle_ablation(
    m: int = 20,
    n: int = 60,
    family: str = "set_cover",
    num_scales: int = 4,
    settle_values: Sequence[int] = (1, 2, 4, 8),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Pin the scales, sweep the settle iterations (the sqrt(k) x sqrt(k)
    design choice).

    Within one scale, competing facilities need repeated proposal rounds
    to partition contested clients; this ablation fixes the ladder and
    varies only the per-scale repetition count ``R``, isolating what the
    second sqrt(k) factor buys. The contention-heavy coverage family
    (many facilities proposing overlapping zero-cost stars) shows the
    expected shape: quality improves and failed-accept counts drop with
    ``R`` at a sharply diminishing rate — the empirical justification for
    splitting the round budget roughly evenly between scales and settles.
    """
    if quick:
        # The settle effect is a trend over randomized runs; two seeds are
        # noise-dominated, so quick mode trims the sweep but keeps seeds.
        settle_values = settle_values[:3]
        seeds = seeds[:4]
    instance = cached_instance(family, m, n, 3)
    bound = max(cached_lp_value(instance), 1e-12)
    schedules = [
        TradeoffParameters.custom(instance, num_scales, settle)
        for settle in settle_values
    ]
    cells = [
        SolveCell(instance=instance, k=params.k, seed=s, params=params)
        for params in schedules
        for s in seeds
    ]
    outcomes = _sweep(cells, executor)
    rows: list[tuple[Any, ...]] = []
    for idx, settle in enumerate(settle_values):
        batch = outcomes[idx * len(seeds) : (idx + 1) * len(seeds)]
        agg = aggregate([o.cost / bound for o in batch])
        failed = aggregate(
            [float(o.diagnostics["total_failed_accepts"]) for o in batch]
        )
        rows.append(
            (
                f"{num_scales}x{settle}",
                batch[0].rounds,
                agg.mean,
                agg.maximum,
                failed.mean,
            )
        )
    return ExperimentResult(
        experiment_id="E13",
        title=f"settle-iteration ablation ({family}, {num_scales} scales)",
        headers=("schedule", "rounds", "ratio_mean", "ratio_max", "failed_accepts"),
        rows=tuple(rows),
        notes={"m": m, "n": n, "family": family, "num_scales": num_scales},
    )


# ----------------------------------------------------------------------
# E14 (Fig 10): anytime behaviour under early termination
# ----------------------------------------------------------------------


@_timed
def run_e14_anytime(
    m: int = 20,
    n: int = 60,
    k: int = 25,
    family: str = "euclidean",
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    seeds: Sequence[int] = (0, 1, 2),
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """What a network that stops early gets (extension).

    Truncates the protocol at fractions of its schedule and measures how
    much usable structure exists: how many facilities are open, what
    fraction of clients is confirmed served, whether the partial open set
    can be repaired into a feasible solution, and the repaired ratio. The
    expected shape — quality accrues scale by scale, and the final force
    phase only patches a small tail — is the "anytime" reading of the
    trade-off: stopping after fewer scales is the same as having chosen a
    smaller k.
    """
    if quick:
        fractions = fractions[1::2] + (1.0,)
        seeds = seeds[:2]
    instance = cached_instance(family, m, n, 3)
    bound = max(cached_lp_value(instance), 1e-12)
    runner_schedule = DistributedFacilityLocation(instance, k=k).schedule_rounds()
    budgets = [
        max(1, int(round(fraction * runner_schedule))) for fraction in fractions
    ]
    cells = [
        SolveCell(instance=instance, k=k, seed=s, truncate_rounds=budget)
        for budget in budgets
        for s in seeds
    ]
    outcomes = _sweep(cells, executor)
    rows: list[tuple[Any, ...]] = []
    for idx, fraction in enumerate(fractions):
        budget = budgets[idx]
        batch = outcomes[idx * len(seeds) : (idx + 1) * len(seeds)]
        served_fracs = [
            (instance.num_clients - len(o.unserved)) / instance.num_clients
            for o in batch
        ]
        open_counts = [float(len(o.open_facilities)) for o in batch]
        repaired = [
            o.repaired_cost / bound for o in batch if o.repaired_cost == o.repaired_cost
        ]
        repairable = len(repaired)
        rows.append(
            (
                fraction,
                budget,
                aggregate(open_counts).mean,
                aggregate(served_fracs).mean,
                repairable / len(seeds),
                aggregate(repaired).mean if repaired else float("nan"),
            )
        )
    return ExperimentResult(
        experiment_id="E14",
        title=f"anytime behaviour under truncation ({family}, k={k})",
        headers=(
            "fraction",
            "rounds",
            "open_mean",
            "served_frac",
            "repairable_frac",
            "repaired_ratio",
        ),
        rows=tuple(rows),
        notes={"m": m, "n": n, "k": k, "schedule_rounds": runner_schedule},
    )


# ----------------------------------------------------------------------
# E15 (Fig 11): concentration — the "with high probability" claim
# ----------------------------------------------------------------------


@_timed
def run_e15_concentration(
    m: int = 20,
    n: int = 60,
    family: str = "euclidean",
    k_values: Sequence[int] = (4, 16, 49),
    num_seeds: int = 200,
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Ratio distribution over many seeds: the w.h.p. claim, measured.

    The theorem promises its guarantee *with high probability* over the
    algorithm's coins. This experiment runs the protocol over hundreds of
    seeds (via the coin-for-coin sequential emulation, which makes the
    sweep cheap) and reports the quantiles of the ratio distribution; the
    reproduced claim is that even the *worst* observed seed stays under
    the analytic envelope, and that the distribution is tightly
    concentrated (small p95/p50 gap).
    """
    if quick:
        k_values = k_values[:2]
        num_seeds = 40
    instance = cached_instance(family, m, n, 3)
    bound = max(cached_lp_value(instance), 1e-12)
    cells = [
        SequentialCell(instance=instance, k=k, seed=s)
        for k in k_values
        for s in range(num_seeds)
    ]
    outcomes = _sweep_sequential(cells, executor)
    rows: list[tuple[Any, ...]] = []
    for idx, k in enumerate(k_values):
        batch = outcomes[idx * num_seeds : (idx + 1) * num_seeds]
        ratios = sorted(o.cost / bound for o in batch)

        def quantile(q: float) -> float:
            return ratios[min(len(ratios) - 1, int(q * len(ratios)))]

        envelope = approximation_envelope(k, m, n, instance.rho)
        rows.append(
            (
                k,
                quantile(0.5),
                quantile(0.95),
                ratios[-1],
                ratios[-1] / max(quantile(0.5), 1e-12),
                envelope,
            )
        )
    return ExperimentResult(
        experiment_id="E15",
        title=f"ratio concentration over {num_seeds} seeds ({family})",
        headers=("k", "p50", "p95", "max", "max/p50", "envelope"),
        rows=tuple(rows),
        notes={"m": m, "n": n, "family": family, "num_seeds": num_seeds},
    )


# ----------------------------------------------------------------------
# E16 (Fig 12): opening-rule ablation (the half-star design choice)
# ----------------------------------------------------------------------


@_timed
def run_e16_opening_rule(
    m: int = 20,
    n: int = 60,
    k: int = 9,
    family: str = "set_cover",
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Sweep the fraction of a star that must accept before opening.

    The analyzed rule opens a facility when half its proposed star
    accepted. This ablation shows why: opening on *any* accept
    (fraction 0) pays opening costs for facilities that captured almost
    none of their star (realized efficiency far past the threshold),
    while demanding the *full* star (fraction 1) deadlocks contested
    facilities so that coverage leaks into later, coarser scales or the
    force phase. The half-star point balances the two failure modes.
    """
    if quick:
        fractions = (0.0, 0.5, 1.0)
        seeds = seeds[:3]
    instance = cached_instance(family, m, n, 3)
    bound = max(cached_lp_value(instance), 1e-12)
    cells = [
        SolveCell(instance=instance, k=k, seed=s, open_fraction=fraction)
        for fraction in fractions
        for s in seeds
    ]
    outcomes = _sweep(cells, executor)
    rows: list[tuple[Any, ...]] = []
    for idx, fraction in enumerate(fractions):
        batch = outcomes[idx * len(seeds) : (idx + 1) * len(seeds)]
        agg = aggregate([o.cost / bound for o in batch])
        opens = aggregate([float(len(o.open_facilities)) for o in batch])
        forced = aggregate(
            [float(o.diagnostics["num_forced_clients"]) for o in batch]
        )
        rows.append((fraction, agg.mean, agg.maximum, opens.mean, forced.mean))
    return ExperimentResult(
        experiment_id="E16",
        title=f"opening-rule ablation ({family}, k={k})",
        headers=(
            "open_fraction",
            "ratio_mean",
            "ratio_max",
            "open_mean",
            "forced_clients",
        ),
        rows=tuple(rows),
        notes={"m": m, "n": n, "k": k, "family": family},
    )


# ----------------------------------------------------------------------
# E17: fault families — self-healed vs post-hoc-repaired cost
# ----------------------------------------------------------------------


@_timed
def run_e17_fault_families(
    m: int = 20,
    n: int = 60,
    k: int = 16,
    family: str = "uniform",
    fault_families: Sequence[str] = ("drop", "burst", "partition", "crash"),
    intensity: float = 0.15,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    quick: bool = False,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """The resilience layer's value, per fault family (extension).

    For each fault family, runs the protocol *plain* (faults only) and
    *resilient* (reliable delivery + self-healing) at the same intensity
    and seeds, contrasting how often each completes on its own, the cost
    of the resilient solution, and the cost of the best post-hoc repair of
    the plain run. The gap between ``healed_ratio`` and
    ``repaired_ratio`` is what in-protocol healing buys over fixing
    things up after the fact.
    """
    from repro.analysis.chaos import build_fault_plan
    from repro.core.healing import SelfHealingPolicy
    from repro.net.reliability import ReliabilityPolicy

    if quick:
        fault_families = fault_families[:2]
        seeds = seeds[:2]
    instance = cached_instance(family, m, n, 3)
    bound = max(cached_lp_value(instance), 1e-12)
    schedule = DistributedFacilityLocation(instance, k=k).schedule_rounds()
    cells: list[SolveCell] = []
    for fault_family in fault_families:
        for s in seeds:
            plan_seed = 1000 + s
            plan = build_fault_plan(
                fault_family, intensity, instance, schedule, plan_seed
            )
            cells.append(
                SolveCell(instance=instance, k=k, seed=s, fault_plan=plan)
            )
            cells.append(
                SolveCell(
                    instance=instance,
                    k=k,
                    seed=s,
                    fault_plan=plan,
                    reliability=ReliabilityPolicy(),
                    healing=SelfHealingPolicy(),
                )
            )
    outcomes = _sweep(cells, executor)
    rows: list[tuple[Any, ...]] = []
    for idx, fault_family in enumerate(fault_families):
        batch = outcomes[idx * 2 * len(seeds) : (idx + 1) * 2 * len(seeds)]
        plain_runs = batch[0::2]
        resilient_runs = batch[1::2]
        plain_complete = sum(o.feasible for o in plain_runs)
        resilient_complete = sum(o.feasible for o in resilient_runs)
        repaired_ratios = [o.repaired_cost / bound for o in plain_runs]
        healed_ratios = [
            o.cost / bound for o in resilient_runs if o.feasible
        ]
        retries = [
            float(o.diagnostics["reliability"]["retries"])
            for o in resilient_runs
        ]
        finite = [r for r in repaired_ratios if r == r]
        rows.append(
            (
                fault_family,
                plain_complete / len(seeds),
                resilient_complete / len(seeds),
                aggregate(finite).mean if finite else float("nan"),
                aggregate(healed_ratios).mean if healed_ratios else float("nan"),
                aggregate(retries).mean,
            )
        )
    return ExperimentResult(
        experiment_id="E17",
        title=f"resilience per fault family (k={k}, {family}, "
        f"intensity={intensity})",
        headers=(
            "fault_family",
            "plain_complete",
            "resilient_complete",
            "repaired_ratio",
            "healed_ratio",
            "retries_mean",
        ),
        rows=tuple(rows),
        notes={"m": m, "n": n, "k": k, "intensity": intensity},
    )
