"""Fixed-width ASCII table rendering.

Every benchmark prints its reproduced table/figure data through this
module so EXPERIMENTS.md, test logs and interactive runs all show the
same, diffable representation.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: Any, precision: int = 3) -> str:
    """Render one cell: floats get fixed precision, the rest ``str()``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        magnitude = abs(value)
        if magnitude != 0 and (magnitude >= 1e6 or magnitude < 10 ** (-precision)):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render rows under headers as a fixed-width ASCII table.

    Column widths adapt to content; numeric cells are right-aligned,
    text cells left-aligned.
    """
    text_rows = [[format_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    numeric = [True] * len(headers)
    for row, raw in zip(text_rows, rows):
        for idx, value in enumerate(raw):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                numeric[idx] = False
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        cells = [
            cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i])
            for i, cell in enumerate(row)
        ]
        lines.append(" | ".join(cells))
    return "\n".join(lines)
